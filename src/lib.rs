//! # DeathStarBench-sim — facade crate
//!
//! A simulation-based Rust reproduction of *An Open-Source Benchmark Suite
//! for Microservices and Their Hardware-Software Implications for Cloud &
//! Edge Systems* (ASPLOS 2019). This crate re-exports the whole workspace
//! so examples and downstream users can depend on one name:
//!
//! * [`simcore`] — deterministic discrete-event engine
//! * [`uarch`] — top-down cycle model, core types
//! * [`net`] — protocols, fabric, NICs, FPGA offload
//! * [`trace`] — distributed tracing
//! * [`core`] — the microservice framework (apps, machines, control surface)
//! * [`telemetry`] — metrics registry, SLO burn-rate alerts, root-cause reports
//! * [`cluster`] — autoscaling, provisioning, QoS, fault injection
//! * [`workload`] — open-loop generators, skew, diurnal patterns
//! * [`serverless`] — Lambda/EC2 execution + billing models
//! * [`apps`] — the six end-to-end applications and friends
//! * [`experiments`] — one module per paper table/figure
//! * [`analyzer`] — static spec validation and the determinism lint
//!
//! See the repository README for a quickstart and `examples/` for runnable
//! walkthroughs.

#![warn(missing_docs)]

pub use dsb_analyzer as analyzer;
pub use dsb_apps as apps;
pub use dsb_cluster as cluster;
pub use dsb_core as core;
pub use dsb_experiments as experiments;
pub use dsb_net as net;
pub use dsb_serverless as serverless;
pub use dsb_simcore as simcore;
pub use dsb_telemetry as telemetry;
pub use dsb_trace as trace;
pub use dsb_uarch as uarch;
pub use dsb_workload as workload;
