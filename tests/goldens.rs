//! Golden-trace tests: each application's end-to-end summary at a fixed
//! seed is pinned to a checked-in fixture under `tests/goldens/`.
//!
//! Any change to the simulator's timing model — per-tier service demand,
//! scheduling, networking, RNG consumption order — moves the latency
//! percentiles or event counts and fails these tests with a line diff.
//! When a change is intentional, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --offline --test goldens
//! ```

mod common;

use deathstarbench_sim::apps::{self, monolith, twotier, BuiltApp};
use dsb_testkit::golden;

const SEED: u64 = 42;
const SECS: u64 = 4;

fn check(name: &str, app: &BuiltApp, qps: f64) {
    let sim = common::run_fixed(app, qps, SECS, SEED);
    let text = common::summary(app, &sim);
    let path = format!("{}/tests/goldens/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    golden::check(&path, &text);
}

#[test]
fn golden_social_network() {
    check("social_network", &apps::social::social_network(), 40.0);
}

#[test]
fn golden_media_service() {
    check("media_service", &apps::media::media_service(), 40.0);
}

#[test]
fn golden_ecommerce() {
    check("ecommerce", &apps::ecommerce::ecommerce(), 40.0);
}

#[test]
fn golden_banking() {
    check("banking", &apps::banking::banking(), 40.0);
}

#[test]
fn golden_swarm_edge() {
    check(
        "swarm_edge",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Edge),
        15.0,
    );
}

#[test]
fn golden_swarm_cloud() {
    check(
        "swarm_cloud",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Cloud),
        15.0,
    );
}

#[test]
fn golden_social_monolith() {
    check("social_monolith", &monolith::social_monolith(), 40.0);
}

#[test]
fn golden_twotier() {
    check("twotier", &twotier::twotier(64, 1024), 200.0);
}
