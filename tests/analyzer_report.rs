//! Pins the static-analysis report of every built-in application (plus
//! nine deliberate defect demos) to a golden fixture, so any change to a
//! diagnostic's wording, ordering, or firing conditions shows up as a
//! reviewable line diff. Every app is analyzed against the same
//! reference cluster the golden traces run on, with a 1-second DSB012
//! calibration window. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --offline --test analyzer_report
//! ```

mod common;

use std::fmt::Write;

use deathstarbench_sim::analyzer::Analyzer;
use deathstarbench_sim::apps::{self, BuiltApp};
use dsb_testkit::golden;

fn report(out: &mut String, title: &str, app: &BuiltApp, qps: f64) {
    let cluster = common::fixed_cluster();
    let mut an = Analyzer::new(&app.spec)
        .entry(app.frontend)
        .cluster(&cluster)
        .calibration(1.0)
        .slo(app.qos_p99);
    let total_weight: f64 = app.mix.entries().iter().map(|e| e.weight).sum();
    for e in app.mix.entries() {
        an = an.offered(e.entry, qps * e.weight / total_weight);
    }
    writeln!(out, "== {title} (qps {qps}) ==").unwrap();
    let diags = an.run();
    if diags.is_empty() {
        writeln!(out, "clean").unwrap();
    }
    for d in diags {
        writeln!(out, "{d}").unwrap();
    }
    writeln!(out).unwrap();
}

#[test]
fn golden_analyzer_report() {
    let mut text = String::new();
    for (name, qps, app) in apps::all_builtin() {
        report(&mut text, name, &app, qps);
    }
    // Defect demos: the analyzer must call out specs built to be broken.
    // The Fig. 17 case-B shape — 64 blocking nginx workers sharing a
    // 2-connection pool toward memcached.
    report(
        &mut text,
        "defect demo: twotier(64, 2)",
        &apps::twotier::twotier(64, 2),
        200.0,
    );
    // A single MongoDB tier offered far more load than 64 workers of
    // ~0.55 ms requests can absorb.
    report(
        &mut text,
        "defect demo: overloaded mongodb",
        &apps::singles::mongodb(),
        150_000.0,
    );
    // Four co-located encode stages overcommitting one machine's cores
    // while every per-tier check stays comfortable.
    report(
        &mut text,
        "defect demo: colocated encoders",
        &apps::defects::colocated_encoders(),
        5500.0,
    );
    // A 16-wide fan-out synchronizing arrivals over a 4-worker store:
    // only the calibration run sees the queueing.
    report(
        &mut text,
        "defect demo: burst chain",
        &apps::defects::burst_chain(),
        5.0,
    );
    // Fig. 17 case B at runtime: a 1-connection pool toward memcached
    // burns the SLO while nginx looks busy and memcached looks idle —
    // only the scraped calibration run (DSB013) names the real culprit.
    report(
        &mut text,
        "defect demo: twotier(64, 1) saturated",
        &apps::twotier::twotier(64, 1),
        30_000.0,
    );
    // Two blocking tiers calling each other: the call cycle (DSB001)
    // doubles as a circular wait across both worker pools (DSB014).
    report(
        &mut text,
        "defect demo: wait loop",
        &apps::defects::wait_loop(),
        50.0,
    );
    // An edge-zone gossip pair whose cross-drone hop certifies less
    // lookahead than one loopback epoch (DSB015).
    report(
        &mut text,
        "defect demo: edge gossip",
        &apps::defects::edge_gossip(),
        20.0,
    );
    // A cache-aside write path ordered cache-first: a reader refilling
    // inside the window resurrects pre-write state (DSB016).
    report(
        &mut text,
        "defect demo: stale refill",
        &apps::defects::stale_refill(),
        100.0,
    );
    // An app whose sole cache tier runs one replica: a single
    // cache-loss fault evicts the whole key space at once (DSB017).
    report(
        &mut text,
        "defect demo: bare cache",
        &apps::defects::bare_cache(),
        100.0,
    );
    let path = format!(
        "{}/tests/goldens/analyzer_report.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    golden::check(&path, &text);
}

/// Pins every built-in application's parallel-lookahead certificate —
/// the minimum safe epoch (in sim-time nanoseconds) a conservative
/// sharded engine could advance between synchronizations on the
/// reference cluster, and the hop that limits it.
#[test]
fn golden_lookahead_certificates() {
    let mut text = String::new();
    let cluster = common::fixed_cluster();
    for (name, _qps, app) in apps::all_builtin() {
        let cert = deathstarbench_sim::analyzer::lookahead_certificate(&app.spec, &cluster)
            .expect("every builtin has a feasible placement");
        let line = cert.render(|s| app.spec.service(s).name.clone());
        writeln!(text, "{name}: {line}").unwrap();
    }
    let path = format!("{}/tests/goldens/lookahead.txt", env!("CARGO_MANIFEST_DIR"));
    golden::check(&path, &text);
}
