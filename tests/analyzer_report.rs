//! Pins the static-analysis report of every built-in application (plus
//! two deliberate defect demos) to a golden fixture, so any change to a
//! diagnostic's wording, ordering, or firing conditions shows up as a
//! reviewable line diff. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --offline --test analyzer_report
//! ```

use std::fmt::Write;

use deathstarbench_sim::analyzer::Analyzer;
use deathstarbench_sim::apps::{self, BuiltApp};
use dsb_testkit::golden;

fn report(out: &mut String, title: &str, app: &BuiltApp, qps: f64) {
    let mut an = Analyzer::new(&app.spec).entry(app.frontend);
    let total_weight: f64 = app.mix.entries().iter().map(|e| e.weight).sum();
    for e in app.mix.entries() {
        an = an.offered(e.entry, qps * e.weight / total_weight);
    }
    writeln!(out, "== {title} (qps {qps}) ==").unwrap();
    let diags = an.run();
    if diags.is_empty() {
        writeln!(out, "clean").unwrap();
    }
    for d in diags {
        writeln!(out, "{d}").unwrap();
    }
    writeln!(out).unwrap();
}

#[test]
fn golden_analyzer_report() {
    let mut text = String::new();
    for (name, qps, app) in apps::all_builtin() {
        report(&mut text, name, &app, qps);
    }
    // Defect demos: the analyzer must call out specs built to be broken.
    // The Fig. 17 case-B shape — 64 blocking nginx workers sharing a
    // 2-connection pool toward memcached.
    report(
        &mut text,
        "defect demo: twotier(64, 2)",
        &apps::twotier::twotier(64, 2),
        200.0,
    );
    // A single MongoDB tier offered far more load than 64 workers of
    // ~0.55 ms requests can absorb.
    report(
        &mut text,
        "defect demo: overloaded mongodb",
        &apps::singles::mongodb(),
        150_000.0,
    );
    let path = format!(
        "{}/tests/goldens/analyzer_report.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    golden::check(&path, &text);
}
