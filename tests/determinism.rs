//! Determinism tests: every application, run twice at the same seed on
//! the same cluster, produces bit-identical totals, latency statistics,
//! and event counts — and a different seed produces a different run.

mod common;

use deathstarbench_sim::apps::{self, BuiltApp};
use deathstarbench_sim::core::RequestType;

/// A compact fingerprint of a run: totals, events, and a mix of all
/// per-type latency quantiles (any nondeterminism in timing lands here).
fn digest(app: &BuiltApp, qps: f64, seed: u64) -> (u64, u64, u64, u64, u64) {
    let sim = common::run_fixed(app, qps, 2, seed);
    let (issued, completed, rejected) = common::totals(&sim);
    let mut lat = 0u64;
    for i in 0..common::MAX_RTYPE {
        if let Some(st) = sim.request_stats(RequestType(i)) {
            lat ^= st.latency.quantile(0.5).rotate_left(i);
            lat ^= st.latency.quantile(0.99).rotate_left(i + 17);
            lat ^= st.latency.max().rotate_left(i + 41);
        }
    }
    (issued, completed, rejected, lat, sim.events_processed())
}

fn assert_deterministic(name: &str, app: &BuiltApp, qps: f64) {
    let a = digest(app, qps, 7);
    let b = digest(app, qps, 7);
    assert_eq!(a, b, "{name}: same seed must reproduce bit-identically");
    let c = digest(app, qps, 8);
    assert_ne!(a, c, "{name}: different seeds must differ");
}

#[test]
fn social_network_is_deterministic() {
    assert_deterministic("social-network", &apps::social::social_network(), 40.0);
}

#[test]
fn media_service_is_deterministic() {
    assert_deterministic("media-service", &apps::media::media_service(), 40.0);
}

#[test]
fn ecommerce_is_deterministic() {
    assert_deterministic("ecommerce", &apps::ecommerce::ecommerce(), 40.0);
}

#[test]
fn banking_is_deterministic() {
    assert_deterministic("banking", &apps::banking::banking(), 40.0);
}

#[test]
fn swarm_edge_is_deterministic() {
    assert_deterministic(
        "swarm-edge",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Edge),
        15.0,
    );
}

#[test]
fn swarm_cloud_is_deterministic() {
    assert_deterministic(
        "swarm-cloud",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Cloud),
        15.0,
    );
}

// Whole-experiment replay: the paper figures must reproduce to the byte,
// not just to the digest — any drift in autoscaler timing, placement, or
// report formatting shows up here. Quick scale keeps these inside the CI
// time budget.

#[test]
fn fig17_replays_byte_identically() {
    use deathstarbench_sim::experiments::{fig17, Scale};
    let a = fig17::run(Scale::Quick);
    let b = fig17::run(Scale::Quick);
    assert!(!a.is_empty());
    assert_eq!(a, b, "fig17 quick-scale report drifted between runs");
}

#[test]
fn fig22_replays_byte_identically() {
    use deathstarbench_sim::experiments::{fig22, Scale};
    let a = fig22::run(Scale::Quick);
    let b = fig22::run(Scale::Quick);
    assert!(!a.is_empty());
    assert_eq!(a, b, "fig22 quick-scale report drifted between runs");
}
