//! Cache/store endpoint-pair coverage: every memcached tier must see
//! both `get` and `set` traffic, and every mongodb tier both `find`
//! and `insert` traffic, under each app's own query mix. Guards the
//! behaviour-script fix that completed the cache-fill and
//! write-through paths (DSB010: one-sided endpoint pairs).

mod common;

use deathstarbench_sim::apps::{self, BuiltApp};
use deathstarbench_sim::core::ServiceId;

const SEED: u64 = 42;
const QPS: f64 = 40.0;
/// Long enough that even the rarest path (branch-gated flushes and
/// ~5%-miss cache fills on low-weight request types) fires at 40 qps.
const SECS: u64 = 8;

/// Asserts every endpoint of every storage tier completed at least one
/// invocation, and that every multi-shard tier spread its load over
/// more than one shard.
fn assert_both_sides(app: &BuiltApp) {
    let sim = common::run_fixed(app, QPS, SECS, SEED);
    for i in 0..app.spec.service_count() {
        let id = ServiceId(i as u32);
        let svc = app.spec.service(id);
        let is_store = svc.name.starts_with("memcached-")
            || svc.name.starts_with("mongodb-")
            || svc.name.starts_with("mysql-");
        if !is_store {
            continue;
        }
        let stats = sim.service_stats(id);
        for (e, ep) in svc.endpoints.iter().enumerate() {
            assert!(
                stats.endpoint_count(e) > 0,
                "{}: {}/{} saw no traffic — the {} half of the pair is \
                 unreachable from the behaviour scripts",
                app.spec.name,
                svc.name,
                ep.name,
                ep.name,
            );
        }
        let active_shards = sim
            .instances_of(id)
            .iter()
            .filter(|inst| sim.instance_served(**inst) > 0)
            .count();
        assert!(
            active_shards >= 2,
            "{}: {} concentrated all {} invocations on one of its {} shards",
            app.spec.name,
            svc.name,
            stats.invocations,
            sim.instances_of(id).len(),
        );
    }
}

#[test]
fn social_network_stores_see_both_halves() {
    assert_both_sides(&apps::social::social_network());
}

#[test]
fn media_service_stores_see_both_halves() {
    assert_both_sides(&apps::media::media_service());
}

#[test]
fn ecommerce_stores_see_both_halves() {
    assert_both_sides(&apps::ecommerce::ecommerce());
}

#[test]
fn banking_stores_see_both_halves() {
    assert_both_sides(&apps::banking::banking());
}

/// The hit/miss structure is a property of the scripts, not of one
/// lucky seed: a second seed must also exercise both halves.
#[test]
fn cache_fill_is_not_seed_luck() {
    let app = apps::social::social_network();
    let sim = common::run_fixed(&app, QPS, SECS, SEED + 1);
    for i in 0..app.spec.service_count() {
        let id = ServiceId(i as u32);
        let svc = app.spec.service(id);
        if !svc.name.starts_with("memcached-") {
            continue;
        }
        let stats = sim.service_stats(id);
        for (e, ep) in svc.endpoints.iter().enumerate() {
            assert!(
                stats.endpoint_count(e) > 0,
                "seed {}: {}/{} silent",
                SEED + 1,
                svc.name,
                ep.name,
            );
        }
    }
}
