//! Pins the `dsb-report` observability output — both the JSONL export
//! and the `dsb-top` text table — to golden fixtures, and asserts it is
//! byte-identical across reruns at the same seed. Covers two built-in
//! apps at their fixture load plus the Fig. 17 case-B backpressure demo,
//! where the SLO burn-rate alert must fire and the root cause must name
//! memcached. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --offline --test dsb_report
//! ```

use deathstarbench_sim::apps;
use deathstarbench_sim::experiments::observe;
use dsb_testkit::golden;

const SEED: u64 = 42;
const SECS: u64 = 4;

fn check(name: &str, obs: &observe::Observed) {
    let dir = env!("CARGO_MANIFEST_DIR");
    golden::check(
        format!("{dir}/tests/goldens/report_{name}.jsonl"),
        &obs.jsonl,
    );
    golden::check(format!("{dir}/tests/goldens/report_{name}.txt"), &obs.top);
}

#[test]
fn golden_report_social_network() {
    let app = apps::social::social_network();
    let obs = observe::observe(&app, "social_network @ 40 qps", 40.0, SECS, SEED);
    // Byte-identical rerun: the scraper reads only deterministic state.
    let again = observe::observe(&app, "social_network @ 40 qps", 40.0, SECS, SEED);
    assert_eq!(obs.jsonl, again.jsonl, "JSONL report drifted between runs");
    assert_eq!(obs.top, again.top, "dsb-top report drifted between runs");
    check("social_network", &obs);
}

#[test]
fn golden_report_twotier() {
    let app = apps::twotier::twotier(64, 1024);
    let obs = observe::observe(&app, "twotier @ 200 qps", 200.0, SECS, SEED);
    check("twotier", &obs);
}

#[test]
fn golden_report_backpressure() {
    let obs = observe::backpressure_demo(SECS, SEED);
    assert!(obs.top.contains("ALERT"), "case B must burn the SLO");
    assert!(obs.top.contains("ROOT CAUSE"), "alert must be diagnosed");
    check("backpressure", &obs);
}
