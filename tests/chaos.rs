//! Chaos detection suite: every built-in chaos scenario's recovery
//! timeline is pinned to a golden fixture, and the detection scorer must
//! grade the telemetry plane perfectly on all of them — every injected
//! fault detected (recall 1.0), every fired alert explained by a fault
//! (precision 1.0), and culprit-carrying faults correctly attributed.
//! Regenerate timelines with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --offline --test chaos
//! ```

use deathstarbench_sim::experiments::chaos;
use dsb_testkit::golden;

fn check(name: &str) -> chaos::ChaosRun {
    let run = chaos::run_scenario(name, 1);
    let dir = env!("CARGO_MANIFEST_DIR");
    let file = name.replace('-', "_");
    golden::check(
        format!("{dir}/tests/goldens/chaos_{file}.txt"),
        &run.timeline,
    );
    assert_eq!(
        run.score.precision, 1.0,
        "{name}: {} false alerts",
        run.score.false_alerts
    );
    assert_eq!(run.score.recall, 1.0, "{name}: a fault went undetected");
    run
}

#[test]
fn golden_chaos_machine_crash() {
    let run = check("machine-crash");
    let d = &run.score.detections[0];
    assert!(d.detected);
    assert!(d.time_to_recover.is_some(), "RTO must be measured");
}

#[test]
fn golden_chaos_cache_loss() {
    let run = check("cache-loss");
    // The fault carries a culprit (the cache tier) and the diagnosis
    // must name it — via the refill evidence if not the chain walk.
    assert_eq!(run.score.detections[0].culprit_named, Some(true));
}

#[test]
fn golden_chaos_partition() {
    check("partition");
}

#[test]
fn golden_chaos_nic_degrade() {
    check("nic-degrade");
}

#[test]
fn golden_chaos_edge_churn() {
    check("edge-churn");
}

/// The Fig. 22-style experiment: under the nic-degrade plan the faulted
/// run's worst per-second p99 must blow past the healthy run's, and the
/// healthy seconds before injection must match exactly (same seed, same
/// arrivals — chaos only perturbs the fault window).
#[test]
fn tail_under_failure_shows_the_fault() {
    let text = chaos::tail_under_failure("nic-degrade");
    let dir = env!("CARGO_MANIFEST_DIR");
    golden::check(format!("{dir}/tests/goldens/chaos_tail.txt"), &text);
}
