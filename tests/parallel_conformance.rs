//! Parallel-conformance suite: the sharded engine must be *byte-identical*
//! to the serial engine for every app, seed, and worker count.
//!
//! The engine's determinism contract (see `crates/core/src/sim.rs` module
//! docs) is that event keys are minted by the model, never by the wheel,
//! so per-shard pop order — and therefore every downstream observable —
//! is independent of how shards are driven. This suite is the proof
//! obligation: for workers ∈ {1, 2, 4, 8} it compares
//!
//! * event counts (`events_processed`),
//! * request totals (issued / completed / rejected),
//! * the full golden summary text (latency quantiles, per-service
//!   invocation counts, placement),
//! * serialized trace bytes (every sampled span, field by field), and
//! * the rendered `dsb-report` output (JSONL + `dsb-top` table)
//!
//! against the `workers = 1` run. Coverage: all 8 builtins plus a
//! 64-seed `dsb-gen` sweep, and the runtime epoch width is checked
//! against the static DSB015 `LookaheadCertificate` where one exists.

mod common;

use std::fmt::Write as _;

use deathstarbench_sim::analyzer::lookahead_certificate;
use deathstarbench_sim::apps::{self, BuiltApp};
use deathstarbench_sim::core::{ClusterSpec, Simulation};
use deathstarbench_sim::experiments::observe;
use deathstarbench_sim::simcore::SimTime;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};
use dsb_gen::GenSpec;

const WORKERS: [usize; 4] = [1, 2, 4, 8];

/// The reference cluster with tracing forced on, so the digest covers
/// trace bytes (sampling verdicts, span fields, merge order) too.
fn traced_cluster() -> ClusterSpec {
    let mut c = common::fixed_cluster();
    c.trace_sample_prob = 0.25;
    c
}

/// Serializes every sampled trace, span by span, field by field. Any
/// divergence in span identity, ordering, or timing between engines
/// lands here as a byte diff.
fn trace_bytes(sim: &Simulation) -> String {
    let mut out = String::new();
    for (trace, spans) in sim.collector().sampled_traces() {
        let _ = writeln!(out, "trace {}", trace.0);
        for s in spans {
            let _ = writeln!(
                out,
                "  span {} parent {:?} svc {} ep {} [{}, {}] q={} app={} net={}",
                s.id.0,
                s.parent.map(|p| p.0),
                s.service,
                s.endpoint,
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.queue_time.as_nanos(),
                s.app_time.as_nanos(),
                s.net_time.as_nanos(),
            );
        }
    }
    let _ = writeln!(out, "dropped {}", sim.collector().dropped_spans());
    out
}

/// Appends one `workers=N secs=X` sample to the timing file `ci.sh`
/// aggregates into its per-worker-count wall-time report. Best-effort:
/// timing is diagnostics, conformance is the assertions.
fn record_wall_time(workers: usize, secs: f64) {
    use std::io::Write as _;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/target/conformance_times.txt");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(f, "workers={workers} secs={secs:.3}");
    }
}

/// One run of `app` on `cluster` under `workers` threads; returns the
/// full observable digest.
fn run_digest(
    app: &BuiltApp,
    cluster: &ClusterSpec,
    qps: f64,
    millis: u64,
    seed: u64,
    workers: usize,
) -> (u64, (u64, u64, u64), String, String) {
    let wall = std::time::Instant::now();
    let mut sim = Simulation::new(app.spec.clone(), cluster.clone(), seed);
    sim.set_workers(workers);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_millis(millis), qps);
    sim.run_until_idle();
    let digest = (
        sim.events_processed(),
        common::totals(&sim),
        common::summary(app, &sim),
        trace_bytes(&sim),
    );
    record_wall_time(workers, wall.elapsed().as_secs_f64());
    digest
}

/// Asserts every parallel worker count reproduces the serial digest
/// byte-for-byte, and that the runtime epoch width respects the static
/// DSB015 certificate.
fn assert_conformance(name: &str, app: &BuiltApp, cluster: &ClusterSpec, qps: f64, millis: u64) {
    // Runtime lookahead must never exceed the certified safe epoch: the
    // static analyzer's bound is over *minimum* hop delays, so a runtime
    // window wider than the certificate could admit a causality miss.
    {
        let sim = Simulation::new(app.spec.clone(), cluster.clone(), 1);
        if let Some(min_epoch) = lookahead_certificate(&app.spec, cluster)
            .and_then(|cert| cert.min_epoch_ns())
            .filter(|&ns| ns > 0)
        {
            assert!(
                sim.lookahead_ns() <= min_epoch,
                "{name}: runtime lookahead {} ns exceeds certified min epoch {} ns",
                sim.lookahead_ns(),
                min_epoch
            );
        }
    }

    let serial = run_digest(app, cluster, qps, millis, 13, 1);
    for &w in &WORKERS[1..] {
        let par = run_digest(app, cluster, qps, millis, 13, w);
        assert_eq!(
            serial.0, par.0,
            "{name}: event count diverged at workers={w}"
        );
        assert_eq!(serial.1, par.1, "{name}: totals diverged at workers={w}");
        assert_eq!(
            serial.2, par.2,
            "{name}: summary bytes diverged at workers={w}"
        );
        assert_eq!(
            serial.3, par.3,
            "{name}: trace bytes diverged at workers={w}"
        );
    }
}

#[test]
fn social_network_conforms() {
    assert_conformance(
        "social-network",
        &apps::social::social_network(),
        &traced_cluster(),
        40.0,
        2_000,
    );
}

#[test]
fn media_service_conforms() {
    assert_conformance(
        "media-service",
        &apps::media::media_service(),
        &traced_cluster(),
        40.0,
        2_000,
    );
}

#[test]
fn ecommerce_conforms() {
    assert_conformance(
        "ecommerce",
        &apps::ecommerce::ecommerce(),
        &traced_cluster(),
        40.0,
        2_000,
    );
}

#[test]
fn banking_conforms() {
    assert_conformance(
        "banking",
        &apps::banking::banking(),
        &traced_cluster(),
        40.0,
        2_000,
    );
}

#[test]
fn swarm_edge_conforms() {
    assert_conformance(
        "swarm-edge",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Edge),
        &traced_cluster(),
        15.0,
        2_000,
    );
}

#[test]
fn swarm_cloud_conforms() {
    assert_conformance(
        "swarm-cloud",
        &apps::swarm::swarm(apps::swarm::SwarmVariant::Cloud),
        &traced_cluster(),
        15.0,
        2_000,
    );
}

#[test]
fn social_monolith_conforms() {
    assert_conformance(
        "social-monolith",
        &apps::monolith::social_monolith(),
        &traced_cluster(),
        40.0,
        2_000,
    );
}

#[test]
fn twotier_conforms() {
    assert_conformance(
        "twotier",
        &apps::twotier::twotier(64, 1024),
        &traced_cluster(),
        200.0,
        2_000,
    );
}

/// The `dsb-report` observability pipeline — scraper windows, SLO burn
/// alerts, root-cause attribution, both renderings — must not be able
/// to tell the engines apart either.
#[test]
fn dsb_report_output_conforms() {
    let app = apps::social::social_network();
    let serial = observe::observe_workers(&app, "conformance", 40.0, 2, 13, 1);
    for &w in &WORKERS[1..] {
        let par = observe::observe_workers(&app, "conformance", 40.0, 2, 13, w);
        assert_eq!(serial.jsonl, par.jsonl, "JSONL diverged at workers={w}");
        assert_eq!(serial.top, par.top, "dsb-top diverged at workers={w}");
    }
}

/// Chaos conformance: fault injection happens at quiesced boundaries, so
/// a chaos run — fault state, failures, refills, alerts, diagnoses, the
/// full JSONL — must be byte-identical under the serial and the sharded
/// engine. Two scenarios cover both injection families: machine-crash
/// (instance state flips + failed-fast propagation) and cache-loss
/// (forced misses + cold refills).
#[test]
fn chaos_runs_conform() {
    use deathstarbench_sim::experiments::chaos;
    // 4 s covers inject (2 s) → restart (3 s) → warm again (3.5–4 s);
    // the full-length runs are pinned by the tests/chaos.rs goldens.
    let secs = Some(4);
    for name in ["machine-crash", "cache-loss"] {
        let serial = chaos::run_scenario_for(name, 1, secs);
        for &w in &WORKERS[1..] {
            let par = chaos::run_scenario_for(name, w, secs);
            assert_eq!(
                serial.timeline, par.timeline,
                "{name}: timeline diverged at workers={w}"
            );
            assert_eq!(
                serial.jsonl, par.jsonl,
                "{name}: JSONL diverged at workers={w}"
            );
        }
    }
}

/// The 64-seed generated-app sweep: the same conformance obligation over
/// the `dsb-gen` space (arbitrary depth/width/fanout graphs, their own
/// clusters, partitioned stores), driven briefly at each spec's own
/// calibrated load.
///
/// The drive window is short (200 ms) and the offered load capped:
/// divergence between engines is a structural property that shows up
/// within the first few cross-shard exchanges, while wall time here is
/// dominated by epoch-barrier crossings on default (µs-scale lookahead)
/// fabrics — 64 specs × 4 worker counts of it. The builtins above cover
/// long-window behavior.
#[test]
fn generated_apps_conform() {
    for seed in 0..64u64 {
        let g = GenSpec::sample(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(seed + 1));
        let app = g.build();
        let mut cluster = g.cluster();
        cluster.trace_sample_prob = 0.25;
        let qps = g.qps().min(1_000.0);
        let serial = run_digest(&app, &cluster, qps, 200, seed, 1);
        for &w in &WORKERS[1..] {
            let par = run_digest(&app, &cluster, qps, 200, seed, w);
            assert_eq!(
                serial, par,
                "gen seed {seed}: digest diverged at workers={w} (spec {g:?})"
            );
        }
    }
}
