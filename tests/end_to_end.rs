//! Cross-crate integration tests: whole applications on whole clusters,
//! with workload generation, tracing, cluster management and the
//! experiment harness working together.

use deathstarbench_sim::apps::{self, BuiltApp};
use deathstarbench_sim::cluster::{Autoscaler, ScalePolicy};
use deathstarbench_sim::core::{ClusterSpec, MachineSpec, RequestType, ServiceId, Simulation};
use deathstarbench_sim::simcore::{SimDuration, SimTime};
use deathstarbench_sim::trace::critical_path;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};

fn cluster() -> ClusterSpec {
    let mut c = ClusterSpec::xeon_cluster(8, 2);
    for _ in 0..24 {
        c.machines.push(MachineSpec::edge_device());
    }
    c
}

fn run(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> Simulation {
    let mut c = cluster();
    c.trace_sample_prob = 0.02;
    let mut sim = Simulation::new(app.spec.clone(), c, seed);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
    sim.run_until_idle();
    sim
}

fn totals(sim: &Simulation) -> (u64, u64) {
    let mut t = (0, 0);
    for i in 0..16u32 {
        if let Some(st) = sim.request_stats(RequestType(i)) {
            t.0 += st.issued;
            t.1 += st.completed;
        }
    }
    t
}

/// Every application runs end to end with zero lost requests and sane
/// latency, and every service that the mix exercises records spans.
#[test]
fn all_six_applications_conserve_requests() {
    let suite: Vec<BuiltApp> = vec![
        apps::social::social_network(),
        apps::media::media_service(),
        apps::ecommerce::ecommerce(),
        apps::banking::banking(),
        apps::swarm::swarm(apps::swarm::SwarmVariant::Edge),
        apps::swarm::swarm(apps::swarm::SwarmVariant::Cloud),
    ];
    for (i, app) in suite.iter().enumerate() {
        let sim = run(app, 40.0, 6, 10 + i as u64);
        let (issued, completed) = totals(&sim);
        assert!(issued > 100, "{}: issued {issued}", app.spec.name);
        assert_eq!(issued, completed, "{}: lost requests", app.spec.name);
        // The mix must exercise a decent fraction of the graph.
        let active = (0..app.spec.service_count())
            .filter(|&s| sim.collector().service(s as u32).is_some())
            .count();
        assert!(
            active as f64 >= app.spec.service_count() as f64 * 0.6,
            "{}: only {active}/{} services saw traffic",
            app.spec.name,
            app.spec.service_count()
        );
    }
}

/// The repost query (read + compose + broadcast) is the slowest Social
/// Network query type, as §3.8 reports; placing an order is far slower
/// than browsing in E-commerce.
#[test]
fn query_diversity_matches_paper() {
    let social = apps::social::social_network();
    let sim = run(&social, 120.0, 10, 3);
    let p99 = |rt: RequestType| sim.request_stats(rt).unwrap().p99();
    let repost = p99(apps::social::REPOST);
    assert!(
        repost > p99(apps::social::READ_POST),
        "repost must beat readPost"
    );
    assert!(repost > p99(apps::social::LOGIN));
    assert!(repost > p99(apps::social::READ_TIMELINE));

    let ecom = apps::ecommerce::ecommerce();
    let sim = run(&ecom, 120.0, 10, 4);
    let order = sim
        .request_stats(apps::ecommerce::PLACE_ORDER)
        .unwrap()
        .p99();
    let browse = sim.request_stats(apps::ecommerce::BROWSE).unwrap().p99();
    assert!(
        order > browse * 2,
        "placing an order ({order}) must be much slower than browsing ({browse})"
    );
}

/// Traces stitched across 6+ services form well-formed trees whose
/// critical path accounts for (most of) the end-to-end latency.
#[test]
fn traces_are_well_formed_trees() {
    let app = apps::social::social_network();
    let mut c = cluster();
    c.trace_sample_prob = 1.0;
    let mut sim = Simulation::new(app.spec.clone(), c, 5);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(100), 5);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(2), 50.0);
    sim.run_until_idle();
    let mut checked = 0;
    for (_, spans) in sim.collector().sampled_traces() {
        let roots = spans.iter().filter(|s| s.parent.is_none()).count();
        assert_eq!(roots, 1, "exactly one root per trace");
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        for s in spans {
            assert!(s.start >= root.start && s.end <= root.end + SimDuration::from_millis(1));
        }
        let attr = critical_path(spans);
        let total: u64 = attr.iter().map(|a| a.ns).sum();
        let dur = root.duration().as_nanos();
        assert!(
            total <= dur + 1_000,
            "critical path {total} exceeds root duration {dur}"
        );
        assert!(total > dur / 2, "critical path must cover most of the root");
        checked += 1;
    }
    assert!(checked > 50, "checked {checked} traces");
}

/// An autoscaler managing the full Social Network absorbs a sustained
/// overload: instances grow and late-run tail improves vs the unmanaged
/// deployment.
#[test]
fn autoscaling_social_network_under_overload() {
    let app = deathstarbench_sim::experiments::harness::shrink(&apps::social::social_network(), 8);
    let run_managed = |managed: bool| {
        let mut c = cluster();
        c.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(app.spec.clone(), c, 6);
        let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), 6);
        let mut scaler = Autoscaler::new(ScalePolicy {
            cooldown: SimDuration::from_secs(4),
            max_instances: 30,
            ..ScalePolicy::default()
        });
        if managed {
            for i in 0..app.spec.service_count() {
                scaler.manage(ServiceId(i as u32));
            }
        }
        // Well above the shrunk deployment's ~3k QPS capacity.
        for s in 0..24u64 {
            let (a, b) = (SimTime::from_secs(s), SimTime::from_secs(s + 1));
            load.drive(&mut sim, a, b, 4_000.0);
            sim.advance_to(b);
            scaler.tick(&mut sim);
        }
        let mut h = deathstarbench_sim::simcore::Histogram::compact();
        for t in 0..16u32 {
            if let Some(st) = sim.request_stats(RequestType(t)) {
                h.merge(&st.windows.merged_range(18, 24));
            }
        }
        (h.quantile(0.99), scaler.events().len())
    };
    let (managed_p99, actions) = run_managed(true);
    let (unmanaged_p99, _) = run_managed(false);
    assert!(actions > 0, "scaler must act");
    assert!(
        managed_p99 < unmanaged_p99,
        "managed {managed_p99} must beat unmanaged {unmanaged_p99}"
    );
}

/// Determinism across the whole stack: same seed, same everything.
#[test]
fn full_stack_determinism() {
    let digest = |seed: u64| {
        let app = apps::media::media_service();
        let sim = run(&app, 60.0, 4, seed);
        let (issued, completed) = totals(&sim);
        let mut lat = 0u64;
        for i in 0..16u32 {
            if let Some(st) = sim.request_stats(RequestType(i)) {
                lat ^= st.latency.quantile(0.99).rotate_left(i);
            }
        }
        (issued, completed, lat, sim.events_processed())
    };
    assert_eq!(digest(77), digest(77));
    assert_ne!(digest(77), digest(78));
}

/// The experiment harness's goodput search brackets a real capacity:
/// offered load below it meets QoS, load 4x above it does not.
#[test]
fn goodput_search_is_consistent() {
    use deathstarbench_sim::experiments::harness as h;
    let app = h::shrink(&apps::banking::banking(), 8);
    let cluster = h::make_cluster(4);
    let g = h::max_qps_under_qos(&app, &cluster, &|_| {}, app.qos_p99, 4, 9);
    assert!(g > 0.0, "goodput {g}");
    let below = h::probe(&app, &cluster, &|_| {}, g * 0.5, 4, 1, 9);
    assert!(below.p99 <= app.qos_p99, "below-goodput probe violates QoS");
    let above = h::probe(&app, &cluster, &|_| {}, g * 4.0, 4, 1, 9);
    assert!(
        above.p99 > app.qos_p99 || above.completion < 0.95,
        "4x goodput should violate QoS"
    );
}
