//! Helpers shared by the root integration suites (goldens, determinism).

#![allow(dead_code)] // each test binary uses a subset

use deathstarbench_sim::apps::BuiltApp;
use deathstarbench_sim::core::{
    ClusterSpec, LbPolicy, MachineSpec, RequestType, ServiceId, Simulation,
};
use deathstarbench_sim::simcore::SimTime;
use deathstarbench_sim::workload::{OpenLoop, UserPopulation};
use std::fmt::Write as _;

/// Highest request-type id used by any app in the suite.
pub const MAX_RTYPE: u32 = 16;

/// The reference cluster every fixture is pinned to: 8 Xeon servers on
/// 2 racks plus 24 edge devices (needed by Swarm; harmless otherwise),
/// tracing off.
pub fn fixed_cluster() -> ClusterSpec {
    let mut cluster = ClusterSpec::xeon_cluster(8, 2);
    for _ in 0..24 {
        cluster.machines.push(MachineSpec::edge_device());
    }
    cluster.trace_sample_prob = 0.0;
    cluster
}

/// Runs `app` on the reference cluster under its own query mix at
/// `qps` for `secs` virtual seconds, then drains.
pub fn run_fixed(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> Simulation {
    let mut sim = Simulation::new(app.spec.clone(), fixed_cluster(), seed);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
    sim.run_until_idle();
    sim
}

/// `(issued, completed, rejected)` summed over all request types.
pub fn totals(sim: &Simulation) -> (u64, u64, u64) {
    let mut t = (0, 0, 0);
    for i in 0..MAX_RTYPE {
        if let Some(st) = sim.request_stats(RequestType(i)) {
            t.0 += st.issued;
            t.1 += st.completed;
            t.2 += st.rejected;
        }
    }
    t
}

/// Renders the integer-only summary that golden fixtures pin: request
/// counts and latency percentiles per request type, plus per-service
/// invocation counts — broken down per endpoint for multi-endpoint
/// services (both halves of a cache's get/set pair must see traffic)
/// and per shard for `Partition` services (the load split across
/// shards) — and each service's instance-to-machine placement (so any
/// change to the placement policy shows up as a fixture diff, not just
/// as a latency shift). Every field is deterministic at a fixed seed,
/// and the latency percentiles move on any change to per-tier service
/// demand.
pub fn summary(app: &BuiltApp, sim: &Simulation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "app: {}", app.spec.name);
    let _ = writeln!(out, "services: {}", app.spec.service_count());
    let _ = writeln!(out, "events: {}", sim.events_processed());
    for i in 0..MAX_RTYPE {
        if let Some(st) = sim.request_stats(RequestType(i)) {
            let _ = writeln!(
                out,
                "type {i}: issued={} completed={} rejected={} \
                 p50={}ns p90={}ns p99={}ns max={}ns",
                st.issued,
                st.completed,
                st.rejected,
                st.latency.quantile(0.5),
                st.latency.quantile(0.9),
                st.latency.quantile(0.99),
                st.latency.max(),
            );
        }
    }
    for i in 0..app.spec.service_count() {
        let id = ServiceId(i as u32);
        let svc = app.spec.service(id);
        let stats = sim.service_stats(id);
        let mut line = format!("service {}: invocations={}", svc.name, stats.invocations);
        if svc.endpoints.len() > 1 {
            let per_ep: Vec<String> = svc
                .endpoints
                .iter()
                .enumerate()
                .map(|(e, ep)| format!("{}={}", ep.name, stats.endpoint_count(e)))
                .collect();
            let _ = write!(line, " endpoints[{}]", per_ep.join(" "));
        }
        let machines: Vec<String> = sim
            .instances_of(id)
            .iter()
            .map(|inst| sim.instance_machine(*inst).0.to_string())
            .collect();
        let _ = write!(line, " machines[{}]", machines.join("|"));
        if svc.lb == LbPolicy::Partition {
            let per_shard: Vec<String> = sim
                .instances_of(id)
                .iter()
                .map(|inst| sim.instance_served(*inst).to_string())
                .collect();
            let _ = write!(line, " shards[{}]", per_shard.join("|"));
        }
        let _ = writeln!(out, "{line}");
    }
    out
}
