//! Placement property behind the DSB015 lookahead certificate: an IPC
//! edge (same-host-only protocol) or a `CoLocate` rider must never be
//! forced across machines by the deterministic placement plan — for
//! every builtin on the reference cluster, and for 64 generated specs
//! on their own clusters. If this drifted, the certificate's
//! partition-alignment and same-host reasoning would be unsound.

mod common;

use deathstarbench_sim::apps;
use dsb_core::{AppSpec, ClusterSpec, PlacementHint, PlacementPlan, ServiceId, Step};
use dsb_gen::GenSpec;

/// Collects every call target in `steps`, branch arms included.
fn call_targets(steps: &[Step], out: &mut Vec<dsb_core::EndpointRef>) {
    for s in steps {
        match s {
            Step::Call { target, .. } | Step::FanCall { target, .. } => out.push(*target),
            Step::ParCall { calls } => out.extend(calls.iter().map(|(t, _)| *t)),
            Step::Branch { then, els, .. } | Step::CacheLookup { then, els, .. } => {
                call_targets(then, out);
                call_targets(els, out);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Every machine hosting an instance of an IPC caller must also host an
/// instance of the callee (so a same-host route always exists), and
/// every `CoLocate(anchor)` instance `k` must share its machine with
/// anchor instance `k mod n` — the documented rider contract.
fn assert_local_routes(tag: &str, spec: &AppSpec, cluster: &ClusterSpec) {
    let plan = PlacementPlan::compute(spec, cluster);
    // CoLocate riders sit exactly on their anchor's machines.
    for (i, svc) in spec.services.iter().enumerate() {
        let PlacementHint::CoLocate(anchor) = svc.placement else {
            continue;
        };
        let rider = plan.machines_of(ServiceId(i as u32));
        let anchors = plan.machines_of(anchor);
        assert!(
            !anchors.is_empty(),
            "{tag}: `{}` co-locates with an unplaced anchor",
            svc.name
        );
        for (k, m) in rider.iter().enumerate() {
            let want = anchors[k % anchors.len()];
            assert_eq!(
                *m, want,
                "{tag}: `{}` instance {k} landed on machine {} instead of riding \
                 its anchor's machine {}",
                svc.name, m.0, want.0
            );
        }
    }
    // IPC callees cover every machine their callers run on.
    for (i, svc) in spec.services.iter().enumerate() {
        let mut targets = Vec::new();
        for ep in &svc.endpoints {
            call_targets(&ep.script, &mut targets);
        }
        targets.sort_unstable_by_key(|t| (t.service.0, t.endpoint));
        targets.dedup();
        for t in targets {
            let callee = spec.service(t.service);
            if !callee.protocol.same_host_only() {
                continue;
            }
            let caller_machines = plan.machines_of(ServiceId(i as u32));
            let callee_machines = plan.machines_of(t.service);
            for m in caller_machines {
                assert!(
                    callee_machines.contains(m),
                    "{tag}: IPC edge `{}` -> `{}` has a caller on machine {} with \
                     no local callee instance (callee machines {:?})",
                    svc.name,
                    callee.name,
                    m.0,
                    callee_machines.iter().map(|m| m.0).collect::<Vec<_>>(),
                );
            }
        }
    }
}

#[test]
fn builtin_ipc_and_colocate_edges_stay_on_machine() {
    let cluster = common::fixed_cluster();
    for (name, _qps, app) in apps::all_builtin() {
        assert_local_routes(name, &app.spec, &cluster);
    }
}

#[test]
fn generated_ipc_and_colocate_edges_stay_on_machine() {
    for seed in 0..64u64 {
        let g = GenSpec::sample(seed);
        let app = g.build();
        let cluster = g.cluster();
        assert_local_routes(&format!("seed {seed}"), &app.spec, &cluster);
    }
}
