//! Tier-1 differential sweep: static analyzer predictions vs fixed-seed
//! simulation over generated apps, plus one pinned regression per
//! disagreement class the full sweeps have found (each spec below is the
//! testkit shrinker's minimal reproduction, kept verbatim).
//!
//! The tier-1 run covers 64 seeds to stay inside the CI wall-clock
//! budget; the offline acceptance run is
//! `DIFF_SEEDS=1000 cargo run --release -p dsb-gen --bin dsb-diff`.
//! Any failure prints a shrunk spec and a `DSB_PROP_SEED` that replays
//! it here.

use dsb_analyzer::CapacityModel;
use dsb_gen::{check_spec, GenSpec};
use dsb_testkit::runner::{check, Config};

fn model_of(g: &GenSpec) -> CapacityModel {
    let app = g.build();
    let entry = app.mix.entries()[0].entry;
    CapacityModel::compute(&app.spec, &[(entry, g.qps())], Some(&g.cluster()))
        .expect("generated graphs are acyclic")
}

#[test]
fn tier1_differential_sweep() {
    let mut cfg = Config::from_env();
    if std::env::var("DSB_PROP_CASES").is_err() {
        cfg.cases = match std::env::var("DIFF_SEEDS") {
            Ok(raw) => raw.trim().parse().expect("DIFF_SEEDS must be a u32"),
            Err(_) => 64,
        };
    }
    if let Err(ce) = check(&cfg, |rng| GenSpec::sample(rng.next_u64()), check_spec) {
        panic!("{}", ce.report("differential"));
    }
}

/// Class 1 (sweep seed 987735442208796562): the simulator charges
/// per-message kernel/libs processing to machine cores, so a chatty
/// app with near-zero compute saturated a 1-core machine the static
/// compute-only model priced at 34% utilization. Fixed by pricing
/// messages statically (`CapacityModel::machine_net`).
#[test]
fn pinned_net_processing_class() {
    let g = GenSpec {
        depth: 0,
        width: 0,
        fanout: 0,
        work_us: 0.0,
        tier_work_us: vec![],
        workers: 0,
        cache_shards: 0,
        db_shards: 2,
        hit_pct: 0,
        machines: 0,
        cores: 0,
        qps: 4224,
    };
    let m = model_of(&g);
    assert!(
        m.max_machine_utilization_with_net() > 2.0 * m.max_machine_utilization(),
        "the class this pins: network processing dominates compute here \
         (net-inclusive {:.2} vs compute-only {:.2})",
        m.max_machine_utilization_with_net(),
        m.max_machine_utilization()
    );
    check_spec(&g).expect("net-processing class must stay fixed");
}

/// Class 2 (sweep seed 10623461072940871808): a *blocking* mid-tier
/// holds its worker across the downstream store round-trip, so a
/// 1-worker tier with ~110 µs of local work saturated at a load the
/// local-demand model priced at 32% pool utilization. Fixed by the
/// concurrency-aware hold model (`CapacityModel::hold`).
#[test]
fn pinned_blocking_hold_class() {
    let g = GenSpec {
        depth: 0,
        width: 0,
        fanout: 0,
        work_us: 107.0,
        tier_work_us: vec![],
        workers: 0,
        cache_shards: 0,
        db_shards: 2,
        hit_pct: 0,
        machines: 2,
        cores: 0,
        qps: 2982,
    };
    let m = model_of(&g);
    assert!(
        m.max_tier_utilization_hold_floor() > 1.0 && m.max_tier_utilization() < 0.5,
        "the class this pins: downstream hold dominates local demand here \
         (hold floor {:.2} vs local-demand {:.2})",
        m.max_tier_utilization_hold_floor(),
        m.max_tier_utilization()
    );
    check_spec(&g).expect("blocking-hold class must stay fixed");
}

/// Class 3 (sweep seed 14705686243383700643): the wait-inclusive hold
/// estimate sat exactly on the 1.25 overload threshold while the smooth
/// differential workload drained at the horizon — M/M/k waits
/// overestimate queueing for evenly spaced arrivals and near-constant
/// service times. Fixed by certifying overload only from the no-wait
/// hold *floor* (and calm only from the wait-inclusive upper bound).
#[test]
fn pinned_gray_zone_boundary_class() {
    let g = GenSpec {
        depth: 3,
        width: 0,
        fanout: 0,
        work_us: 274.0,
        tier_work_us: vec![],
        workers: 4,
        cache_shards: 2,
        db_shards: 0,
        hit_pct: 0,
        machines: 2,
        cores: 4,
        qps: 3714,
    };
    let m = model_of(&g);
    let upper = m
        .max_tier_utilization_with_hold()
        .max(m.max_machine_utilization_with_net());
    let floor = m
        .max_tier_utilization_hold_floor()
        .max(m.max_machine_utilization_with_net());
    assert!(
        floor < 1.25 && upper > 0.8,
        "the class this pins: a gray-zone spec whose upper bound ({upper:.2}) \
         crosses thresholds its floor ({floor:.2}) does not"
    );
    check_spec(&g).expect("gray-zone boundary class must stay fixed");
}
