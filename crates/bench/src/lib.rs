//! # dsb-bench — benchmark kernels
//!
//! Small, fixed-size simulation kernels used by the Criterion benches in
//! `benches/`: one kernel per paper table/figure (exercising that figure's
//! code path end to end at miniature scale) plus engine microbenchmarks.
//!
//! The *scientific* outputs live in `dsb-experiments`; these kernels
//! measure the simulator's own performance so regressions in the engine or
//! the application models show up in `cargo bench`.

#![warn(missing_docs)]

use dsb_apps::BuiltApp;
use dsb_core::{RequestType, Simulation};
use dsb_simcore::SimTime;
use dsb_workload::{OpenLoop, UserPopulation};

/// Runs `app` for `secs` virtual seconds at `qps` on a small cluster and
/// returns the number of simulation events processed (the work metric).
pub fn mini_run(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> u64 {
    mini_run_completed(app, qps, secs, seed).0
}

/// [`mini_run`] that also returns total completions (sanity check).
pub fn mini_run_completed(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> (u64, u64) {
    let mut cluster = dsb_experiments::harness::make_cluster(4);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(app.spec.clone(), cluster, seed);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(200), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
    sim.run_until_idle();
    let mut completed = 0;
    for t in 0..16u32 {
        if let Some(st) = sim.request_stats(RequestType(t)) {
            completed += st.completed;
        }
    }
    (sim.events_processed(), completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_run_does_work() {
        let app = dsb_apps::singles::memcached();
        let (events, completed) = mini_run_completed(&app, 500.0, 2, 1);
        assert!(events > 1_000);
        assert!(completed > 500);
    }
}
