//! # dsb-bench — benchmark kernels
//!
//! Small, fixed-size simulation kernels used by the Criterion benches in
//! `benches/`: one kernel per paper table/figure (exercising that figure's
//! code path end to end at miniature scale) plus engine microbenchmarks.
//!
//! The *scientific* outputs live in `dsb-experiments`; these kernels
//! measure the simulator's own performance so regressions in the engine or
//! the application models show up in `cargo bench`.

#![warn(missing_docs)]

use dsb_apps::BuiltApp;
use dsb_core::{RequestType, Simulation};
use dsb_simcore::SimTime;
use dsb_workload::{OpenLoop, UserPopulation};

/// Runs `app` for `secs` virtual seconds at `qps` on a small cluster and
/// returns the number of simulation events processed (the work metric).
pub fn mini_run(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> u64 {
    mini_run_completed(app, qps, secs, seed).0
}

/// [`mini_run`] that also returns total completions (sanity check).
pub fn mini_run_completed(app: &BuiltApp, qps: f64, secs: u64, seed: u64) -> (u64, u64) {
    let mut cluster = dsb_experiments::harness::make_cluster(4);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(app.spec.clone(), cluster, seed);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(200), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
    sim.run_until_idle();
    let mut completed = 0;
    for t in 0..16u32 {
        if let Some(st) = sim.request_stats(RequestType(t)) {
            completed += st.completed;
        }
    }
    (sim.events_processed(), completed)
}

/// The fig22-style parallel kernel: a multi-rack cluster crunching long
/// compute chunked into fine preemption quanta — the event-dense shape
/// the sharded engine exists for (Fig. 22's tail-at-scale runs are this
/// workload at 10⁶-user scale).
///
/// Tuning notes, because every knob here serves the bench:
/// * `cpu_quantum = 0.5 µs` over 400 µs endpoints makes ~800 cheap
///   timeslice events per request, so the metric measures the engine's
///   event loop, not model bookkeeping;
/// * the fabric latencies are enlarged (ms-scale) so the conservative
///   lookahead window is fat and epoch barriers are rare — the regime a
///   real multi-machine deployment's 100 µs+ RPC delays put it in;
/// * 16 instances spread over all 8 machines keep every shard busy
///   inside each epoch.
pub fn fig22_kernel() -> (BuiltApp, dsb_core::ClusterSpec) {
    use dsb_core::{AppBuilder, Step};
    use dsb_simcore::{Dist, SimDuration};

    let mut app = AppBuilder::new("fig22-cruncher");
    let svc = app
        .service("cruncher")
        .profile(dsb_uarch::UarchProfile::memcached())
        .event_driven()
        .workers(32)
        .instances(16)
        .build();
    let crunch = app.endpoint(
        svc,
        "crunch",
        Dist::log_normal(512.0, 0.3),
        vec![Step::work_us(400.0)],
    );
    let spec = app.build();
    let built = BuiltApp {
        mix: dsb_workload::QueryMix::single(crunch, RequestType(0), 256.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![svc],
        frontend: svc,
        spec,
    };

    let mut cluster = dsb_core::ClusterSpec::xeon_cluster(8, 2);
    cluster.trace_sample_prob = 0.0;
    cluster.cpu_quantum = SimDuration::from_nanos(500);
    cluster.fabric.intra_rack_ns = 10_000_000;
    cluster.fabric.cross_rack_ns = 15_000_000;
    cluster.fabric.client_ns = 20_000_000;
    (built, cluster)
}

/// Runs the fig22 kernel for `secs` virtual seconds under `workers`
/// threads; returns `(events, completed)`. Identical across worker
/// counts by the parallel-conformance contract.
pub fn fig22_run(workers: usize, qps: f64, secs: u64, seed: u64) -> (u64, u64) {
    let (app, cluster) = fig22_kernel();
    let mut sim = Simulation::new(app.spec.clone(), cluster, seed);
    sim.set_workers(workers);
    let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(200), seed);
    load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
    sim.run_until_idle();
    let mut completed = 0;
    for t in 0..16u32 {
        if let Some(st) = sim.request_stats(RequestType(t)) {
            completed += st.completed;
        }
    }
    (sim.events_processed(), completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig22_kernel_is_event_dense_and_worker_invariant() {
        let serial = fig22_run(1, 400.0, 1, 7);
        assert!(serial.0 > 100_000, "events {serial:?}");
        assert!(serial.1 > 300, "completions {serial:?}");
        assert_eq!(serial, fig22_run(4, 400.0, 1, 7));
    }

    #[test]
    fn mini_run_does_work() {
        let app = dsb_apps::singles::memcached();
        let (events, completed) = mini_run_completed(&app, 500.0, 2, 1);
        assert!(events > 1_000);
        assert!(completed > 500);
    }
}
