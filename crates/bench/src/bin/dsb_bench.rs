//! `dsb-bench` — the committed performance baseline.
//!
//! Runs one fixed fig17-style kernel (the nginx→memcached two-tier app
//! under open-loop load, the suite's canonical backpressure shape) and
//! reports the simulator's throughput in *simulated requests completed
//! per wall-clock second*. The run is fully deterministic in simulated
//! terms — same seed, same injected load, same completions — so the only
//! thing that varies between machines or commits is the wall clock,
//! which is the point: this is the repo's perf regression canary.
//!
//! ```text
//! cargo run --release -p dsb-bench --bin dsb-bench              # print JSON
//! cargo run --release -p dsb-bench --bin dsb-bench -- BENCH_0.json
//! ```
//!
//! `ci.sh` writes `BENCH_0.json` when it is absent; the committed file
//! is the baseline snapshot for eyeballing against later runs.

use std::time::Instant;

/// Offered load of the kernel (req/s), chosen so the run is busy but
/// comfortably under the two-tier app's capacity.
const QPS: f64 = 2_000.0;
/// Simulated seconds of open-loop load.
const SECS: u64 = 20;
/// Simulation seed; fixed so completions are byte-stable.
const SEED: u64 = 17;
/// Timed repetitions (after one untimed warm-up).
const REPS: u32 = 3;

fn main() {
    let app = dsb_apps::twotier::twotier(64, 1024);
    // Warm-up: touch allocator and page cache before timing.
    let (events, completed) = dsb_bench::mini_run_completed(&app, QPS, SECS, SEED);
    let start = Instant::now();
    for _ in 0..REPS {
        let again = dsb_bench::mini_run_completed(&app, QPS, SECS, SEED);
        assert_eq!(
            again,
            (events, completed),
            "bench kernel must be deterministic"
        );
    }
    let wall_s = start.elapsed().as_secs_f64() / REPS as f64;
    let json = format!(
        "{{\n  \"bench\": \"fig17_twotier_kernel\",\n  \"app\": \"nginx-memcached twotier(64, 1024)\",\n  \
         \"qps\": {QPS},\n  \"simulated_seconds\": {SECS},\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \
         \"completed_requests\": {completed},\n  \"events\": {events},\n  \
         \"wall_seconds\": {wall_s:.4},\n  \
         \"requests_per_wall_second\": {:.0},\n  \"events_per_wall_second\": {:.0}\n}}\n",
        completed as f64 / wall_s,
        events as f64 / wall_s,
    );
    match std::env::args().nth(1) {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("dsb-bench: wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
