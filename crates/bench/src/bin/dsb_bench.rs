//! `dsb-bench` — the committed performance baseline.
//!
//! Runs one fixed fig17-style kernel (the nginx→memcached two-tier app
//! under open-loop load, the suite's canonical backpressure shape) and
//! reports the simulator's throughput in *simulated requests completed
//! per wall-clock second*. The run is fully deterministic in simulated
//! terms — same seed, same injected load, same completions — so the only
//! thing that varies between machines or commits is the wall clock,
//! which is the point: this is the repo's perf regression canary.
//!
//! ```text
//! cargo run --release -p dsb-bench --bin dsb-bench              # print JSON
//! cargo run --release -p dsb-bench --bin dsb-bench -- BENCH_0.json
//! cargo run --release -p dsb-bench --bin dsb-bench -- --workers 4 BENCH_1.json
//! ```
//!
//! With `--workers N` the binary runs the fig22-style parallel kernel
//! (`dsb_bench::fig22_kernel`) instead: one serial reference pass, then
//! timed passes on the sharded engine with `N` threads, asserting
//! identical events and completions, and reporting `parallel_speedup`
//! (serial wall / parallel wall) next to `host_cpus` — on a 1-CPU host
//! the speedup honestly reads ~1x, and the headline metric is the
//! event-dense kernel's `events_per_wall_second`.
//!
//! `ci.sh` writes `BENCH_0.json` / `BENCH_1.json` when absent; the
//! committed files are the baseline snapshots for eyeballing against
//! later runs.

use std::time::Instant;

/// Offered load of the kernel (req/s), chosen so the run is busy but
/// comfortably under the two-tier app's capacity.
const QPS: f64 = 2_000.0;
/// Simulated seconds of open-loop load.
const SECS: u64 = 20;
/// Simulation seed; fixed so completions are byte-stable.
const SEED: u64 = 17;
/// Timed repetitions (after one untimed warm-up).
const REPS: u32 = 3;

/// Offered load / duration / seed of the fig22 parallel kernel. Lower
/// qps than the fig17 kernel but ~400 events per request: the event
/// loop, not the request machinery, is what this one measures.
const PAR_QPS: f64 = 2_000.0;
const PAR_SECS: u64 = 10;
const PAR_SEED: u64 = 22;

fn run_parallel_bench(workers: usize, path: Option<String>) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Serial reference: correctness anchor and the speedup denominator.
    let warm = dsb_bench::fig22_run(1, PAR_QPS, PAR_SECS, PAR_SEED);
    let serial_start = Instant::now();
    let (events, completed) = dsb_bench::fig22_run(1, PAR_QPS, PAR_SECS, PAR_SEED);
    let serial_wall = serial_start.elapsed().as_secs_f64();
    assert_eq!((events, completed), warm, "serial kernel must be stable");

    let start = Instant::now();
    for _ in 0..REPS {
        let par = dsb_bench::fig22_run(workers, PAR_QPS, PAR_SECS, PAR_SEED);
        assert_eq!(
            par,
            (events, completed),
            "parallel kernel diverged from serial at workers={workers}"
        );
    }
    let wall_s = start.elapsed().as_secs_f64() / REPS as f64;
    let json = format!(
        "{{\n  \"bench\": \"fig22_parallel_kernel\",\n  \"app\": \"fig22-cruncher x16 over 8 machines\",\n  \
         \"qps\": {PAR_QPS},\n  \"simulated_seconds\": {PAR_SECS},\n  \"seed\": {PAR_SEED},\n  \"reps\": {REPS},\n  \
         \"workers\": {workers},\n  \"host_cpus\": {host_cpus},\n  \
         \"completed_requests\": {completed},\n  \"events\": {events},\n  \
         \"serial_wall_seconds\": {serial_wall:.4},\n  \"wall_seconds\": {wall_s:.4},\n  \
         \"parallel_speedup\": {:.2},\n  \
         \"requests_per_wall_second\": {:.0},\n  \"events_per_wall_second\": {:.0}\n}}\n",
        serial_wall / wall_s,
        completed as f64 / wall_s,
        events as f64 / wall_s,
    );
    match path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("dsb-bench: wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--workers") {
        let workers: usize = args
            .next()
            .and_then(|w| w.parse().ok())
            .expect("--workers needs a positive integer");
        run_parallel_bench(workers.max(1), args.next());
        return;
    }

    let app = dsb_apps::twotier::twotier(64, 1024);
    // Warm-up: touch allocator and page cache before timing.
    let (events, completed) = dsb_bench::mini_run_completed(&app, QPS, SECS, SEED);
    let start = Instant::now();
    for _ in 0..REPS {
        let again = dsb_bench::mini_run_completed(&app, QPS, SECS, SEED);
        assert_eq!(
            again,
            (events, completed),
            "bench kernel must be deterministic"
        );
    }
    let wall_s = start.elapsed().as_secs_f64() / REPS as f64;
    let json = format!(
        "{{\n  \"bench\": \"fig17_twotier_kernel\",\n  \"app\": \"nginx-memcached twotier(64, 1024)\",\n  \
         \"qps\": {QPS},\n  \"simulated_seconds\": {SECS},\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \
         \"completed_requests\": {completed},\n  \"events\": {events},\n  \
         \"wall_seconds\": {wall_s:.4},\n  \
         \"requests_per_wall_second\": {:.0},\n  \"events_per_wall_second\": {:.0}\n}}\n",
        completed as f64 / wall_s,
        events as f64 / wall_s,
    );
    match first {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("dsb-bench: wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
}
