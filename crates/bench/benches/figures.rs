//! One Criterion bench per paper table/figure.
//!
//! Each bench runs a miniature kernel of the corresponding experiment —
//! the same code path `dsb-experiments` uses, at a fixed small scale — so
//! `cargo bench` both validates that every figure's pipeline still runs
//! and tracks the simulator's performance on it. The full-size outputs are
//! produced by the `dsb-experiments` binaries (`cargo run --bin figNN`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsb_apps::{monolith, singles, social, swarm, twotier};
use dsb_bench::mini_run;
use dsb_experiments::{fig10, fig11, fig18, table01, Scale};
use dsb_net::FpgaOffload;
use dsb_simcore::SimTime;

fn group<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g
}

fn bench_table01(c: &mut Criterion) {
    let mut g = group(c, "table01");
    g.bench_function("suite_composition", |b| {
        b.iter(|| black_box(table01::run(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig03(c: &mut Criterion) {
    let mut g = group(c, "fig03");
    let nginx = singles::nginx();
    let social = social::social_network();
    g.bench_function("net_vs_app_processing", |b| {
        b.iter(|| {
            black_box(mini_run(&nginx, 500.0, 1, 1));
            black_box(mini_run(&social, 40.0, 1, 1));
        })
    });
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let mut g = group(c, "fig09");
    let edge = swarm::swarm(swarm::SwarmVariant::Edge);
    let cloud = swarm::swarm(swarm::SwarmVariant::Cloud);
    g.bench_function("swarm_edge_vs_cloud", |b| {
        b.iter(|| {
            black_box(mini_run(&edge, 10.0, 1, 1));
            black_box(mini_run(&cloud, 10.0, 1, 1));
        })
    });
    g.finish();
}

fn bench_fig10_fig11(c: &mut Criterion) {
    let mut g = group(c, "fig10_fig11");
    g.bench_function("cycle_breakdown_tables", |b| {
        b.iter(|| {
            // fig10 includes short end-to-end runs; fig11 is analytic.
            black_box(fig11::run(Scale::Quick));
            black_box(fig10::run(Scale::Quick).len())
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = group(c, "fig12");
    let xapian = singles::xapian();
    g.bench_function("frequency_probe_kernel", |b| {
        b.iter(|| {
            // One cell of the load x frequency grid.
            let cluster = dsb_experiments::harness::make_cluster(2);
            let p = dsb_experiments::harness::probe(
                &xapian,
                &cluster,
                &|sim| sim.set_all_frequencies(1.2),
                2_000.0,
                2,
                1,
                1,
            );
            black_box(p.p99)
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = group(c, "fig13");
    let app = dsb_experiments::harness::shrink(&social::social_network(), 8);
    g.bench_function("thunderx_probe_kernel", |b| {
        b.iter(|| {
            let cluster = dsb_experiments::harness::make_thunderx_cluster(2);
            let p = dsb_experiments::harness::probe(&app, &cluster, &|_| {}, 50.0, 2, 1, 1);
            black_box(p.p99)
        })
    });
    g.finish();
}

fn bench_fig14_fig15(c: &mut Criterion) {
    let mut g = group(c, "fig14_fig15");
    let banking = dsb_apps::banking::banking();
    g.bench_function("domain_accounting_run", |b| {
        b.iter(|| black_box(mini_run(&banking, 60.0, 1, 1)))
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut g = group(c, "fig16");
    let app = social::social_network();
    g.bench_function("fpga_offload_run", |b| {
        b.iter(|| {
            let mut cluster = dsb_experiments::harness::make_cluster(4);
            cluster.trace_sample_prob = 0.0;
            let (mut sim, mut load) = dsb_experiments::harness::build_sim(&app, cluster, 1);
            sim.set_offload(FpgaOffload::with_speedup(50.0));
            dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 100.0);
            sim.run_until_idle();
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

fn bench_fig17(c: &mut Criterion) {
    let mut g = group(c, "fig17");
    let app = twotier::twotier(64, 1);
    g.bench_function("backpressure_run", |b| {
        b.iter(|| black_box(mini_run(&app, 10_000.0, 1, 1)))
    });
    g.finish();
}

fn bench_fig18(c: &mut Criterion) {
    let mut g = group(c, "fig18");
    g.bench_function("graph_export", |b| {
        b.iter(|| black_box(fig18::run(Scale::Quick)))
    });
    g.finish();
}

fn bench_fig19_fig22a(c: &mut Criterion) {
    let mut g = group(c, "fig19_fig22a");
    let app = social::social_network();
    g.bench_function("poisoned_backend_run", |b| {
        b.iter(|| {
            let mut cluster = dsb_experiments::harness::make_cluster(4);
            cluster.trace_sample_prob = 0.0;
            let (mut sim, mut load) = dsb_experiments::harness::build_sim(&app, cluster, 1);
            let mongo = dsb_core::EndpointRef {
                service: app.service("mongodb-posts"),
                endpoint: 0,
            };
            for k in 0..2_000u64 {
                sim.inject(
                    SimTime::from_nanos(k * 500_000),
                    mongo,
                    dsb_core::RequestType(15),
                    256,
                    k,
                );
            }
            dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 60.0);
            sim.run_until_idle();
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let mut g = group(c, "fig20");
    let micro = dsb_experiments::harness::shrink(&social::social_network(), 8);
    let mono = dsb_experiments::harness::shrink(&monolith::social_monolith(), 8);
    g.bench_function("recovery_kernels", |b| {
        b.iter(|| {
            black_box(mini_run(&micro, 60.0, 1, 1));
            black_box(mini_run(&mono, 60.0, 1, 1));
        })
    });
    g.finish();
}

fn bench_fig21(c: &mut Criterion) {
    let mut g = group(c, "fig21");
    let app = social::social_network();
    let backends: Vec<dsb_core::ServiceId> = app
        .spec
        .services
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name.contains("memcached") || s.name.contains("mongodb"))
        .map(|(i, _)| dsb_core::ServiceId(i as u32))
        .collect();
    let s = dsb_serverless::to_serverless(
        &app.spec,
        dsb_serverless::ExecutionMode::LambdaMem,
        &backends,
    );
    let mut lambda = app.clone();
    lambda.spec = s.app;
    g.bench_function("lambda_mem_run", |b| {
        b.iter(|| black_box(mini_run(&lambda, 40.0, 1, 1)))
    });
    g.finish();
}

fn bench_fig22bc(c: &mut Criterion) {
    let mut g = group(c, "fig22bc");
    let app = dsb_experiments::harness::shrink(&social::social_network(), 8);
    g.bench_function("skew_and_slow_server_kernels", |b| {
        b.iter(|| {
            let mut cluster = dsb_experiments::harness::make_cluster(4);
            cluster.trace_sample_prob = 0.0;
            let (mut sim, mut load) = dsb_experiments::harness::build_sim_with_users(
                &app,
                cluster,
                1,
                dsb_workload::UserPopulation::with_skew(1000, 95.0),
            );
            let mut rng = dsb_simcore::Rng::new(5);
            dsb_cluster::slow_down_machines(&mut sim, 0.25, 1.0, &mut rng);
            dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 60.0);
            sim.run_until_idle();
            black_box(sim.events_processed())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table01,
    bench_fig03,
    bench_fig09,
    bench_fig10_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14_fig15,
    bench_fig16,
    bench_fig17,
    bench_fig18,
    bench_fig19_fig22a,
    bench_fig20,
    bench_fig21,
    bench_fig22bc
);
criterion_main!(benches);
