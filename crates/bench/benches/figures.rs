//! One benchmark per paper table/figure, on the `dsb-testkit` runner.
//!
//! Each bench runs a miniature kernel of the corresponding experiment —
//! the same code path `dsb-experiments` uses, at a fixed small scale — so
//! `cargo bench` both validates that every figure's pipeline still runs
//! and tracks the simulator's performance on it. The full-size outputs are
//! produced by the `dsb-experiments` binaries (`cargo run --bin figNN`).
//! Under `cargo test` every kernel runs once as a smoke pass.

use dsb_apps::{monolith, singles, social, swarm, twotier};
use dsb_bench::mini_run;
use dsb_experiments::{fig10, fig11, fig18, table01, Scale};
use dsb_net::FpgaOffload;
use dsb_simcore::SimTime;
use dsb_testkit::bench::{black_box, Bench};

fn bench_table01(b: &mut Bench) {
    b.bench("table01/suite_composition", || {
        black_box(table01::run(Scale::Quick))
    });
}

fn bench_fig03(b: &mut Bench) {
    let nginx = singles::nginx();
    let social = social::social_network();
    b.bench("fig03/net_vs_app_processing", || {
        black_box(mini_run(&nginx, 500.0, 1, 1));
        black_box(mini_run(&social, 40.0, 1, 1))
    });
}

fn bench_fig09(b: &mut Bench) {
    let edge = swarm::swarm(swarm::SwarmVariant::Edge);
    let cloud = swarm::swarm(swarm::SwarmVariant::Cloud);
    b.bench("fig09/swarm_edge_vs_cloud", || {
        black_box(mini_run(&edge, 10.0, 1, 1));
        black_box(mini_run(&cloud, 10.0, 1, 1))
    });
}

fn bench_fig10_fig11(b: &mut Bench) {
    b.bench("fig10_fig11/cycle_breakdown_tables", || {
        // fig10 includes short end-to-end runs; fig11 is analytic.
        black_box(fig11::run(Scale::Quick));
        black_box(fig10::run(Scale::Quick).len())
    });
}

fn bench_fig12(b: &mut Bench) {
    let xapian = singles::xapian();
    b.bench("fig12/frequency_probe_kernel", || {
        // One cell of the load x frequency grid.
        let cluster = dsb_experiments::harness::make_cluster(2);
        let p = dsb_experiments::harness::probe(
            &xapian,
            &cluster,
            &|sim| sim.set_all_frequencies(1.2),
            2_000.0,
            2,
            1,
            1,
        );
        black_box(p.p99)
    });
}

fn bench_fig13(b: &mut Bench) {
    let app = dsb_experiments::harness::shrink(&social::social_network(), 8);
    b.bench("fig13/thunderx_probe_kernel", || {
        let cluster = dsb_experiments::harness::make_thunderx_cluster(2);
        let p = dsb_experiments::harness::probe(&app, &cluster, &|_| {}, 50.0, 2, 1, 1);
        black_box(p.p99)
    });
}

fn bench_fig14_fig15(b: &mut Bench) {
    let banking = dsb_apps::banking::banking();
    b.bench("fig14_fig15/domain_accounting_run", || {
        black_box(mini_run(&banking, 60.0, 1, 1))
    });
}

fn bench_fig16(b: &mut Bench) {
    let app = social::social_network();
    b.bench("fig16/fpga_offload_run", || {
        let mut cluster = dsb_experiments::harness::make_cluster(4);
        cluster.trace_sample_prob = 0.0;
        let (mut sim, mut load) = dsb_experiments::harness::build_sim(&app, cluster, 1);
        sim.set_offload(FpgaOffload::with_speedup(50.0));
        dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 100.0);
        sim.run_until_idle();
        black_box(sim.events_processed())
    });
}

fn bench_fig17(b: &mut Bench) {
    let app = twotier::twotier(64, 1);
    b.bench("fig17/backpressure_run", || {
        black_box(mini_run(&app, 10_000.0, 1, 1))
    });
}

fn bench_fig18(b: &mut Bench) {
    b.bench("fig18/graph_export", || black_box(fig18::run(Scale::Quick)));
}

fn bench_fig19_fig22a(b: &mut Bench) {
    let app = social::social_network();
    b.bench("fig19_fig22a/poisoned_backend_run", || {
        let mut cluster = dsb_experiments::harness::make_cluster(4);
        cluster.trace_sample_prob = 0.0;
        let (mut sim, mut load) = dsb_experiments::harness::build_sim(&app, cluster, 1);
        let mongo = dsb_core::EndpointRef {
            service: app.service("mongodb-posts"),
            endpoint: 0,
        };
        for k in 0..2_000u64 {
            sim.inject(
                SimTime::from_nanos(k * 500_000),
                mongo,
                dsb_core::RequestType(15),
                256,
                k,
            );
        }
        dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 60.0);
        sim.run_until_idle();
        black_box(sim.events_processed())
    });
}

fn bench_fig20(b: &mut Bench) {
    let micro = dsb_experiments::harness::shrink(&social::social_network(), 8);
    let mono = dsb_experiments::harness::shrink(&monolith::social_monolith(), 8);
    b.bench("fig20/recovery_kernels", || {
        black_box(mini_run(&micro, 60.0, 1, 1));
        black_box(mini_run(&mono, 60.0, 1, 1))
    });
}

fn bench_fig21(b: &mut Bench) {
    let app = social::social_network();
    let backends: Vec<dsb_core::ServiceId> = app
        .spec
        .services
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name.contains("memcached") || s.name.contains("mongodb"))
        .map(|(i, _)| dsb_core::ServiceId(i as u32))
        .collect();
    let s = dsb_serverless::to_serverless(
        &app.spec,
        dsb_serverless::ExecutionMode::LambdaMem,
        &backends,
    );
    let mut lambda = app.clone();
    lambda.spec = s.app;
    b.bench("fig21/lambda_mem_run", || {
        black_box(mini_run(&lambda, 40.0, 1, 1))
    });
}

fn bench_fig22bc(b: &mut Bench) {
    let app = dsb_experiments::harness::shrink(&social::social_network(), 8);
    b.bench("fig22bc/skew_and_slow_server_kernels", || {
        let mut cluster = dsb_experiments::harness::make_cluster(4);
        cluster.trace_sample_prob = 0.0;
        let (mut sim, mut load) = dsb_experiments::harness::build_sim_with_users(
            &app,
            cluster,
            1,
            dsb_workload::UserPopulation::with_skew(1000, 95.0),
        );
        let mut rng = dsb_simcore::Rng::new(5);
        dsb_cluster::slow_down_machines(&mut sim, 0.25, 1.0, &mut rng);
        dsb_experiments::harness::drive(&mut sim, &mut load, 0, 1, 60.0);
        sim.run_until_idle();
        black_box(sim.events_processed())
    });
}

fn main() {
    let mut b = Bench::new("figures");
    bench_table01(&mut b);
    bench_fig03(&mut b);
    bench_fig09(&mut b);
    bench_fig10_fig11(&mut b);
    bench_fig12(&mut b);
    bench_fig13(&mut b);
    bench_fig14_fig15(&mut b);
    bench_fig16(&mut b);
    bench_fig17(&mut b);
    bench_fig18(&mut b);
    bench_fig19_fig22a(&mut b);
    bench_fig20(&mut b);
    bench_fig21(&mut b);
    bench_fig22bc(&mut b);
    b.finish();
}
