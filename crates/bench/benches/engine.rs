//! Engine microbenchmarks: raw event throughput, metrics, distributions,
//! and whole-application simulation rates.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsb_simcore::{Dist, Histogram, Model, Rng, Scheduler, SimDuration, SimTime, Zipf};

struct Pinger {
    left: u64,
}

enum Ev {
    Ping,
}

impl Model for Pinger {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, _ev: Ev) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule_in(SimDuration::from_nanos(50), Ev::Ping);
        }
    }
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("engine/event_chain_100k", |b| {
        b.iter(|| {
            let mut sched = Scheduler::new(1);
            sched.schedule_at(SimTime::ZERO, Ev::Ping);
            let mut m = Pinger { left: 100_000 };
            sched.run(&mut m);
            black_box(sched.events_processed())
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("engine/histogram_record_100k", |b| {
        let mut rng = Rng::new(7);
        b.iter(|| {
            let mut h = Histogram::default();
            for _ in 0..100_000 {
                h.record(rng.next_u64() % 10_000_000);
            }
            black_box(h.quantile(0.99))
        })
    });
    c.bench_function("engine/lognormal_sample_100k", |b| {
        let d = Dist::log_normal(1000.0, 0.5);
        let mut rng = Rng::new(9);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    c.bench_function("engine/zipf_sample_100k", |b| {
        let z = Zipf::new(10_000, 1.1);
        let mut rng = Rng::new(11);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..100_000 {
                acc += z.sample(&mut rng);
            }
            black_box(acc)
        })
    });
}

fn bench_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    let social = dsb_apps::social::social_network();
    g.bench_function("social_network_2s_100qps", |b| {
        b.iter(|| black_box(dsb_bench::mini_run(&social, 100.0, 2, 1)))
    });
    let twotier = dsb_apps::twotier::twotier(64, 1024);
    g.bench_function("twotier_2s_5kqps", |b| {
        b.iter(|| black_box(dsb_bench::mini_run(&twotier, 5_000.0, 2, 1)))
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_metrics, bench_apps);
criterion_main!(benches);
