//! Engine microbenchmarks: raw event throughput, metrics, distributions,
//! and whole-application simulation rates.
//!
//! Runs on the `dsb-testkit` bench runner (no external harness):
//! `cargo bench` measures with warmup + fixed iterations and reports
//! median/MAD; under `cargo test` the same kernels run once as a smoke
//! pass.

use dsb_simcore::{Dist, Histogram, Model, Rng, Scheduler, SimDuration, SimTime, Zipf};
use dsb_testkit::bench::{black_box, Bench};

struct Pinger {
    left: u64,
}

enum Ev {
    Ping,
}

impl Model for Pinger {
    type Event = Ev;
    fn handle(&mut self, sched: &mut Scheduler<Ev>, _ev: Ev) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule_in(SimDuration::from_nanos(50), Ev::Ping);
        }
    }
}

fn bench_scheduler(b: &mut Bench) {
    b.bench("engine/event_chain_100k", || {
        let mut sched = Scheduler::new(1);
        sched.schedule_at(SimTime::ZERO, Ev::Ping);
        let mut m = Pinger { left: 100_000 };
        sched.run(&mut m);
        black_box(sched.events_processed())
    });
}

fn bench_metrics(b: &mut Bench) {
    let mut rng = Rng::new(7);
    b.bench("engine/histogram_record_100k", || {
        let mut h = Histogram::default();
        for _ in 0..100_000 {
            h.record(rng.next_u64() % 10_000_000);
        }
        black_box(h.quantile(0.99))
    });
    let d = Dist::log_normal(1000.0, 0.5);
    let mut rng = Rng::new(9);
    b.bench("engine/lognormal_sample_100k", || {
        let mut acc = 0.0;
        for _ in 0..100_000 {
            acc += d.sample(&mut rng);
        }
        black_box(acc)
    });
    let z = Zipf::new(10_000, 1.1);
    let mut rng = Rng::new(11);
    b.bench("engine/zipf_sample_100k", || {
        let mut acc = 0usize;
        for _ in 0..100_000 {
            acc += z.sample(&mut rng);
        }
        black_box(acc)
    });
}

fn bench_apps(b: &mut Bench) {
    let social = dsb_apps::social::social_network();
    b.bench("simulate/social_network_2s_100qps", || {
        black_box(dsb_bench::mini_run(&social, 100.0, 2, 1))
    });
    let twotier = dsb_apps::twotier::twotier(64, 1024);
    b.bench("simulate/twotier_2s_5kqps", || {
        black_box(dsb_bench::mini_run(&twotier, 5_000.0, 2, 1))
    });
}

fn main() {
    let mut b = Bench::new("engine");
    bench_scheduler(&mut b);
    bench_metrics(&mut b);
    bench_apps(&mut b);
    b.finish();
}
