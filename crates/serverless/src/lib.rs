//! # dsb-serverless — serverless programming-framework model
//!
//! §7 of the paper runs every end-to-end service on AWS Lambda and compares
//! against EC2 containers (Fig. 21): Lambda with S3 state passing is much
//! slower (remote persistent storage on every hand-off), Lambda with
//! remote-memory state passing recovers most of it, costs are an order of
//! magnitude lower either way, and Lambda absorbs diurnal load swings that
//! EC2's threshold autoscaler chases sluggishly.
//!
//! This crate reproduces that setup:
//!
//! * [`to_serverless`] rewrites an application for Lambda execution: every
//!   service gets on-demand workers with cold starts, and every
//!   inter-function hand-off routes state through an inserted store
//!   service — S3-like (high-latency, I/O-bound) or memcached-like
//!   (remote memory), per [`ExecutionMode`].
//! * [`ec2_cost`] / [`lambda_cost`] implement the corresponding billing
//!   models (per-instance-hour vs per-request + GB-seconds + storage ops).

#![warn(missing_docs)]

use std::sync::Arc;

use dsb_core::{AppSpec, EndpointRef, ServiceId, Simulation, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;

/// How an application executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Long-running containers on dedicated instances (the baseline).
    Ec2,
    /// Lambda functions passing state through S3-like persistent storage.
    LambdaS3,
    /// Lambda functions passing state through remote memory (the paper's
    /// "four additional EC2 instances" configuration).
    LambdaMem,
}

impl ExecutionMode {
    /// Human-readable label, as used in Fig. 21.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionMode::Ec2 => "Amazon EC2",
            ExecutionMode::LambdaS3 => "AWS Lambda (S3)",
            ExecutionMode::LambdaMem => "AWS Lambda (mem)",
        }
    }
}

/// Result of a serverless rewrite.
#[derive(Debug, Clone)]
pub struct ServerlessApp {
    /// The rewritten application.
    pub app: AppSpec,
    /// The inserted state-store service (`None` for [`ExecutionMode::Ec2`]).
    pub store: Option<ServiceId>,
}

/// Rewrites `app` for the given execution mode.
///
/// For the Lambda modes every service (except those in `keep_provisioned`,
/// e.g. databases that stay managed) is switched to on-demand workers with
/// a log-normal cold start; a state-store service is appended, a `get` is
/// prepended to every function body (functions are stateless and must load
/// their inputs), and a `put` precedes every downstream invocation.
///
/// [`ExecutionMode::Ec2`] returns the app unchanged.
pub fn to_serverless(
    app: &AppSpec,
    mode: ExecutionMode,
    keep_provisioned: &[ServiceId],
) -> ServerlessApp {
    if mode == ExecutionMode::Ec2 {
        return ServerlessApp {
            app: app.clone(),
            store: None,
        };
    }
    let mut out = app.clone();
    let store_id = ServiceId(out.services.len() as u32);
    let (store_spec, get_ref, put_ref) = make_store(mode, store_id);
    // Rewrite existing services.
    for (idx, svc) in out.services.iter_mut().enumerate() {
        let sid = ServiceId(idx as u32);
        if keep_provisioned.contains(&sid) {
            continue;
        }
        svc.workers = dsb_core::WorkerPolicy::OnDemand {
            // Median 120 ms container/function cold start.
            cold_start_ns: Dist::log_normal(120e6, 0.5),
        };
        for ep in &mut svc.endpoints {
            let mut body = vec![Step::call(get_ref, 8192.0)];
            body.extend(rewrite_steps(&ep.script, put_ref));
            ep.script = Arc::new(body);
        }
    }
    out.services.push(store_spec);
    ServerlessApp {
        app: out,
        store: Some(store_id),
    }
}

fn rewrite_steps(steps: &[Step], put: EndpointRef) -> Vec<Step> {
    let mut out = Vec::with_capacity(steps.len());
    for s in steps {
        match s {
            Step::Call { .. } | Step::ParCall { .. } | Step::FanCall { .. } => {
                out.push(Step::call(put, 8192.0));
                out.push(s.clone());
            }
            Step::Branch { p, then, els } => out.push(Step::Branch {
                p: *p,
                then: Arc::new(rewrite_steps(then, put)),
                els: Arc::new(rewrite_steps(els, put)),
            }),
            Step::CacheLookup {
                cache,
                hit,
                then,
                els,
            } => out.push(Step::CacheLookup {
                cache: *cache,
                hit: *hit,
                then: Arc::new(rewrite_steps(then, put)),
                els: Arc::new(rewrite_steps(els, put)),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

fn make_store(
    mode: ExecutionMode,
    id: ServiceId,
) -> (dsb_core::ServiceSpec, EndpointRef, EndpointRef) {
    let (name, get_script, put_script, workers, instances) = match mode {
        ExecutionMode::LambdaS3 => (
            "s3-store",
            // S3 GET: ~12 ms first-byte, I/O bound, rate-limited by the
            // worker pool.
            vec![Step::Io {
                ns: Dist::log_normal(12e6, 0.5),
            }],
            vec![Step::Io {
                ns: Dist::log_normal(18e6, 0.5),
            }],
            64u32,
            2u32,
        ),
        ExecutionMode::LambdaMem => (
            "mem-store",
            vec![Step::Compute {
                ns: Dist::log_normal(6_000.0, 0.4),
                domain: dsb_uarch::ExecDomain::User,
            }],
            vec![Step::Compute {
                ns: Dist::log_normal(8_000.0, 0.4),
                domain: dsb_uarch::ExecDomain::User,
            }],
            32,
            4,
        ),
        ExecutionMode::Ec2 => unreachable!("no store for EC2"),
    };
    let spec = dsb_core::ServiceSpec {
        name: name.to_string(),
        profile: UarchProfile::memcached(),
        concurrency: dsb_core::Concurrency::Blocking,
        workers: dsb_core::WorkerPolicy::Fixed(workers),
        protocol: Protocol::ThriftRpc,
        lb: dsb_core::LbPolicy::RoundRobin,
        initial_instances: instances,
        conn_limit: 1024,
        zone_pref: None,
        placement: dsb_core::PlacementHint::Spread,
        endpoints: vec![
            dsb_core::EndpointSpec {
                name: "get".to_string(),
                resp_bytes: Dist::constant(8192.0),
                script: Arc::new(get_script),
            },
            dsb_core::EndpointSpec {
                name: "put".to_string(),
                resp_bytes: Dist::constant(64.0),
                script: Arc::new(put_script),
            },
        ],
    };
    (
        spec,
        EndpointRef {
            service: id,
            endpoint: 0,
        },
        EndpointRef {
            service: id,
            endpoint: 1,
        },
    )
}

/// Billing parameters, defaulting to the 2018/2019 AWS price book the
/// paper's numbers reflect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// m5.12xlarge on-demand, USD per instance-hour.
    pub ec2_instance_hour: f64,
    /// USD per million Lambda requests.
    pub lambda_per_million_req: f64,
    /// USD per GB-second of Lambda duration.
    pub lambda_gb_second: f64,
    /// Assumed function memory, GB.
    pub lambda_mem_gb: f64,
    /// USD per 1000 S3 PUTs.
    pub s3_put_per_k: f64,
    /// USD per 1000 S3 GETs.
    pub s3_get_per_k: f64,
}

impl Default for Pricing {
    fn default() -> Self {
        Pricing {
            ec2_instance_hour: 2.304,
            lambda_per_million_req: 0.20,
            lambda_gb_second: 0.000_016_666_7,
            lambda_mem_gb: 1.0,
            s3_put_per_k: 0.005,
            s3_get_per_k: 0.0004,
        }
    }
}

/// A cost breakdown in USD for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostReport {
    /// Compute cost (instance-hours or GB-seconds + requests).
    pub compute_usd: f64,
    /// Storage-operation cost (S3 GET/PUT), if any.
    pub storage_usd: f64,
}

impl CostReport {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.compute_usd + self.storage_usd
    }
}

/// EC2 billing: instances reserved for the whole run across all services.
pub fn ec2_cost(sim: &Simulation, run: SimDuration, pricing: &Pricing) -> CostReport {
    let services = sim.app().service_count();
    let mut instances = 0usize;
    for i in 0..services {
        instances += sim.instance_count(ServiceId(i as u32));
    }
    CostReport {
        compute_usd: instances as f64 * run.as_secs_f64() / 3600.0 * pricing.ec2_instance_hour,
        storage_usd: 0.0,
    }
}

/// Lambda billing: per-invocation requests plus GB-seconds of billed
/// duration (span wall-clock), plus S3 operation costs when `store` is the
/// S3-backed store. The remote-memory configuration instead bills the
/// dedicated EC2 instances that hold intermediate state for the whole run
/// (the paper's "four additional EC2 instances").
pub fn lambda_cost_for_run(
    sim: &Simulation,
    store: Option<ServiceId>,
    s3_store: bool,
    run: SimDuration,
    pricing: &Pricing,
) -> CostReport {
    let mut requests = 0u64;
    let mut billed_ns = 0.0f64;
    let services = sim.app().service_count();
    for i in 0..services {
        let sid = ServiceId(i as u32);
        if Some(sid) == store {
            continue;
        }
        if let Some(stats) = sim.collector().service(sid.0) {
            requests += stats.spans;
            billed_ns += stats.latency.mean() * stats.spans as f64;
        }
    }
    let compute_usd = requests as f64 / 1e6 * pricing.lambda_per_million_req
        + billed_ns / 1e9 * pricing.lambda_mem_gb * pricing.lambda_gb_second;
    let mut storage_usd = match store {
        Some(sid) if s3_store => {
            // get is endpoint 0, put endpoint 1; we only have per-service
            // span counts, so split by the observed call pattern: one get
            // per function invocation, one put per downstream call — both
            // recorded as store spans. Approximate an even split.
            let ops = sim.collector().service(sid.0).map_or(0, |s| s.spans) as f64;
            (ops / 2.0) / 1000.0 * (pricing.s3_get_per_k + pricing.s3_put_per_k)
        }
        _ => 0.0,
    };
    if let (Some(sid), false) = (store, s3_store) {
        // Remote-memory store: dedicated instances billed per hour.
        storage_usd +=
            sim.instance_count(sid) as f64 * run.as_secs_f64() / 3600.0 * pricing.ec2_instance_hour;
    }
    CostReport {
        compute_usd,
        storage_usd,
    }
}

/// [`lambda_cost_for_run`] without remote-memory instance billing (kept
/// for S3-backed runs where the run length does not matter).
pub fn lambda_cost(
    sim: &Simulation,
    store: Option<ServiceId>,
    s3_store: bool,
    pricing: &Pricing,
) -> CostReport {
    lambda_cost_for_run(sim, store, s3_store, SimDuration::ZERO, pricing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{AppBuilder, ClusterSpec, RequestType};
    use dsb_simcore::SimTime;

    fn two_tier() -> (AppSpec, EndpointRef, ServiceId, ServiceId) {
        let mut app = AppBuilder::new("t");
        let back = app.service("back").workers(8).build();
        let get = app.endpoint(
            back,
            "get",
            Dist::constant(512.0),
            vec![Step::work_us(20.0)],
        );
        let front = app.service("front").workers(8).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(512.0),
            vec![Step::work_us(10.0), Step::call(get, 128.0)],
        );
        (app.build(), root, front, back)
    }

    #[test]
    fn ec2_mode_is_identity() {
        let (app, _, _, _) = two_tier();
        let s = to_serverless(&app, ExecutionMode::Ec2, &[]);
        assert!(s.store.is_none());
        assert_eq!(s.app.service_count(), app.service_count());
    }

    #[test]
    fn lambda_rewrite_inserts_store_edges() {
        let (app, _, front, back) = two_tier();
        let s = to_serverless(&app, ExecutionMode::LambdaS3, &[]);
        let store = s.store.unwrap();
        assert_eq!(s.app.service_count(), 3);
        let edges = s.app.edges();
        assert!(edges.contains(&(front, store)), "front must touch store");
        assert!(edges.contains(&(back, store)), "back must touch store");
        assert!(edges.contains(&(front, back)), "original edge preserved");
        // Every rewritten service is on-demand now.
        assert!(matches!(
            s.app.service(front).workers,
            dsb_core::WorkerPolicy::OnDemand { .. }
        ));
    }

    #[test]
    fn keep_provisioned_services_untouched() {
        let (app, _, _front, back) = two_tier();
        let s = to_serverless(&app, ExecutionMode::LambdaMem, &[back]);
        assert!(matches!(
            s.app.service(back).workers,
            dsb_core::WorkerPolicy::Fixed(_)
        ));
    }

    #[test]
    fn lambda_s3_slower_than_mem_and_ec2() {
        let run = |mode: ExecutionMode| {
            let (app, root, _, _) = two_tier();
            let s = to_serverless(&app, mode, &[]);
            let mut cluster = ClusterSpec::xeon_cluster(4, 1);
            cluster.trace_sample_prob = 0.0;
            let mut sim = Simulation::new(s.app, cluster, 11);
            for i in 0..200u64 {
                sim.inject(SimTime::from_millis(i * 5), root, RequestType(0), 256, i);
            }
            sim.run_until_idle();
            sim.request_stats(RequestType(0))
                .unwrap()
                .latency
                .quantile(0.5)
        };
        let ec2 = run(ExecutionMode::Ec2);
        let mem = run(ExecutionMode::LambdaMem);
        let s3 = run(ExecutionMode::LambdaS3);
        assert!(s3 > 3 * mem, "S3 {s3} vs mem {mem}");
        assert!(mem > ec2, "mem {mem} vs ec2 {ec2}");
    }

    #[test]
    fn costs_lambda_cheaper_at_low_utilization() {
        let (app, root, _, _) = two_tier();
        // EC2: run mostly idle.
        let mut cluster = ClusterSpec::xeon_cluster(4, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(app.clone(), cluster.clone(), 3);
        for i in 0..100u64 {
            sim.inject(SimTime::from_millis(i * 100), root, RequestType(0), 256, i);
        }
        sim.run_until_idle();
        let run_len = SimDuration::from_secs(10);
        let ec2 = ec2_cost(&sim, run_len, &Pricing::default());
        assert!(ec2.compute_usd > 0.0);

        // Lambda on the same traffic.
        let s = to_serverless(&app, ExecutionMode::LambdaS3, &[]);
        let mut sim2 = Simulation::new(s.app, cluster, 3);
        for i in 0..100u64 {
            sim2.inject(SimTime::from_millis(i * 100), root, RequestType(0), 256, i);
        }
        sim2.run_until_idle();
        let lam = lambda_cost(&sim2, s.store, true, &Pricing::default());
        assert!(lam.total() > 0.0);
        assert!(
            lam.total() < ec2.total() / 5.0,
            "lambda {} vs ec2 {}",
            lam.total(),
            ec2.total()
        );
    }

    #[test]
    fn labels_distinct() {
        let labels = [
            ExecutionMode::Ec2.label(),
            ExecutionMode::LambdaS3.label(),
            ExecutionMode::LambdaMem.label(),
        ];
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }
}
