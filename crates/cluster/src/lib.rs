//! # dsb-cluster — cluster management
//!
//! The paper's §6 studies how microservices interact with cluster managers:
//! utilization-driven autoscaling chases the wrong services when
//! backpressure makes blocked tiers *look* saturated, QoS violations
//! cascade through the dependency graph, and recovery takes far longer than
//! for monoliths. This crate provides the management machinery those
//! experiments exercise:
//!
//! * [`Autoscaler`] — the standard utilization-threshold autoscaler cloud
//!   providers ship (the paper uses EC2's 70 % default): scales a service
//!   out when worker occupancy exceeds the high threshold, in when it falls
//!   below the low one, with per-service cooldowns and instance startup
//!   delays (inherited from `dsb-core`).
//! * [`provision`] — the §3.8 methodology: before characterizing an
//!   application, upsize saturated tiers until every tier saturates at
//!   about the same load.
//! * [`QosMonitor`] — windowed p99-vs-target detection with violation
//!   timestamps (drives the Fig. 20 recovery comparison).
//! * [`AdmissionController`] — the rate limiter the paper applies to let
//!   the large-scale deployment recover in Fig. 22a.
//! * [`slow_down_machines`] — the Fig. 22c fault: a fraction of servers
//!   silently drop to a low frequency.

#![warn(missing_docs)]

use dsb_core::{InstanceId, RequestType, ServiceId, Simulation};
use dsb_simcore::{Rng, SimDuration, SimTime};

/// Per-service autoscaling policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePolicy {
    /// Scale out above this worker occupancy (EC2 default: 0.7).
    pub high: f64,
    /// Scale in below this occupancy.
    pub low: f64,
    /// Never scale below this many instances.
    pub min_instances: usize,
    /// Never scale above this many instances.
    pub max_instances: usize,
    /// Minimum time between scaling actions for one service.
    pub cooldown: SimDuration,
}

impl Default for ScalePolicy {
    fn default() -> Self {
        ScalePolicy {
            high: 0.7,
            low: 0.2,
            min_instances: 1,
            max_instances: 64,
            cooldown: SimDuration::from_secs(15),
        }
    }
}

/// One autoscaler decision, for experiment timelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleEvent {
    /// When the decision was made.
    pub at: SimTime,
    /// The service acted on.
    pub service: ServiceId,
    /// Occupancy that triggered the action.
    pub occupancy: f64,
    /// `+1` for scale-out, `-1` for scale-in.
    pub delta: i32,
}

/// A utilization-threshold autoscaler.
///
/// Call [`Autoscaler::tick`] periodically (between `advance_to` slices);
/// it samples each managed service's worker occupancy — which counts
/// workers blocked on downstream calls as busy, exactly the misleading
/// signal the paper analyzes — and scales accordingly.
///
/// # Example
///
/// ```
/// use dsb_cluster::{Autoscaler, ScalePolicy};
/// use dsb_core::{AppBuilder, ClusterSpec, Simulation, Step};
/// use dsb_simcore::Dist;
///
/// let mut app = AppBuilder::new("a");
/// let svc = app.service("s").workers(4).build();
/// app.endpoint(svc, "op", Dist::constant(64.0), vec![Step::work_us(100.0)]);
/// let mut sim = Simulation::new(app.build(), ClusterSpec::xeon_cluster(4, 1), 1);
///
/// let mut scaler = Autoscaler::new(ScalePolicy::default());
/// scaler.manage(svc);
/// scaler.tick(&mut sim); // idle: no action
/// assert!(scaler.events().is_empty());
/// ```
#[derive(Debug)]
pub struct Autoscaler {
    policy: ScalePolicy,
    managed: Vec<(ServiceId, ScalePolicy)>,
    last_action: Vec<(ServiceId, SimTime)>,
    events: Vec<ScaleEvent>,
    budget_per_tick: usize,
}

impl Autoscaler {
    /// Creates an autoscaler with a default policy for managed services.
    pub fn new(policy: ScalePolicy) -> Self {
        Autoscaler {
            policy,
            managed: Vec::new(),
            last_action: Vec::new(),
            events: Vec::new(),
            budget_per_tick: usize::MAX,
        }
    }

    /// Caps scale-out actions per tick (cluster-manager churn limit).
    ///
    /// With a budget, the scaler acts on the most-occupied services first —
    /// and since backpressure makes *blocked* tiers look just as saturated
    /// as the culprit, a deployment with many tiers spends several rounds
    /// scaling the wrong ones (the §6 recovery-time mechanism), while a
    /// monolith's single knob always gets the whole budget.
    pub fn with_budget(mut self, budget_per_tick: usize) -> Self {
        self.budget_per_tick = budget_per_tick.max(1);
        self
    }

    /// Manages `service` with the default policy.
    pub fn manage(&mut self, service: ServiceId) {
        self.managed.push((service, self.policy));
    }

    /// Manages `service` with a specific policy.
    pub fn manage_with(&mut self, service: ServiceId, policy: ScalePolicy) {
        self.managed.push((service, policy));
    }

    /// All scaling decisions taken so far.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    fn cooled_down(&self, service: ServiceId, now: SimTime, cooldown: SimDuration) -> bool {
        self.last_action
            .iter()
            .find(|(s, _)| *s == service)
            .is_none_or(|(_, t)| now.since(*t) >= cooldown)
    }

    fn mark_action(&mut self, service: ServiceId, now: SimTime) {
        if let Some(e) = self.last_action.iter_mut().find(|(s, _)| *s == service) {
            e.1 = now;
        } else {
            self.last_action.push((service, now));
        }
    }

    /// Samples occupancies and applies threshold decisions. Scale-outs go
    /// to the most-occupied services first, bounded by the per-tick budget.
    pub fn tick(&mut self, sim: &mut Simulation) {
        let now = sim.now();
        let managed = self.managed.clone();
        // Rank scale-out candidates by occupancy (the only signal a
        // utilization-driven manager has).
        let mut candidates: Vec<(ServiceId, ScalePolicy, f64)> = managed
            .iter()
            .filter(|(s, p)| self.cooled_down(*s, now, p.cooldown))
            .map(|&(s, p)| (s, p, sim.occupancy(s)))
            .filter(|&(s, p, occ)| occ > p.high && sim.instance_count(s) < p.max_instances)
            .collect();
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("occupancy is finite"));
        for &(service, _, occ) in candidates.iter().take(self.budget_per_tick) {
            sim.add_instance(service);
            self.mark_action(service, now);
            self.events.push(ScaleEvent {
                at: now,
                service,
                occupancy: occ,
                delta: 1,
            });
        }
        for (service, policy) in managed {
            if !self.cooled_down(service, now, policy.cooldown) {
                continue;
            }
            let occ = sim.occupancy(service);
            let count = sim.instance_count(service);
            if occ < policy.low && count > policy.min_instances {
                // Retire the most recently added live instance.
                if let Some(&victim) = sim
                    .instances_of(service)
                    .iter()
                    .rev()
                    .find(|_| count > policy.min_instances)
                {
                    sim.retire_instance(victim);
                    self.mark_action(service, now);
                    self.events.push(ScaleEvent {
                        at: now,
                        service,
                        occupancy: occ,
                        delta: -1,
                    });
                }
            }
        }
    }
}

/// Provisions an application per the paper's §3.8 methodology: repeatedly
/// drive load, find tiers saturated above `threshold`, and upsize them
/// (instantaneously — this is pre-experiment calibration) until no tier is
/// saturated or `max_rounds` is exhausted.
///
/// `drive` must inject the calibration load for the window
/// `[sim.now(), sim.now() + window)`. Returns the number of instances
/// added per round.
pub fn provision(
    sim: &mut Simulation,
    mut drive: impl FnMut(&mut Simulation, SimTime, SimTime),
    services: &[ServiceId],
    threshold: f64,
    window: SimDuration,
    max_rounds: usize,
) -> Vec<usize> {
    let mut added_per_round = Vec::new();
    for _ in 0..max_rounds {
        let from = sim.now();
        let to = from + window;
        drive(sim, from, to);
        sim.advance_to(to);
        let mut added = 0;
        for &svc in services {
            if sim.occupancy(svc) > threshold {
                sim.add_instance_now(svc);
                added += 1;
            }
        }
        added_per_round.push(added);
        if added == 0 {
            break;
        }
    }
    added_per_round
}

/// Windowed QoS detection for one request type.
///
/// Call [`QosMonitor::observe`] after each `advance_to` slice; it compares
/// the slice's p99 against the target and records the first violation
/// (detection time) and the first subsequent recovery.
#[derive(Debug)]
pub struct QosMonitor {
    rtype: RequestType,
    target: SimDuration,
    last_seen_count: u64,
    violated_at: Option<SimTime>,
    recovered_at: Option<SimTime>,
    history: Vec<(SimTime, SimDuration, bool)>,
}

impl QosMonitor {
    /// Creates a monitor for `rtype` with an end-to-end p99 target.
    pub fn new(rtype: RequestType, target: SimDuration) -> Self {
        QosMonitor {
            rtype,
            target,
            last_seen_count: 0,
            violated_at: None,
            recovered_at: None,
            history: Vec::new(),
        }
    }

    /// The QoS target.
    pub fn target(&self) -> SimDuration {
        self.target
    }

    /// Observes the current window; returns the window's p99 (which is
    /// approximated by the tail over the whole run's latest window series).
    pub fn observe(&mut self, sim: &Simulation) -> SimDuration {
        let now = sim.now();
        let p99 = match sim.request_stats(self.rtype) {
            Some(st) => {
                let w = st.windows.window_count().saturating_sub(1);
                let _ = self.last_seen_count;
                self.last_seen_count = st.completed;
                SimDuration::from_nanos(st.windows.quantile(w, 0.99))
            }
            None => SimDuration::ZERO,
        };
        let violated = p99 > self.target;
        if violated && self.violated_at.is_none() {
            self.violated_at = Some(now);
        }
        if !violated
            && self.violated_at.is_some()
            && self.recovered_at.is_none()
            && p99 > SimDuration::ZERO
        {
            self.recovered_at = Some(now);
        }
        self.history.push((now, p99, violated));
        p99
    }

    /// First time a violation was observed.
    pub fn violated_at(&self) -> Option<SimTime> {
        self.violated_at
    }

    /// First time QoS was met again after the violation.
    pub fn recovered_at(&self) -> Option<SimTime> {
        self.recovered_at
    }

    /// Time from detection to recovery, if both happened.
    pub fn recovery_time(&self) -> Option<SimDuration> {
        Some(self.recovered_at?.since(self.violated_at?))
    }

    /// The observation history: `(time, p99, violated)`.
    pub fn history(&self) -> &[(SimTime, SimDuration, bool)] {
        &self.history
    }
}

/// A token-bucket-free, probability-based admission controller: when the
/// observed p99 exceeds the target, admit less traffic; when it is back
/// under, admit more (the Fig. 22a recovery mechanism).
#[derive(Debug)]
pub struct AdmissionController {
    rtype: RequestType,
    target: SimDuration,
    admit: f64,
    backoff: f64,
    recover: f64,
}

impl AdmissionController {
    /// Creates a controller for `rtype` with the given p99 target.
    pub fn new(rtype: RequestType, target: SimDuration) -> Self {
        AdmissionController {
            rtype,
            target,
            admit: 1.0,
            backoff: 0.7,
            recover: 1.1,
        }
    }

    /// Current admission probability.
    pub fn admission(&self) -> f64 {
        self.admit
    }

    /// Observes the latest window and adjusts the simulation's admission
    /// probability.
    pub fn tick(&mut self, sim: &mut Simulation) {
        let p99 = match sim.request_stats(self.rtype) {
            Some(st) => {
                let w = st.windows.window_count().saturating_sub(1);
                SimDuration::from_nanos(st.windows.quantile(w, 0.99))
            }
            None => SimDuration::ZERO,
        };
        if p99 > self.target {
            self.admit = (self.admit * self.backoff).max(0.05);
        } else {
            self.admit = (self.admit * self.recover).min(1.0);
        }
        sim.set_admission(self.admit);
    }
}

/// Slows a deterministic fraction of machines to `ghz` (aggressive power
/// management), returning the affected machines — the Fig. 22c fault.
pub fn slow_down_machines(
    sim: &mut Simulation,
    fraction: f64,
    ghz: f64,
    rng: &mut Rng,
) -> Vec<dsb_core::MachineId> {
    let n = sim.machine_count();
    let target = ((n as f64 * fraction).round() as usize).min(n);
    let mut ids: Vec<usize> = (0..n).collect();
    // Fisher–Yates prefix shuffle.
    for i in 0..target {
        let j = i + rng.index(n - i);
        ids.swap(i, j);
    }
    let mut out = Vec::with_capacity(target);
    for &i in ids.iter().take(target) {
        let id = dsb_core::MachineId(i as u32);
        sim.set_frequency(id, ghz);
        out.push(id);
    }
    out
}

/// Returns `(inst_id, ...)` sugar: scale a service directly to `n` `Up`
/// instances (used when configuring experiments, not as a policy).
pub fn scale_to(sim: &mut Simulation, service: ServiceId, n: usize) -> Vec<InstanceId> {
    let mut added = Vec::new();
    while sim.instance_count(service) < n {
        added.push(sim.add_instance_now(service));
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{AppBuilder, ClusterSpec, Step};
    use dsb_simcore::Dist;

    fn hot_app() -> (dsb_core::AppSpec, dsb_core::EndpointRef, ServiceId) {
        let mut app = AppBuilder::new("hot");
        let svc = app.service("s").workers(2).build();
        let ep = app.endpoint(
            svc,
            "op",
            Dist::constant(64.0),
            vec![Step::Compute {
                ns: Dist::constant(2_000_000.0),
                domain: dsb_uarch::ExecDomain::User,
            }],
        );
        (app.build(), ep, svc)
    }

    #[test]
    fn autoscaler_scales_out_under_load() {
        let (app, ep, svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 1);
        let mut scaler = Autoscaler::new(ScalePolicy {
            cooldown: SimDuration::from_secs(2),
            ..ScalePolicy::default()
        });
        scaler.manage(svc);
        // Overload: 2 workers x 2ms service => capacity ~1000/s; drive 2000/s.
        let mut t = SimTime::ZERO;
        for step in 0..20 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, t.as_nanos());
                t = t + SimDuration::from_micros(500);
            }
            sim.advance_to(until);
            scaler.tick(&mut sim);
        }
        assert!(
            sim.instance_count(svc) > 1,
            "expected scale-out, still {}",
            sim.instance_count(svc)
        );
        assert!(scaler.events().iter().any(|e| e.delta == 1));
    }

    #[test]
    fn autoscaler_scales_in_when_idle() {
        let (app, _ep, svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 1);
        scale_to(&mut sim, svc, 4);
        let mut scaler = Autoscaler::new(ScalePolicy {
            cooldown: SimDuration::from_secs(1),
            min_instances: 1,
            ..ScalePolicy::default()
        });
        scaler.manage(svc);
        for step in 0..10 {
            sim.advance_to(SimTime::from_secs(step + 1));
            scaler.tick(&mut sim);
        }
        assert!(
            sim.instance_count(svc) < 4,
            "expected scale-in, still {}",
            sim.instance_count(svc)
        );
    }

    #[test]
    fn autoscaler_respects_cooldown_and_max() {
        let (app, ep, svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 1);
        let mut scaler = Autoscaler::new(ScalePolicy {
            cooldown: SimDuration::from_secs(1000),
            max_instances: 2,
            ..ScalePolicy::default()
        });
        scaler.manage(svc);
        let mut t = SimTime::ZERO;
        for step in 0..10 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, 1);
                t = t + SimDuration::from_micros(300);
            }
            sim.advance_to(until);
            scaler.tick(&mut sim);
        }
        // One action at most (cooldown) and never above max.
        assert!(scaler.events().len() <= 1);
        assert!(sim.instance_count(svc) <= 2);
    }

    #[test]
    fn provision_balances_saturated_tier() {
        let (app, ep, svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(8, 1), 2);
        let added = provision(
            &mut sim,
            |sim, from, to| {
                let mut t = from;
                while t < to {
                    sim.inject(t, ep, RequestType(0), 64, t.as_nanos());
                    t = t + SimDuration::from_micros(700);
                }
            },
            &[svc],
            0.7,
            SimDuration::from_secs(2),
            10,
        );
        assert!(sim.instance_count(svc) > 1, "provisioning should upsize");
        assert_eq!(*added.last().unwrap(), 0, "should converge");
    }

    #[test]
    fn qos_monitor_detects_and_recovers() {
        let (app, ep, _svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 3);
        let mut mon = QosMonitor::new(RequestType(0), SimDuration::from_millis(4));
        // Phase 1: light load, QoS met.
        let mut t = SimTime::ZERO;
        for step in 0..3 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, 1);
                t = t + SimDuration::from_millis(10);
            }
            sim.advance_to(until);
            mon.observe(&sim);
        }
        assert!(mon.violated_at().is_none());
        // Phase 2: overload.
        for step in 3..8 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, 1);
                t = t + SimDuration::from_micros(400);
            }
            sim.advance_to(until);
            mon.observe(&sim);
        }
        assert!(mon.violated_at().is_some(), "overload must violate QoS");
        // Phase 3: back off, drain, recover.
        for step in 8..20 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, 1);
                t = t + SimDuration::from_millis(20);
            }
            sim.advance_to(until);
            mon.observe(&sim);
        }
        assert!(mon.recovered_at().is_some(), "load drop must recover");
        assert!(mon.recovery_time().unwrap() > SimDuration::ZERO);
        assert!(!mon.history().is_empty());
    }

    #[test]
    fn admission_controller_backs_off_under_violation() {
        let (app, ep, _svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 4);
        let mut ac = AdmissionController::new(RequestType(0), SimDuration::from_millis(3));
        let mut t = SimTime::ZERO;
        for step in 0..10 {
            let until = SimTime::from_secs(step + 1);
            while t < until {
                sim.inject(t, ep, RequestType(0), 64, 1);
                t = t + SimDuration::from_micros(300);
            }
            sim.advance_to(until);
            ac.tick(&mut sim);
        }
        assert!(ac.admission() < 1.0, "admission {}", ac.admission());
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert!(st.rejected > 0);
    }

    #[test]
    fn slow_down_hits_requested_fraction() {
        let (app, _ep, _svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(20, 2), 5);
        let mut rng = Rng::new(9);
        let slowed = slow_down_machines(&mut sim, 0.25, 1.0, &mut rng);
        assert_eq!(slowed.len(), 5);
        let unique: std::collections::HashSet<_> = slowed.iter().collect();
        assert_eq!(unique.len(), 5, "no duplicates");
    }

    #[test]
    fn scale_to_reaches_target() {
        let (app, _ep, svc) = hot_app();
        let mut sim = Simulation::new(app, ClusterSpec::xeon_cluster(4, 1), 6);
        scale_to(&mut sim, svc, 5);
        assert_eq!(sim.instance_count(svc), 5);
        scale_to(&mut sim, svc, 2); // never scales down
        assert_eq!(sim.instance_count(svc), 5);
    }
}
