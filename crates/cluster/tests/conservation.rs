//! Request-conservation invariants at the cluster layer, checked with
//! `dsb-testkit` generators: whatever the autoscaler and the admission
//! controller do to a randomized deployment under randomized load, at
//! drain every injected request is accounted for —
//! `issued == completed + rejected` — and nothing stays in flight.

use dsb_cluster::{AdmissionController, Autoscaler, ScalePolicy};
use dsb_core::{
    AppBuilder, AppSpec, ClusterSpec, EndpointRef, RequestType, ServiceId, Simulation, Step,
};
use dsb_simcore::{Dist, SimDuration, SimTime};
use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq, Shrink};
use dsb_uarch::ExecDomain;

/// A generatable chain deployment plus its load: per-tier
/// `(workers, work_us)`, request count, inter-arrival period and seed.
#[derive(Debug, Clone, PartialEq)]
struct Scenario {
    tiers: Vec<(u32, u16)>,
    n_requests: u16,
    period_us: u16,
    seed: u64,
}

impl Shrink for Scenario {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.tiers.len() > 1 {
            out.push(Scenario {
                tiers: self.tiers[..1].to_vec(),
                ..self.clone()
            });
        }
        for cand in self.n_requests.shrink() {
            out.push(Scenario {
                n_requests: cand,
                ..self.clone()
            });
        }
        for (i, &(w, c)) in self.tiers.iter().enumerate() {
            for cand in [(1, c), (w, 1)] {
                if cand != (w, c) && cand.0 >= 1 && cand.1 >= 1 {
                    let mut s = self.clone();
                    s.tiers[i] = cand;
                    out.push(s);
                }
            }
        }
        out
    }
}

fn arb_scenario(rng: &mut dsb_simcore::Rng) -> Scenario {
    Scenario {
        tiers: gen::vec_with(rng, 1, 3, |r| {
            (gen::u32_in(r, 1, 4), gen::u16_in(r, 10, 800))
        }),
        n_requests: gen::u16_in(rng, 1, 300),
        period_us: gen::u16_in(rng, 50, 2000),
        seed: gen::u64_in(rng, 0, 1 << 20),
    }
}

fn out_of_domain(s: &Scenario) -> bool {
    s.tiers.is_empty()
        || s.n_requests == 0
        || s.period_us == 0
        || s.tiers.iter().any(|&(w, c)| w == 0 || c == 0)
}

fn build(s: &Scenario) -> (AppSpec, EndpointRef) {
    let mut app = AppBuilder::new("chain");
    let mut downstream: Option<EndpointRef> = None;
    for (i, &(workers, work_us)) in s.tiers.iter().enumerate().rev() {
        let svc = app.service(&format!("tier{i}")).workers(workers).build();
        let mut steps = vec![Step::Compute {
            ns: Dist::constant(work_us as f64 * 1000.0),
            domain: ExecDomain::User,
        }];
        if let Some(d) = downstream {
            steps.push(Step::call(d, 128.0));
        }
        downstream = Some(app.endpoint(svc, "op", Dist::constant(256.0), steps));
    }
    (app.build(), downstream.expect("at least one tier"))
}

/// Runs the scenario under management, ticking the given controllers
/// once per simulated second while requests arrive, then drains.
fn run_managed(s: &Scenario, autoscale: bool, rate_limit: bool) -> Result<(u64, u64, u64), String> {
    let (spec, entry) = build(s);
    let n_services = spec.service_count();
    let mut cluster = ClusterSpec::xeon_cluster(2, 1);
    cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(spec, cluster, s.seed);
    for i in 0..s.n_requests as u64 {
        sim.inject(
            SimTime::from_micros(i * s.period_us as u64),
            entry,
            RequestType(0),
            128,
            i,
        );
    }
    let mut scaler = Autoscaler::new(ScalePolicy {
        cooldown: SimDuration::from_millis(500),
        max_instances: 6,
        ..ScalePolicy::default()
    });
    if autoscale {
        for i in 0..n_services {
            scaler.manage(ServiceId(i as u32));
        }
    }
    let mut admission = AdmissionController::new(RequestType(0), SimDuration::from_millis(5));
    let horizon_us = s.n_requests as u64 * s.period_us as u64;
    let ticks = horizon_us / 1_000_000 + 2;
    for t in 1..=ticks {
        sim.advance_to(SimTime::from_secs(t));
        if autoscale {
            scaler.tick(&mut sim);
        }
        if rate_limit {
            admission.tick(&mut sim);
        }
    }
    // Stop throttling and drain: in-flight work must finish.
    sim.set_admission(1.0);
    sim.run_until_idle();
    for i in 0..n_services {
        let inflight = sim.service_inflight(ServiceId(i as u32));
        if inflight != 0 {
            return Err(format!("tier{i} still has {inflight} in flight at drain"));
        }
    }
    let st = sim.request_stats(RequestType(0)).expect("stats exist");
    Ok((st.issued, st.completed, st.rejected))
}

fn conservation_property(s: &Scenario, autoscale: bool, rate_limit: bool) -> Result<(), String> {
    if out_of_domain(s) {
        return Ok(());
    }
    let (issued, completed, rejected) = run_managed(s, autoscale, rate_limit)?;
    prop_assert_eq!(
        issued,
        s.n_requests as u64,
        "every injection must be counted in {s:?}"
    );
    prop_assert_eq!(issued, completed + rejected, "requests leaked in {s:?}");
    if !rate_limit {
        prop_assert_eq!(
            rejected,
            0,
            "nothing rejects without a rate limiter in {s:?}"
        );
    }
    Ok(())
}

/// Conservation with no management at all (baseline).
#[test]
fn conservation_unmanaged() {
    prop!(cases = 64, arb_scenario, |s: &Scenario| {
        conservation_property(s, false, false)
    });
}

/// Conservation while an autoscaler adds and retires instances mid-run.
#[test]
fn conservation_under_autoscaling() {
    prop!(cases = 64, arb_scenario, |s: &Scenario| {
        conservation_property(s, true, false)
    });
}

/// Conservation while an admission controller throttles the entry tier:
/// rejected requests are still accounted, never silently dropped.
#[test]
fn conservation_under_rate_limiting() {
    prop!(cases = 64, arb_scenario, |s: &Scenario| {
        conservation_property(s, false, true)
    });
}

/// Conservation with both managers fighting over the same deployment.
#[test]
fn conservation_under_autoscaling_and_rate_limiting() {
    prop!(cases = 64, arb_scenario, |s: &Scenario| {
        conservation_property(s, true, true)
    });
}

/// The managed runs themselves are deterministic: replaying a scenario
/// yields identical accounting.
#[test]
fn managed_runs_are_deterministic() {
    prop!(cases = 32, arb_scenario, |s: &Scenario| {
        if out_of_domain(s) {
            return Ok(());
        }
        let a = run_managed(s, true, true)?;
        let b = run_managed(s, true, true)?;
        prop_assert!(
            a == b,
            "nondeterministic managed run in {s:?}: {a:?} vs {b:?}"
        );
        Ok(())
    });
}
