//! The root-cause engine: joins a firing SLO alert with sampled traces
//! and the scraped backpressure series to name the culprit tier.
//!
//! The paper's Fig. 17/18 lesson is that *where latency is billed* and
//! *which tier causes it* diverge under blocking backpressure: nginx
//! workers hold their connection slots while blocked on memcached, so
//! the wait is attributed to nginx spans although memcached's connection
//! limit is the constraint — and memcached itself is nearly idle, so no
//! utilization signal implicates it. The diagnosis therefore needs both
//! halves: critical-path attribution to find where time is spent, then a
//! walk *down* saturated connection pools to find who is causing it.

use std::collections::BTreeSet;

use dsb_core::{RequestType, Simulation};
use dsb_simcore::SimTime;
use dsb_trace::{critical_path, Span};

use crate::registry::{names, Labels, Registry};
use crate::slo::Alert;

/// Mean occupancy at which a connection pool counts as saturated.
const POOL_SATURATED: f64 = 0.95;

/// Per-tier evidence along the backpressure chain.
#[derive(Debug, Clone, PartialEq)]
pub struct TierEvidence {
    /// Service id.
    pub service: u32,
    /// Mean worker-queue depth over the alert window.
    pub mean_queue_depth: f64,
    /// Mean occupancy of this tier's connection pool toward the next
    /// tier in the chain (0 for the last tier).
    pub conn_occupancy: f64,
    /// Mean invocations parked on that pool (0 for the last tier).
    pub conn_waiters: f64,
}

/// Fault-plane evidence joined onto a diagnosis: what the chaos metric
/// series showed over the alert window. `None` on a fault-free run —
/// the series are only recorded once a `ChaosPlan` fault fires.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvidence {
    /// Peak `instances_down` gauge over the alert window.
    pub instances_down: u64,
    /// Peak `partition_edges` gauge over the alert window.
    pub partition_edges: u64,
    /// Total forced cache-refill misses over the alert window.
    pub refill_misses: u64,
    /// The service with the most refill misses, when any occurred.
    pub refill_top: Option<u32>,
}

/// A root-cause report for one alert.
#[derive(Debug, Clone, PartialEq)]
pub struct RootCause {
    /// Request type of the violated SLO.
    pub rtype: RequestType,
    /// First scrape window of the alert.
    pub first_window: usize,
    /// Last scrape window of the alert (inclusive).
    pub last_window: usize,
    /// The tier named as the cause of the violation.
    pub culprit: u32,
    /// The backpressure chain, from the tier the critical path bills the
    /// time to down to the culprit (length 1 when they coincide).
    pub chain: Vec<TierEvidence>,
    /// Critical-path share per service over the alert window, descending
    /// (top 5).
    pub attribution: Vec<(u32, f64)>,
    /// Sampled traces that fell inside the alert window.
    pub traces: usize,
    /// Fault-plane evidence over the alert window, when any chaos series
    /// recorded a nonzero value there.
    pub fault: Option<FaultEvidence>,
}

/// Reads the chaos series back over windows `[from, to)`; `None` when
/// every fault signal is zero there (the fault-free case).
fn fault_evidence(reg: &Registry, n: usize, from: usize, to: usize) -> Option<FaultEvidence> {
    let l = Labels::default();
    let mut down = 0u64;
    let mut edges = 0u64;
    for w in from..to {
        down = down.max(reg.window_mean(names::INSTANCES_DOWN, &l, w).round() as u64);
        edges = edges.max(reg.window_mean(names::PARTITION_EDGES, &l, w).round() as u64);
    }
    let mut refills = 0u64;
    let mut top: Option<(u32, u64)> = None;
    for s in 0..n as u32 {
        let sum = reg.range_sum(names::REFILL_MISSES, &Labels::service(s), from, to);
        if sum > 0 {
            refills += sum;
            if top.is_none_or(|(_, best)| sum > best) {
                top = Some((s, sum));
            }
        }
    }
    if down == 0 && edges == 0 && refills == 0 {
        return None;
    }
    Some(FaultEvidence {
        instances_down: down,
        partition_edges: edges,
        refill_misses: refills,
        refill_top: top.map(|(s, _)| s),
    })
}

/// Sums critical-path attribution (ns per service) over a set of traces.
/// Returns the per-service totals (indexed by service id, `n` entries)
/// and the number of traces walked.
pub fn critical_path_totals<'a, I>(traces: I, n: usize) -> (Vec<u128>, usize)
where
    I: Iterator<Item = &'a [Span]>,
{
    let mut attr = vec![0u128; n];
    let mut count = 0usize;
    for spans in traces {
        count += 1;
        for a in critical_path(spans) {
            if (a.service as usize) < n {
                attr[a.service as usize] += a.ns as u128;
            }
        }
    }
    (attr, count)
}

/// Diagnoses one alert: critical-path attribution over the alert window
/// picks the tier the latency is billed to, then saturated connection
/// pools are followed downstream to the tier actually constraining it.
/// Returns `None` when there is no signal at all (no traces sampled and
/// no queue depth anywhere in the window).
pub fn diagnose(sim: &Simulation, reg: &Registry, alert: &Alert) -> Option<RootCause> {
    let interval = reg.window();
    let lo = SimTime::ZERO + interval * alert.first_window as u64;
    let hi = SimTime::ZERO + interval * (alert.last_window as u64 + 1);
    let n = sim.app().service_count();
    let (from, to) = (alert.first_window, alert.last_window + 1);

    let in_window = |spans: &[Span]| {
        spans
            .iter()
            .any(|s| s.parent.is_none() && s.end >= lo && s.end < hi)
    };
    let (attr, traces) = critical_path_totals(
        sim.collector()
            .sampled_traces()
            .filter(|(_, spans)| in_window(spans))
            .map(|(_, spans)| spans.as_slice()),
        n,
    );
    let total: u128 = attr.iter().sum();

    let mut attribution: Vec<(u32, f64)> = attr
        .iter()
        .enumerate()
        .filter(|&(_, &ns)| ns > 0)
        .map(|(i, &ns)| (i as u32, ns as f64 / total.max(1) as f64))
        .collect();
    attribution.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("shares are finite")
            .then(a.0.cmp(&b.0))
    });
    attribution.truncate(5);

    let queue_mean = |svc: u32| reg.range_mean(names::QUEUE_DEPTH, &Labels::service(svc), from, to);

    // Start from the tier the critical path bills the most time to; with
    // no traces in the window, fall back to the deepest worker queue.
    let start = match attribution.first() {
        Some(&(svc, _)) => svc,
        None => {
            (0..n as u32)
                .map(|s| (s, queue_mean(s)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
                .filter(|&(_, q)| q > 0.0)?
                .0
        }
    };

    // Follow saturated connection pools downstream: a tier whose pool
    // toward a callee is fully occupied with callers parked on it is
    // itself waiting — the callee inherits the blame.
    let mut chain = Vec::new();
    let mut seen = BTreeSet::new();
    let mut cur = start;
    loop {
        seen.insert(cur);
        let mut next: Option<(u32, f64, f64)> = None;
        for (name, l) in reg.keys() {
            if name != names::CONN_WAITERS || l.service != Some(cur) {
                continue;
            }
            let Some(t) = l.target else { continue };
            // Per-window saturation test, so idle drain windows at the
            // tail of an alert cannot dilute a saturated pool's mean
            // below the threshold. The pool counts as the bottleneck
            // when it was saturated through at least a third of the
            // alert's windows.
            let mut sat = 0usize;
            let (mut occ_peak, mut waiters_sum) = (0.0f64, 0.0f64);
            for w in from..to {
                let in_use = reg.window_mean(names::CONN_IN_USE, l, w);
                let limit = reg.window_mean(names::CONN_LIMIT, l, w);
                let waiters = reg.window_mean(names::CONN_WAITERS, l, w);
                if limit > 0.0 && waiters > 0.0 && in_use >= POOL_SATURATED * limit {
                    sat += 1;
                    occ_peak = occ_peak.max(in_use / limit);
                    waiters_sum += waiters;
                }
            }
            if sat == 0 || sat * 3 < to - from {
                continue;
            }
            let waiters = waiters_sum / sat as f64;
            if next.is_none_or(|(_, _, w)| waiters > w) {
                next = Some((t, occ_peak, waiters));
            }
        }
        match next {
            Some((t, occ, waiters)) if !seen.contains(&t) => {
                chain.push(TierEvidence {
                    service: cur,
                    mean_queue_depth: queue_mean(cur),
                    conn_occupancy: occ,
                    conn_waiters: waiters,
                });
                cur = t;
            }
            _ => {
                chain.push(TierEvidence {
                    service: cur,
                    mean_queue_depth: queue_mean(cur),
                    conn_occupancy: 0.0,
                    conn_waiters: 0.0,
                });
                break;
            }
        }
    }

    Some(RootCause {
        rtype: alert.rtype,
        first_window: alert.first_window,
        last_window: alert.last_window,
        culprit: cur,
        chain,
        attribution,
        traces,
        fault: fault_evidence(reg, n, from, to),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::scrape::Scraper;
    use crate::slo::{evaluate, BurnRule, Slo};
    use dsb_core::{AppBuilder, ClusterSpec, Step};
    use dsb_simcore::{Dist, SimDuration};

    /// A Fig.-17-shaped app: a 32-worker blocking front end calling a
    /// fast leaf through a single pooled connection.
    fn backpressure_sim() -> (Simulation, dsb_core::EndpointRef) {
        let mut app = AppBuilder::new("bp");
        let leaf = app
            .service("memcached")
            .workers(8)
            .protocol(dsb_net::Protocol::Http1)
            .conn_limit(1)
            .build();
        let get = app.endpoint(
            leaf,
            "get",
            Dist::constant(64.0),
            vec![Step::work_us(1000.0)],
        );
        let front = app.service("nginx").workers(32).instances(1).build();
        let root = app.endpoint(
            front,
            "root",
            Dist::constant(256.0),
            vec![Step::work_us(10.0), Step::call(get, 64.0)],
        );
        let mut cluster = ClusterSpec::xeon_cluster(2, 1);
        cluster.trace_sample_prob = 1.0;
        (Simulation::new(app.build(), cluster, 17), root)
    }

    #[test]
    fn names_the_idle_leaf_behind_the_saturated_pool() {
        let (mut sim, root) = backpressure_sim();
        // The 1ms handler through a single connection caps throughput near
        // 1k/s; 5000 qps of blocking calls drowns it.
        for j in 0..10_000u64 {
            sim.inject(
                SimTime::from_nanos(j * 200_000),
                root,
                RequestType(0),
                128,
                j,
            );
        }
        let slo = Slo::p99(RequestType(0), SimDuration::from_millis(2));
        let mut scr = Scraper::new(SimDuration::from_millis(250)).with_slo(slo);
        for step in 1..=8u64 {
            let t = SimTime::from_millis(step * 250);
            sim.advance_to(t);
            scr.tick(&sim, t);
        }
        let alerts = evaluate(scr.registry(), &slo, &BurnRule::default());
        assert!(!alerts.is_empty(), "backpressure must burn the SLO");
        let rc = diagnose(&sim, scr.registry(), &alerts[0]).expect("diagnosable");
        // Critical path bills the blocked front end...
        assert_eq!(rc.attribution[0].0, 1, "{:?}", rc.attribution);
        // ...but the chain walk names the leaf behind the saturated pool.
        assert_eq!(rc.culprit, 0, "{rc:?}");
        assert_eq!(rc.chain.len(), 2);
        assert!(rc.chain[0].conn_occupancy >= 0.95);
        assert!(rc.chain[0].conn_waiters > 0.0);
        assert!(rc.traces > 0);
    }

    #[test]
    fn no_signal_returns_none() {
        let (sim, _) = backpressure_sim();
        let reg = Registry::new(SimDuration::from_millis(250));
        let alert = Alert {
            rtype: RequestType(0),
            first_window: 0,
            last_window: 3,
            peak_short: 20.0,
            peak_long: 20.0,
            violations: 0,
            total: 0,
        };
        assert!(diagnose(&sim, &reg, &alert).is_none());
    }
}
