//! The deterministic metrics registry.

use std::collections::BTreeMap;

use dsb_simcore::{Histogram, SimDuration, SimTime, WindowedSeries};

/// The label set a metric is keyed by. All dimensions are optional; a
/// metric uses the ones that make sense for it (a worker-queue gauge has
/// only `service`, a connection-pool gauge has `service` + `target`, a
/// machine gauge only `machine`). `Ord` is derived, so registry iteration
/// order — and therefore every report — is deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Labels {
    /// Owning service id.
    pub service: Option<u32>,
    /// Endpoint index within the service.
    pub endpoint: Option<u32>,
    /// Machine id.
    pub machine: Option<u32>,
    /// Downstream service id (connection-pool metrics).
    pub target: Option<u32>,
    /// Request-type id (end-to-end / SLO metrics).
    pub rtype: Option<u32>,
}

impl Labels {
    /// Labels for a per-service metric.
    pub fn service(id: u32) -> Self {
        Labels {
            service: Some(id),
            ..Labels::default()
        }
    }

    /// Labels for a per-machine metric.
    pub fn machine(id: u32) -> Self {
        Labels {
            machine: Some(id),
            ..Labels::default()
        }
    }

    /// Labels for a per-request-type metric.
    pub fn rtype(id: u32) -> Self {
        Labels {
            rtype: Some(id),
            ..Labels::default()
        }
    }

    /// Adds an endpoint dimension.
    pub fn with_endpoint(mut self, e: u32) -> Self {
        self.endpoint = Some(e);
        self
    }

    /// Adds a downstream-service dimension.
    pub fn with_target(mut self, t: u32) -> Self {
        self.target = Some(t);
        self
    }
}

/// Canonical metric names recorded by the [`crate::Scraper`].
pub mod names {
    /// Gauge: requests queued for a worker, per service.
    pub const QUEUE_DEPTH: &str = "queue_depth";
    /// Gauge: queued + running invocations, per service.
    pub const INFLIGHT: &str = "inflight";
    /// Gauge: busy workers / total fixed workers × 1000, per service.
    pub const OCCUPANCY_PERMILLE: &str = "occupancy_permille";
    /// Gauge: `Up` instances, per service.
    pub const INSTANCES: &str = "instances";
    /// Counter: completed invocations, per service.
    pub const INVOCATIONS: &str = "invocations";
    /// Counter: requests dropped by admission control, per service.
    pub const DROPPED: &str = "dropped";
    /// Counter: completed invocations, per (service, endpoint).
    pub const ENDPOINT_INVOCATIONS: &str = "endpoint_invocations";
    /// Gauge: connections in use, per (service, target).
    pub const CONN_IN_USE: &str = "conn_in_use";
    /// Gauge: pooled connection capacity, per (service, target).
    pub const CONN_LIMIT: &str = "conn_limit";
    /// Gauge: invocations parked for a connection, per (service, target).
    pub const CONN_WAITERS: &str = "conn_waiters";
    /// Gauge: cores executing jobs, per machine.
    pub const BUSY_CORES: &str = "busy_cores";
    /// Gauge: jobs in the run queue, per machine.
    pub const RUN_QUEUE: &str = "run_queue";
    /// Gauge: total cores, per machine.
    pub const CORES: &str = "cores";
    /// Counter: requests injected, per request type.
    pub const ISSUED: &str = "issued";
    /// Counter: requests completed, per request type.
    pub const COMPLETED: &str = "completed";
    /// Counter: requests rejected, per request type.
    pub const REJECTED: &str = "rejected";
    /// Counter: completions measured against an SLO, per request type.
    pub const SLO_TOTAL: &str = "slo_total";
    /// Counter: completions within the SLO target, per request type.
    pub const SLO_GOOD: &str = "slo_good";
    /// Gauge: per-window span p99 (ns), per service — recorded only when
    /// the scrape interval equals the trace collector's window.
    pub const SPAN_P99_NS: &str = "span_p99_ns";
    /// Gauge: per-window span mean (ns), per service — same condition.
    pub const SPAN_MEAN_NS: &str = "span_mean_ns";
    /// Gauge: instances currently `Down` from chaos faults, app-wide
    /// (label-less). Recorded only once a fault has fired, so fault-free
    /// runs carry no fault series at all.
    pub const INSTANCES_DOWN: &str = "instances_down";
    /// Gauge: machine pairs currently partitioned, app-wide — same
    /// only-after-first-fault rule.
    pub const PARTITION_EDGES: &str = "partition_edges";
    /// Counter: cache lookups forced onto the miss path by a down or
    /// cold-refilling home shard, per (cache) service — same rule.
    pub const REFILL_MISSES: &str = "refill_misses";
    /// Counter: requests failed fast by faults, per request type — same
    /// rule.
    pub const FAILED: &str = "failed";
}

/// Whether a metric is a monotone total (recorded as per-scrape deltas)
/// or an instantaneous sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone total; the registry stores per-scrape increments.
    Counter,
    /// Instantaneous value sampled at scrape time.
    Gauge,
}

#[derive(Debug)]
struct Metric {
    kind: Kind,
    series: WindowedSeries,
    /// Last cumulative value seen (counters only).
    last: u64,
}

/// A deterministic store of metric timelines.
///
/// Every `(name, labels)` pair maps to a [`WindowedSeries`]; counters are
/// stored as per-scrape increments so window sums read back as "events in
/// this window". Iteration is `BTreeMap`-ordered, never hashed.
#[derive(Debug)]
pub struct Registry {
    window: SimDuration,
    metrics: BTreeMap<(&'static str, Labels), Metric>,
}

impl Registry {
    /// Creates a registry whose series bucket samples into `window`-wide
    /// windows (normally the scrape interval).
    pub fn new(window: SimDuration) -> Self {
        Registry {
            window,
            metrics: BTreeMap::new(),
        }
    }

    /// The window width series were created with.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn entry(&mut self, name: &'static str, labels: Labels, kind: Kind) -> &mut Metric {
        let window = self.window;
        let m = self
            .metrics
            .entry((name, labels))
            .or_insert_with(|| Metric {
                kind,
                series: WindowedSeries::new(window),
                last: 0,
            });
        debug_assert_eq!(
            m.kind, kind,
            "metric {name} re-registered as a different kind"
        );
        m
    }

    /// Records an instantaneous sample.
    pub fn gauge(&mut self, name: &'static str, labels: Labels, at: SimTime, value: u64) {
        self.entry(name, labels, Kind::Gauge)
            .series
            .record(at, value);
    }

    /// Records a monotone cumulative total; the increment since the last
    /// call is stored (a total below the previous one records 0).
    pub fn counter(&mut self, name: &'static str, labels: Labels, at: SimTime, total: u64) {
        let m = self.entry(name, labels, Kind::Counter);
        let delta = total.saturating_sub(m.last);
        m.last = total;
        m.series.record(at, delta);
    }

    /// The raw series for a metric, if it was ever recorded.
    pub fn series(&self, name: &'static str, labels: &Labels) -> Option<&WindowedSeries> {
        self.metrics.get(&(name, *labels)).map(|m| &m.series)
    }

    /// Iterates over all recorded `(name, labels)` keys in stable order.
    pub fn keys(&self) -> impl Iterator<Item = (&'static str, &Labels)> {
        self.metrics.keys().map(|(n, l)| (*n, l))
    }

    /// Number of windows in the longest series (the run length in
    /// scrape windows).
    pub fn windows(&self) -> usize {
        self.metrics
            .values()
            .map(|m| m.series.window_count())
            .max()
            .unwrap_or(0)
    }

    fn merged(&self, name: &'static str, labels: &Labels, from: usize, to: usize) -> Histogram {
        match self.series(name, labels) {
            Some(s) => s.merged_range(from, to),
            None => Histogram::compact(),
        }
    }

    /// Sum of samples over windows `[from, to)` — for counters, the total
    /// increment over that span. Exact (sums are kept outside the
    /// histogram buckets).
    pub fn range_sum(&self, name: &'static str, labels: &Labels, from: usize, to: usize) -> u64 {
        let h = self.merged(name, labels, from, to);
        (h.mean() * h.count() as f64).round() as u64
    }

    /// Mean of samples over windows `[from, to)` (0 if none).
    pub fn range_mean(&self, name: &'static str, labels: &Labels, from: usize, to: usize) -> f64 {
        self.merged(name, labels, from, to).mean()
    }

    /// Sum of samples in window `w`.
    pub fn window_sum(&self, name: &'static str, labels: &Labels, w: usize) -> u64 {
        self.range_sum(name, labels, w, w + 1)
    }

    /// Mean of samples in window `w` — for gauges scraped once per
    /// window, the sampled value itself.
    pub fn window_mean(&self, name: &'static str, labels: &Labels, w: usize) -> f64 {
        self.range_mean(name, labels, w, w + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn counter_stores_deltas() {
        let mut r = Registry::new(SimDuration::from_secs(1));
        let l = Labels::service(3);
        r.counter(names::INVOCATIONS, l, t(500), 10);
        r.counter(names::INVOCATIONS, l, t(1500), 25);
        r.counter(names::INVOCATIONS, l, t(2500), 25);
        assert_eq!(r.window_sum(names::INVOCATIONS, &l, 0), 10);
        assert_eq!(r.window_sum(names::INVOCATIONS, &l, 1), 15);
        assert_eq!(r.window_sum(names::INVOCATIONS, &l, 2), 0);
        assert_eq!(r.range_sum(names::INVOCATIONS, &l, 0, 3), 25);
    }

    #[test]
    fn counter_regression_records_zero() {
        let mut r = Registry::new(SimDuration::from_secs(1));
        let l = Labels::rtype(0);
        r.counter(names::ISSUED, l, t(500), 10);
        r.counter(names::ISSUED, l, t(1500), 5);
        assert_eq!(r.window_sum(names::ISSUED, &l, 1), 0);
    }

    #[test]
    fn gauge_reads_back_via_window_mean() {
        let mut r = Registry::new(SimDuration::from_secs(1));
        let l = Labels::service(0).with_target(1);
        r.gauge(names::CONN_WAITERS, l, t(500), 7);
        r.gauge(names::CONN_WAITERS, l, t(1500), 9);
        assert_eq!(r.window_mean(names::CONN_WAITERS, &l, 0), 7.0);
        assert_eq!(r.window_mean(names::CONN_WAITERS, &l, 1), 9.0);
        assert_eq!(r.range_mean(names::CONN_WAITERS, &l, 0, 2), 8.0);
        assert_eq!(r.windows(), 2);
    }

    #[test]
    fn labels_distinguish_series() {
        let mut r = Registry::new(SimDuration::from_secs(1));
        r.gauge(names::QUEUE_DEPTH, Labels::service(0), t(100), 1);
        r.gauge(names::QUEUE_DEPTH, Labels::service(1), t(100), 2);
        assert_eq!(
            r.window_mean(names::QUEUE_DEPTH, &Labels::service(0), 0),
            1.0
        );
        assert_eq!(
            r.window_mean(names::QUEUE_DEPTH, &Labels::service(1), 0),
            2.0
        );
        assert_eq!(r.keys().count(), 2);
        assert!(r.series(names::QUEUE_DEPTH, &Labels::service(9)).is_none());
    }
}
