//! Export: JSONL (one object per scrape window / alert / root cause)
//! and a `dsb-top`-style text table.
//!
//! Everything here is rendered from the deterministic registry with
//! fixed-precision number formatting, so reports are byte-identical
//! across reruns at the same seed and golden-testable.

use std::fmt::Write as _;

use dsb_core::Simulation;

use crate::registry::{names, Labels};
use crate::rootcause::RootCause;
use crate::scrape::Scraper;
use crate::slo::Alert;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn service_name(sim: &Simulation, id: u32) -> String {
    sim.app()
        .services
        .get(id as usize)
        .map_or_else(|| format!("svc{id}"), |s| s.name.clone())
}

/// Renders the full run as JSON Lines: one `scrape` object per scrape
/// window, then one `alert` object per alert and one `root_cause` object
/// per diagnosis, in that order.
pub fn jsonl(
    sim: &Simulation,
    scraper: &Scraper,
    alerts: &[Alert],
    causes: &[RootCause],
) -> String {
    let reg = scraper.registry();
    let nsvc = sim.app().service_count();
    let mut out = String::new();
    for w in 0..scraper.scrapes() {
        let _ = write!(
            out,
            "{{\"type\":\"scrape\",\"window\":{w},\"interval_ms\":{:.3}",
            scraper.interval().as_millis_f64()
        );
        out.push_str(",\"services\":[");
        for i in 0..nsvc {
            let l = Labels::service(i as u32);
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"queue\":{},\"inflight\":{},\"occ\":{:.3},\
                 \"instances\":{},\"invocations\":{},\"dropped\":{}}}",
                esc(&service_name(sim, i as u32)),
                reg.window_mean(names::QUEUE_DEPTH, &l, w).round() as u64,
                reg.window_mean(names::INFLIGHT, &l, w).round() as u64,
                reg.window_mean(names::OCCUPANCY_PERMILLE, &l, w) / 1000.0,
                reg.window_mean(names::INSTANCES, &l, w).round() as u64,
                reg.window_sum(names::INVOCATIONS, &l, w),
                reg.window_sum(names::DROPPED, &l, w),
            );
        }
        out.push_str("],\"pools\":[");
        let mut first = true;
        for (name, l) in reg.keys() {
            if name != names::CONN_WAITERS {
                continue;
            }
            let (Some(s), Some(t)) = (l.service, l.target) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"in_use\":{},\"limit\":{},\"waiters\":{}}}",
                esc(&service_name(sim, s)),
                esc(&service_name(sim, t)),
                reg.window_mean(names::CONN_IN_USE, l, w).round() as u64,
                reg.window_mean(names::CONN_LIMIT, l, w).round() as u64,
                reg.window_mean(names::CONN_WAITERS, l, w).round() as u64,
            );
        }
        out.push_str("],\"machines\":{");
        let (mut busy, mut cores, mut runq) = (0u64, 0u64, 0u64);
        for m in 0..sim.machine_count() {
            let lm = Labels::machine(m as u32);
            busy += reg.window_mean(names::BUSY_CORES, &lm, w).round() as u64;
            cores += reg.window_mean(names::CORES, &lm, w).round() as u64;
            runq += reg.window_mean(names::RUN_QUEUE, &lm, w).round() as u64;
        }
        let _ = write!(
            out,
            "\"busy_cores\":{busy},\"cores\":{cores},\"run_queue\":{runq}}}"
        );
        out.push_str(",\"requests\":[");
        let mut first = true;
        for r in 0..sim.request_type_count() {
            let lr = Labels::rtype(r as u32);
            if reg.series(names::ISSUED, &lr).is_none() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"rtype\":{r},\"issued\":{},\"completed\":{},\"rejected\":{}",
                reg.window_sum(names::ISSUED, &lr, w),
                reg.window_sum(names::COMPLETED, &lr, w),
                reg.window_sum(names::REJECTED, &lr, w),
            );
            if reg.series(names::SLO_TOTAL, &lr).is_some() {
                let _ = write!(
                    out,
                    ",\"slo_good\":{},\"slo_total\":{}",
                    reg.window_sum(names::SLO_GOOD, &lr, w),
                    reg.window_sum(names::SLO_TOTAL, &lr, w),
                );
            }
            out.push('}');
        }
        out.push_str("]}\n");
    }
    for a in alerts {
        let _ = writeln!(
            out,
            "{{\"type\":\"alert\",\"rtype\":{},\"first_window\":{},\"last_window\":{},\
             \"peak_short_burn\":{:.2},\"peak_long_burn\":{:.2},\"violations\":{},\"total\":{}}}",
            a.rtype.0,
            a.first_window,
            a.last_window,
            a.peak_short,
            a.peak_long,
            a.violations,
            a.total,
        );
    }
    for rc in causes {
        let _ = write!(
            out,
            "{{\"type\":\"root_cause\",\"rtype\":{},\"first_window\":{},\"last_window\":{},\
             \"culprit\":\"{}\",\"chain\":[",
            rc.rtype.0,
            rc.first_window,
            rc.last_window,
            esc(&service_name(sim, rc.culprit)),
        );
        for (i, t) in rc.chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"service\":\"{}\",\"queue\":{:.1},\"conn_occupancy\":{:.2},\"conn_waiters\":{:.1}}}",
                esc(&service_name(sim, t.service)),
                t.mean_queue_depth,
                t.conn_occupancy,
                t.conn_waiters,
            );
        }
        out.push_str("],\"attribution\":[");
        for (i, &(svc, share)) in rc.attribution.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{}\",{:.3}]", esc(&service_name(sim, svc)), share);
        }
        out.push(']');
        if let Some(ev) = &rc.fault {
            let _ = write!(
                out,
                ",\"fault\":{{\"instances_down\":{},\"partition_edges\":{},\"refill_misses\":{}",
                ev.instances_down, ev.partition_edges, ev.refill_misses,
            );
            if let Some(t) = ev.refill_top {
                let _ = write!(out, ",\"refill_top\":\"{}\"", esc(&service_name(sim, t)));
            }
            out.push('}');
        }
        let _ = writeln!(out, ",\"traces\":{}}}", rc.traces);
    }
    out
}

/// Renders a `dsb-top`-style text table: one row per service with
/// run-aggregated telemetry, followed by alert and root-cause lines.
pub fn top(
    sim: &Simulation,
    scraper: &Scraper,
    alerts: &[Alert],
    causes: &[RootCause],
    title: &str,
) -> String {
    let reg = scraper.registry();
    let n = scraper.scrapes();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dsb-top — {title} ({n} windows x {:.0} ms)",
        scraper.interval().as_millis_f64()
    );
    let _ = writeln!(
        out,
        "{:<22}{:>6}{:>7}{:>8}{:>8}{:>10}{:>7}{:>11}",
        "SERVICE", "INST", "OCC", "QUEUE", "INFLT", "INVOC", "DROP", "P99(ms)"
    );
    for i in 0..sim.app().service_count() {
        let l = Labels::service(i as u32);
        let last = n.saturating_sub(1);
        let p99 = sim
            .collector()
            .service(i as u32)
            .map_or(0.0, |s| s.p(0.99).as_millis_f64());
        let _ = writeln!(
            out,
            "{:<22}{:>6}{:>7.2}{:>8.1}{:>8.1}{:>10}{:>7}{:>11.3}",
            service_name(sim, i as u32),
            reg.window_mean(names::INSTANCES, &l, last).round() as u64,
            reg.range_mean(names::OCCUPANCY_PERMILLE, &l, 0, n) / 1000.0,
            reg.range_mean(names::QUEUE_DEPTH, &l, 0, n),
            reg.range_mean(names::INFLIGHT, &l, 0, n),
            reg.range_sum(names::INVOCATIONS, &l, 0, n),
            reg.range_sum(names::DROPPED, &l, 0, n),
            p99,
        );
    }
    out.push_str(&alert_lines(sim, alerts, causes));
    out
}

/// Renders the ALERT / ROOT CAUSE lines of a run on their own — the tail
/// of [`top`], reusable under any other table.
pub fn alert_lines(sim: &Simulation, alerts: &[Alert], causes: &[RootCause]) -> String {
    let mut out = String::new();
    if alerts.is_empty() {
        out.push_str("no SLO alerts\n");
    }
    for a in alerts {
        let _ = writeln!(
            out,
            "ALERT rtype={}: windows {}..{}, burn short {:.1} long {:.1} ({}/{} over SLO)",
            a.rtype.0,
            a.first_window,
            a.last_window,
            a.peak_short,
            a.peak_long,
            a.violations,
            a.total,
        );
    }
    for rc in causes {
        let chain = rc
            .chain
            .iter()
            .map(|t| service_name(sim, t.service))
            .collect::<Vec<_>>()
            .join(" -> ");
        let evidence = rc
            .chain
            .first()
            .filter(|t| t.conn_waiters > 0.0)
            .map(|t| {
                format!(
                    "; `{}` conn pool {:.0}% occupied, {:.1} waiters avg",
                    service_name(sim, t.service),
                    t.conn_occupancy * 100.0,
                    t.conn_waiters,
                )
            })
            .unwrap_or_default();
        let attr = rc
            .attribution
            .iter()
            .map(|&(s, share)| format!("{} {:.0}%", service_name(sim, s), share * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        let fault = rc
            .fault
            .as_ref()
            .map(|ev| {
                let top = ev
                    .refill_top
                    .map(|t| format!(" (top `{}`)", service_name(sim, t)))
                    .unwrap_or_default();
                format!(
                    "; fault plane: {} down, {} partitioned, {} cold refills{top}",
                    ev.instances_down, ev.partition_edges, ev.refill_misses,
                )
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "ROOT CAUSE rtype={}: `{}` — chain {chain}{evidence}; critical path: {attr}{fault}; {} traces",
            rc.rtype.0,
            service_name(sim, rc.culprit),
            rc.traces,
        );
    }
    out
}

/// Renders a [`crate::DetectionScore`] as text: the headline precision /
/// recall line, then one line per injected fault with its detection
/// latency and the measured recovery time.
pub fn detection_lines(sim: &Simulation, score: &crate::DetectionScore) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "DETECTION precision {:.2} recall {:.2} ({} true, {} false alerts, {} faults)",
        score.precision,
        score.recall,
        score.true_alerts,
        score.false_alerts,
        score.detections.len(),
    );
    for d in &score.detections {
        let f = &d.fault;
        let _ = write!(
            out,
            "  fault {} @{:.0}..{:.0}ms: ",
            f.label,
            f.from.since(dsb_simcore::SimTime::ZERO).as_millis_f64(),
            f.until.since(dsb_simcore::SimTime::ZERO).as_millis_f64(),
        );
        if !d.detected {
            out.push_str("MISSED\n");
            continue;
        }
        let _ = write!(
            out,
            "detected w{}, ttd {:.0} ms, recovered {:.0} ms",
            d.detect_window.expect("detected"),
            d.time_to_detect.expect("detected").as_millis_f64(),
            d.time_to_recover.expect("detected").as_millis_f64(),
        );
        match (d.culprit_named, f.culprit) {
            (Some(true), Some(c)) => {
                let _ = write!(out, ", culprit `{}` named", service_name(sim, c.0));
            }
            (Some(false), Some(c)) => {
                let _ = write!(out, ", culprit `{}` NOT named", service_name(sim, c.0));
            }
            _ => {}
        }
        out.push('\n');
    }
    out
}

/// Convenience: evaluates every SLO registered on the scraper with
/// `rule`, diagnoses each alert, and returns `(alerts, causes)` — the
/// inputs [`jsonl`] and [`top`] take.
pub fn analyze(
    sim: &Simulation,
    scraper: &Scraper,
    rule: &crate::slo::BurnRule,
) -> (Vec<Alert>, Vec<RootCause>) {
    let mut alerts = Vec::new();
    for slo in scraper.slos() {
        alerts.extend(crate::slo::evaluate(scraper.registry(), slo, rule));
    }
    alerts.sort_by_key(|a| (a.first_window, a.rtype.0));
    let causes = alerts
        .iter()
        .filter_map(|a| crate::rootcause::diagnose(sim, scraper.registry(), a))
        .collect();
    (alerts, causes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("tab\there"), "tab\\u0009here");
    }
}
