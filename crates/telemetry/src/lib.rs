//! # dsb-telemetry — the simulator's observability plane
//!
//! The paper's methodology hinges on always-on, low-overhead monitoring:
//! per-tier tracing with < 0.1 % latency overhead (§4) is what lets it
//! attribute tail-latency growth to cascading backpressure across
//! dependent tiers (§7, Figs. 17–18). This crate is that monitoring
//! stack for the simulator, built in four layers:
//!
//! * [`Registry`] — a deterministic metrics store: counters and gauges
//!   keyed by `(service, endpoint, machine, target, rtype)` labels, each
//!   a [`dsb_simcore::WindowedSeries`] timeline.
//! * [`Scraper`] — polls a [`dsb_core::Simulation`] through *read-only*
//!   hooks (worker-queue depth, in-flight requests, connection-pool
//!   occupancy, per-machine core usage, drops) at a fixed sim-time
//!   interval. Because the hooks never touch the RNG or the event queue,
//!   attaching a scraper cannot perturb a run: collection is cost-free
//!   in simulated time and results stay byte-identical.
//! * [`Slo`] / [`evaluate`] — per-app latency objectives checked with
//!   SRE-style multi-window burn rates, firing deterministic [`Alert`]s.
//! * [`diagnose`] — joins a firing alert with the sampled traces over
//!   the alert window: walks [`dsb_trace::critical_path`] attributions,
//!   then follows saturated connection pools *downstream* to name the
//!   culprit tier (the Fig. 17 diagnosis: the tier the time is billed to
//!   is not the tier causing the wait). Under an installed
//!   [`dsb_core::ChaosPlan`] the diagnosis also carries
//!   [`FaultEvidence`] read back from the chaos metric series.
//! * [`score`] — grades the plane as a *detector*: joins fired alerts
//!   and diagnoses against the ground-truth `ChaosPlan`, yielding
//!   precision, recall, per-fault time-to-detect, and the measured
//!   recovery time against each SLO.
//!
//! [`report::jsonl`] and [`report::top`] export everything as JSONL (one
//! object per scrape/alert/root-cause) and a `dsb-top`-style text table;
//! the `dsb-report` binary in `dsb-experiments` fronts them.

#![warn(missing_docs)]

mod detect;
mod registry;
mod rootcause;
mod scrape;
mod slo;

pub mod report;

pub use detect::{score, Detection, DetectionScore};
pub use registry::{names, Kind, Labels, Registry};
pub use rootcause::{critical_path_totals, diagnose, FaultEvidence, RootCause, TierEvidence};
pub use scrape::Scraper;
pub use slo::{evaluate, Alert, BurnRule, Slo};
