//! The scraper: polls a simulation's read-only telemetry hooks at a
//! fixed sim-time interval and feeds the registry.

use dsb_core::{MachineId, RequestType, ServiceId, Simulation};
use dsb_simcore::{SimDuration, SimTime};

use crate::registry::{names, Labels, Registry};
use crate::slo::Slo;

/// Scrapes a [`Simulation`] every `interval` of virtual time.
///
/// Drive it from a controller tick: [`Scraper::tick`] performs one scrape
/// per elapsed interval since the last call, so any tick cadence at least
/// as fine as the interval yields exactly one scrape per window. Samples
/// are stamped at the *midpoint* of the window they summarize, so window
/// `k` of every registry series describes sim-time
/// `[k·interval, (k+1)·interval)`.
///
/// Scraping only calls `&Simulation` getters — it cannot advance time,
/// touch the RNG, or reorder events, so a run with a scraper attached is
/// byte-identical to one without.
#[derive(Debug)]
pub struct Scraper {
    interval: SimDuration,
    scrapes: usize,
    registry: Registry,
    slos: Vec<Slo>,
}

impl Scraper {
    /// Creates a scraper with the given interval (also the registry's
    /// window width).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        Scraper {
            interval,
            scrapes: 0,
            registry: Registry::new(interval),
            slos: Vec::new(),
        }
    }

    /// Registers an SLO: each scrape additionally records the
    /// `slo_total` / `slo_good` counters its burn-rate evaluation needs.
    pub fn with_slo(mut self, slo: Slo) -> Self {
        self.slos.push(slo);
        self
    }

    /// The scrape interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The registered SLOs.
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// Completed scrapes (== complete registry windows).
    pub fn scrapes(&self) -> usize {
        self.scrapes
    }

    /// The collected metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Scrapes once per interval window that has fully elapsed by `now` —
    /// the controller's tick time (e.g. the `advance_to` horizon; the
    /// scheduler's own clock stops at the last processed event, which can
    /// sit short of the horizon). Call from a periodic controller tick.
    pub fn tick(&mut self, sim: &Simulation, now: SimTime) {
        while self.interval * (self.scrapes as u64 + 1) <= now.since(SimTime::ZERO) {
            self.scrape_window(sim);
        }
    }

    /// One final scrape covering everything since the last tick. Call
    /// once after `run_until_idle`: drain completions land in a single
    /// trailing window (stamped as window `scrapes()`), instead of
    /// smearing empty windows out to the idle timestamp.
    pub fn flush(&mut self, sim: &Simulation) {
        if sim.now().since(SimTime::ZERO) > self.interval * self.scrapes as u64 {
            self.scrape_window(sim);
        }
    }

    fn scrape_window(&mut self, sim: &Simulation) {
        let k = self.scrapes as u64;
        let stamp = SimTime::ZERO + self.interval * k + self.interval / 2;
        let reg = &mut self.registry;

        for i in 0..sim.app().service_count() {
            let sid = ServiceId(i as u32);
            let l = Labels::service(i as u32);
            reg.gauge(names::QUEUE_DEPTH, l, stamp, sim.service_queue_depth(sid));
            reg.gauge(names::INFLIGHT, l, stamp, sim.service_inflight(sid));
            let occ = (sim.occupancy(sid) * 1000.0).round() as u64;
            reg.gauge(names::OCCUPANCY_PERMILLE, l, stamp, occ);
            reg.gauge(names::INSTANCES, l, stamp, sim.instance_count(sid) as u64);
            let st = sim.service_stats(sid);
            reg.counter(names::INVOCATIONS, l, stamp, st.invocations);
            reg.counter(names::DROPPED, l, stamp, st.dropped);
            if st.refill_misses > 0 || reg.series(names::REFILL_MISSES, &l).is_some() {
                reg.counter(names::REFILL_MISSES, l, stamp, st.refill_misses);
            }
            for (e, &n) in st.endpoint_invocations.iter().enumerate() {
                let le = l.with_endpoint(e as u32);
                reg.counter(names::ENDPOINT_INVOCATIONS, le, stamp, n);
            }
            for t in sim.conn_pool_targets(sid) {
                if let Some(p) = sim.conn_pool(sid, t) {
                    let lt = l.with_target(t.0);
                    reg.gauge(names::CONN_IN_USE, lt, stamp, p.in_use);
                    reg.gauge(names::CONN_LIMIT, lt, stamp, p.limit);
                    reg.gauge(names::CONN_WAITERS, lt, stamp, p.waiters);
                }
            }
            // Span-latency timelines align with collector windows only
            // when the scrape interval matches the collector's width.
            if let Some(ts) = sim.collector().service(i as u32) {
                if ts.latency_windows.window() == self.interval {
                    let w = self.scrapes;
                    let p99 = ts.latency_windows.quantile(w, 0.99);
                    reg.gauge(names::SPAN_P99_NS, l, stamp, p99);
                    let mean = ts.latency_windows.mean(w) as u64;
                    reg.gauge(names::SPAN_MEAN_NS, l, stamp, mean);
                }
            }
        }

        for m in 0..sim.machine_count() {
            let mid = MachineId(m as u32);
            let lm = Labels::machine(m as u32);
            reg.gauge(
                names::BUSY_CORES,
                lm,
                stamp,
                sim.machine_busy_cores(mid) as u64,
            );
            reg.gauge(
                names::RUN_QUEUE,
                lm,
                stamp,
                sim.machine_run_queue(mid) as u64,
            );
            reg.gauge(names::CORES, lm, stamp, sim.machine_cores(mid) as u64);
        }

        for r in 0..sim.request_type_count() {
            if let Some(rs) = sim.request_stats(RequestType(r as u32)) {
                let lr = Labels::rtype(r as u32);
                reg.counter(names::ISSUED, lr, stamp, rs.issued);
                reg.counter(names::COMPLETED, lr, stamp, rs.completed);
                reg.counter(names::REJECTED, lr, stamp, rs.rejected);
                if rs.failed > 0 || reg.series(names::FAILED, &lr).is_some() {
                    reg.counter(names::FAILED, lr, stamp, rs.failed);
                }
            }
        }
        for slo in &self.slos {
            if let Some(rs) = sim.request_stats(slo.rtype) {
                let lr = Labels::rtype(slo.rtype.0);
                // Failed-fast requests never reach the latency histogram
                // but still burn the SLO: an error is as bad as a miss.
                let total = rs.latency.count() + rs.failed;
                let good = rs.latency.count_le(slo.latency.as_nanos());
                reg.counter(names::SLO_TOTAL, lr, stamp, total);
                reg.counter(names::SLO_GOOD, lr, stamp, good);
            }
        }
        // App-wide fault state: silent until the first fault fires, then
        // sampled every window (zeros included) so recovery is visible.
        let l = Labels::default();
        let down = sim.instances_down();
        if down > 0 || reg.series(names::INSTANCES_DOWN, &l).is_some() {
            reg.gauge(names::INSTANCES_DOWN, l, stamp, down);
        }
        let edges = sim.partition_edges();
        if edges > 0 || reg.series(names::PARTITION_EDGES, &l).is_some() {
            reg.gauge(names::PARTITION_EDGES, l, stamp, edges);
        }
        self.scrapes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{AppBuilder, ClusterSpec, EndpointRef, Step};
    use dsb_simcore::Dist;

    fn tiny() -> (Simulation, EndpointRef) {
        let mut app = AppBuilder::new("t");
        let b = app.service("leaf").workers(4).build();
        let get = app.endpoint(b, "get", Dist::constant(200.0), vec![Step::work_us(50.0)]);
        let a = app.service("front").workers(4).build();
        let root = app.endpoint(
            a,
            "root",
            Dist::constant(200.0),
            vec![Step::work_us(20.0), Step::call(get, 64.0)],
        );
        let spec = app.build();
        let cluster = ClusterSpec::xeon_cluster(2, 1);
        (Simulation::new(spec, cluster, 7), root)
    }

    #[test]
    fn tick_scrapes_once_per_elapsed_window() {
        let (mut sim, root) = tiny();
        for j in 0..100u64 {
            sim.inject(SimTime::from_millis(j * 10), root, RequestType(0), 128, j);
        }
        let mut scr = Scraper::new(SimDuration::from_millis(250));
        for step in 1..=4u64 {
            let t = SimTime::from_millis(step * 250);
            sim.advance_to(t);
            scr.tick(&sim, t);
        }
        assert_eq!(scr.scrapes(), 4);
        // Irregular later tick still lands one scrape per window.
        sim.advance_to(SimTime::from_millis(1750));
        scr.tick(&sim, SimTime::from_millis(1750));
        assert_eq!(scr.scrapes(), 7);
        let reg = scr.registry();
        let front = Labels::service(1);
        // All 100 invocations accounted across windows.
        let total: u64 = (0..reg.windows())
            .map(|w| reg.window_sum(names::INVOCATIONS, &front, w))
            .sum();
        assert_eq!(total, 100);
        // Machine gauges present.
        assert_eq!(reg.window_mean(names::CORES, &Labels::machine(0), 0), 40.0);
    }

    #[test]
    fn scraping_does_not_perturb_the_run() {
        let run = |scrape: bool| {
            let (mut sim, root) = tiny();
            for j in 0..200u64 {
                sim.inject(SimTime::from_millis(j * 5), root, RequestType(0), 128, j);
            }
            let mut scr = Scraper::new(SimDuration::from_millis(100));
            for step in 1..=12u64 {
                let t = SimTime::from_millis(step * 100);
                sim.advance_to(t);
                if scrape {
                    scr.tick(&sim, t);
                }
            }
            sim.run_until_idle();
            (
                sim.events_processed(),
                sim.request_stats(RequestType(0))
                    .unwrap()
                    .latency
                    .quantile(0.99),
            )
        };
        assert_eq!(run(true), run(false));
    }

    /// Mid-run topology churn: a scale-up joins and the leaf's machine
    /// crashes between scrapes. Every scrape must report the instance
    /// count the simulation holds at that instant — and keep working
    /// when a conn-pool target it reported last window has vanished.
    #[test]
    fn scrapes_track_mid_run_topology_changes() {
        use dsb_core::{ChaosEvent, ChaosPlan, ServiceId};
        use dsb_net::Protocol;

        let mut app = AppBuilder::new("t");
        let b = app
            .service("leaf")
            .workers(4)
            .protocol(Protocol::Http1)
            .conn_limit(8)
            .build();
        let get = app.endpoint(b, "get", Dist::constant(200.0), vec![Step::work_us(50.0)]);
        let a = app
            .service("front")
            .workers(4)
            .protocol(Protocol::Http1)
            .build();
        let root = app.endpoint(
            a,
            "root",
            Dist::constant(200.0),
            vec![Step::work_us(20.0), Step::call(get, 64.0)],
        );
        let mut cluster = ClusterSpec::xeon_cluster(2, 1);
        // Default provisioning lag (8 s) outlasts this 2 s run.
        cluster.instance_startup = SimDuration::from_millis(500);
        let mut sim = Simulation::new(app.build(), cluster, 7);
        let leaf = ServiceId(0);
        for j in 0..400u64 {
            sim.inject(SimTime::from_millis(j * 5), root, RequestType(0), 128, j);
        }
        // The leaf's machine dies at 500 ms and restarts 300 ms later.
        let machine = sim.instance_machine(sim.instances_of(leaf)[0]);
        sim.install_chaos(&ChaosPlan {
            seed: 3,
            events: vec![ChaosEvent::MachineCrash {
                machine,
                at: SimTime::from_millis(500),
                restart_after: SimDuration::from_millis(300),
                cold_for: SimDuration::ZERO,
            }],
        });
        let mut scr = Scraper::new(SimDuration::from_millis(250));
        let mut expect = Vec::new();
        for step in 1..=8u64 {
            let t = SimTime::from_millis(step * 250);
            sim.advance_to(t);
            if step == 2 {
                // Scale-up racing the crash: joins after startup delay.
                sim.add_instance(leaf);
            }
            scr.tick(&sim, t);
            expect.push(sim.instance_count(leaf) as u64);
        }
        sim.run_until_idle();
        let reg = scr.registry();
        let l = Labels::service(0);
        // Each window reports exactly the Up count at its scrape, through
        // both the join and the crash/restart.
        for (w, &e) in expect.iter().enumerate() {
            assert_eq!(
                reg.window_mean(names::INSTANCES, &l, w).round() as u64,
                e,
                "window {w}"
            );
        }
        assert!(
            expect.iter().any(|&e| e == 0),
            "the crash window must report zero Up leaf instances: {expect:?}"
        );
        assert!(
            *expect.last().unwrap() >= 2,
            "restart + scale-up must both be Up by the end: {expect:?}"
        );
        // The crash reached the app-wide fault gauge.
        let ld = Labels::default();
        assert!((0..expect.len()).any(|w| reg.window_mean(names::INSTANCES_DOWN, &ld, w) > 0.0));
    }

    #[test]
    fn slo_counters_recorded() {
        let (mut sim, root) = tiny();
        for j in 0..50u64 {
            sim.inject(SimTime::from_millis(j * 10), root, RequestType(0), 128, j);
        }
        let slo = Slo::p99(RequestType(0), SimDuration::from_millis(50));
        let mut scr = Scraper::new(SimDuration::from_millis(250)).with_slo(slo);
        sim.run_until_idle();
        scr.flush(&sim);
        let reg = scr.registry();
        let l = Labels::rtype(0);
        let total: u64 = (0..reg.windows())
            .map(|w| reg.window_sum(names::SLO_TOTAL, &l, w))
            .sum();
        assert_eq!(total, 50);
    }
}
