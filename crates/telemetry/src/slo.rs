//! Service-level objectives and multi-window burn-rate alerting.

use dsb_core::RequestType;
use dsb_simcore::SimDuration;

use crate::registry::{names, Labels, Registry};

/// A latency objective for one request type: at least `objective` of
/// completions must finish within `latency`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// The request type the objective covers.
    pub rtype: RequestType,
    /// The latency target.
    pub latency: SimDuration,
    /// Required fraction of completions within target (e.g. `0.99`).
    pub objective: f64,
}

impl Slo {
    /// A p99-style objective: 99 % of `rtype` completions within `latency`.
    pub fn p99(rtype: RequestType, latency: SimDuration) -> Self {
        Slo {
            rtype,
            latency,
            objective: 0.99,
        }
    }

    /// The error budget: the tolerated violating fraction.
    pub fn budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// A multi-window burn-rate rule (the SRE-workbook alert shape): fire
/// when the violation rate burns the error budget at `factor`× or more
/// over *both* a short and a long trailing window. The short window
/// makes alerts recent, the long one makes them persistent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRule {
    /// Short trailing window, in scrape windows.
    pub short: usize,
    /// Long trailing window, in scrape windows.
    pub long: usize,
    /// Burn-rate threshold (1.0 = exactly exhausting the budget).
    pub factor: f64,
}

impl Default for BurnRule {
    fn default() -> Self {
        BurnRule {
            short: 1,
            long: 4,
            factor: 10.0,
        }
    }
}

/// A deterministic SLO alert: a maximal run of scrape windows in which
/// both burn rates stayed at or above the rule's factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Request type whose SLO is burning.
    pub rtype: RequestType,
    /// First scrape window of the violation.
    pub first_window: usize,
    /// Last scrape window of the violation (inclusive).
    pub last_window: usize,
    /// Highest short-window burn rate seen while firing.
    pub peak_short: f64,
    /// Highest long-window burn rate seen while firing.
    pub peak_long: f64,
    /// Completions over SLO target across the alert span.
    pub violations: u64,
    /// Completions measured across the alert span.
    pub total: u64,
}

/// Evaluates one SLO against the scraped `slo_good` / `slo_total`
/// counters, returning coalesced alerts in window order. Walks the whole
/// timeline, so it can run once after a simulation (or incrementally on
/// a growing registry — results for completed windows never change).
pub fn evaluate(reg: &Registry, slo: &Slo, rule: &BurnRule) -> Vec<Alert> {
    let labels = Labels::rtype(slo.rtype.0);
    let n = reg
        .series(names::SLO_TOTAL, &labels)
        .map_or(0, |s| s.window_count());
    let budget = slo.budget();
    let burn_over = |w: usize, wins: usize| -> f64 {
        let from = (w + 1).saturating_sub(wins.max(1));
        let total = reg.range_sum(names::SLO_TOTAL, &labels, from, w + 1);
        let good = reg.range_sum(names::SLO_GOOD, &labels, from, w + 1);
        if total == 0 {
            return 0.0;
        }
        (total.saturating_sub(good) as f64 / total as f64) / budget
    };
    let mut alerts = Vec::new();
    let mut active: Option<Alert> = None;
    for w in 0..n {
        let short = burn_over(w, rule.short);
        let long = burn_over(w, rule.long);
        if short >= rule.factor && long >= rule.factor {
            match &mut active {
                Some(a) => {
                    a.last_window = w;
                    a.peak_short = a.peak_short.max(short);
                    a.peak_long = a.peak_long.max(long);
                }
                None => {
                    active = Some(Alert {
                        rtype: slo.rtype,
                        first_window: w,
                        last_window: w,
                        peak_short: short,
                        peak_long: long,
                        violations: 0,
                        total: 0,
                    })
                }
            }
        } else if let Some(a) = active.take() {
            alerts.push(a);
        }
    }
    alerts.extend(active);
    for a in &mut alerts {
        let (from, to) = (a.first_window, a.last_window + 1);
        a.total = reg.range_sum(names::SLO_TOTAL, &labels, from, to);
        let good = reg.range_sum(names::SLO_GOOD, &labels, from, to);
        a.violations = a.total.saturating_sub(good);
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_simcore::SimTime;

    fn feed(reg: &mut Registry, window: usize, good: u64, total: u64) {
        let at = SimTime::from_millis(window as u64 * 1000 + 500);
        let l = Labels::rtype(0);
        // Cumulative totals: re-derive from what is already recorded.
        let prev_total = reg.range_sum(names::SLO_TOTAL, &l, 0, window);
        let prev_good = reg.range_sum(names::SLO_GOOD, &l, 0, window);
        reg.counter(names::SLO_TOTAL, l, at, prev_total + total);
        reg.counter(names::SLO_GOOD, l, at, prev_good + good);
    }

    fn slo() -> Slo {
        Slo::p99(RequestType(0), SimDuration::from_millis(5))
    }

    #[test]
    fn healthy_run_never_fires() {
        let mut reg = Registry::new(SimDuration::from_secs(1));
        for w in 0..10 {
            feed(&mut reg, w, 100, 100);
        }
        assert!(evaluate(&reg, &slo(), &BurnRule::default()).is_empty());
    }

    #[test]
    fn sustained_violation_fires_and_coalesces() {
        let mut reg = Registry::new(SimDuration::from_secs(1));
        // Two healthy windows, then 50% of requests blow the target.
        for w in 0..2 {
            feed(&mut reg, w, 100, 100);
        }
        for w in 2..8 {
            feed(&mut reg, w, 50, 100);
        }
        let alerts = evaluate(&reg, &slo(), &BurnRule::default());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let a = &alerts[0];
        // Long window (4) still contains healthy windows at w=2; burn
        // crosses 10x once the violation dominates it.
        assert!(a.first_window >= 2 && a.first_window <= 3);
        assert_eq!(a.last_window, 7);
        assert!(a.peak_short >= 49.0, "short {}", a.peak_short);
        assert!(a.violations > 0 && a.violations <= a.total);
    }

    #[test]
    fn brief_blip_below_long_window_does_not_fire() {
        let mut reg = Registry::new(SimDuration::from_secs(1));
        // One bad window in a sea of good ones: the long window dilutes
        // it below the factor (50% of 1 of 4 windows = 12.5x... use a
        // milder blip: 8% violations for one window = 8x short burn).
        for w in 0..8 {
            let good = if w == 4 { 92 } else { 100 };
            feed(&mut reg, w, good, 100);
        }
        assert!(evaluate(&reg, &slo(), &BurnRule::default()).is_empty());
    }

    #[test]
    fn empty_windows_read_as_zero_burn() {
        let mut reg = Registry::new(SimDuration::from_secs(1));
        feed(&mut reg, 0, 0, 0);
        assert!(evaluate(&reg, &slo(), &BurnRule::default()).is_empty());
    }
}
