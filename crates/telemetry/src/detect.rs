//! The detection scorer: joins fired [`Alert`]s and root-cause verdicts
//! against the ground-truth [`ChaosPlan`] that injected the faults, and
//! grades the telemetry plane as a detector.
//!
//! The chaos subsystem turns observability claims into testable ones:
//! the plan knows exactly when each fault started and ended, so every
//! alert is either *explained* by a fault window or a false positive,
//! and every fault either *detected* (some alert overlaps it) or missed.
//! The score reports precision and recall over those joins plus, per
//! detected fault, time-to-detect (fault start → first overlapping
//! alert window) and time-to-recover (fault start → the last window the
//! alert still fired — the measured RTO against that SLO).

use dsb_core::{ChaosPlan, FaultWindow};
use dsb_simcore::{SimDuration, SimTime};

use crate::rootcause::RootCause;
use crate::slo::Alert;

/// One ground-truth fault joined with the alerts that (should) have
/// caught it.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// The injected fault, from [`ChaosPlan::faults`].
    pub fault: FaultWindow,
    /// Whether any alert overlapped the fault's (grace-extended) span.
    pub detected: bool,
    /// First scrape window of the earliest overlapping alert.
    pub detect_window: Option<usize>,
    /// Fault start → start of the earliest overlapping alert window
    /// (zero when the alert was already firing).
    pub time_to_detect: Option<SimDuration>,
    /// Fault start → end of the last overlapping alert window: how long
    /// the SLO kept burning, the measured recovery time against this
    /// objective.
    pub time_to_recover: Option<SimDuration>,
    /// For faults that name a culprit service: whether some overlapping
    /// diagnosis named it — as its chain-walk culprit, or as the top
    /// cache tier in its fault evidence. `None` when the fault carries
    /// no culprit.
    pub culprit_named: Option<bool>,
}

/// The detection scorecard for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionScore {
    /// One entry per injected fault, in fault-start order.
    pub detections: Vec<Detection>,
    /// Alerts that overlap no (grace-extended) fault window.
    pub false_alerts: usize,
    /// Alerts that overlap at least one fault window.
    pub true_alerts: usize,
    /// `true_alerts / (true_alerts + false_alerts)`; 1.0 with no alerts.
    pub precision: f64,
    /// Detected faults / injected faults; 1.0 with no faults.
    pub recall: f64,
}

/// Scores a run: matches every alert against every fault window from
/// `plan`, extending each fault by `grace` past its end — recovery
/// transients (cold caches refilling, queues draining) legitimately keep
/// the SLO burning after the fault itself clears. `interval` is the
/// scrape interval the alert windows are denominated in.
pub fn score(
    plan: &ChaosPlan,
    interval: SimDuration,
    alerts: &[Alert],
    causes: &[RootCause],
    grace: SimDuration,
) -> DetectionScore {
    let faults = plan.faults();
    let span = |a: &Alert| {
        let lo = SimTime::ZERO + interval * a.first_window as u64;
        let hi = SimTime::ZERO + interval * (a.last_window as u64 + 1);
        (lo, hi)
    };
    let overlaps = |a: &Alert, f: &FaultWindow| {
        let (lo, hi) = span(a);
        lo < f.until + grace && hi > f.from
    };

    let mut detections: Vec<Detection> = faults
        .iter()
        .map(|f| {
            let mut hits: Vec<&Alert> = alerts.iter().filter(|a| overlaps(a, f)).collect();
            hits.sort_by_key(|a| a.first_window);
            let first = hits.first().map(|a| span(a).0);
            let last = hits.last().map(|a| span(a).1);
            let culprit_named = f.culprit.map(|c| {
                causes
                    .iter()
                    .filter(|rc| {
                        hits.iter().any(|a| {
                            rc.first_window <= a.last_window && rc.last_window >= a.first_window
                        })
                    })
                    .any(|rc| {
                        rc.culprit == c.0
                            || rc
                                .fault
                                .as_ref()
                                .is_some_and(|ev| ev.refill_top == Some(c.0))
                    })
            });
            Detection {
                fault: f.clone(),
                detected: !hits.is_empty(),
                detect_window: hits.first().map(|a| a.first_window),
                time_to_detect: first.map(|t| t.since(f.from.min(t))),
                time_to_recover: last.map(|t| t.since(f.from.min(t))),
                culprit_named,
            }
        })
        .collect();
    detections.sort_by_key(|d| (d.fault.from, d.fault.label.clone()));

    let true_alerts = alerts
        .iter()
        .filter(|a| faults.iter().any(|f| overlaps(a, f)))
        .count();
    let false_alerts = alerts.len() - true_alerts;
    let precision = if alerts.is_empty() {
        1.0
    } else {
        true_alerts as f64 / alerts.len() as f64
    };
    let detected = detections.iter().filter(|d| d.detected).count();
    let recall = if detections.is_empty() {
        1.0
    } else {
        detected as f64 / detections.len() as f64
    };
    DetectionScore {
        detections,
        false_alerts,
        true_alerts,
        precision,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{ChaosEvent, MachineId, RequestType};

    fn alert(first: usize, last: usize) -> Alert {
        Alert {
            rtype: RequestType(0),
            first_window: first,
            last_window: last,
            peak_short: 20.0,
            peak_long: 20.0,
            violations: 10,
            total: 100,
        }
    }

    fn plan() -> ChaosPlan {
        let mut p = ChaosPlan::empty(7);
        p.events.push(ChaosEvent::MachineCrash {
            machine: MachineId(1),
            at: SimTime::from_millis(500),
            restart_after: SimDuration::from_millis(300),
            cold_for: SimDuration::from_millis(100),
        });
        p
    }

    #[test]
    fn overlapping_alert_detects_the_fault() {
        let interval = SimDuration::from_millis(250);
        // Fault spans 500..800 ms => windows 2..4 (with 250 ms grace).
        let alerts = vec![alert(2, 4)];
        let s = score(&plan(), interval, &alerts, &[], interval);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        let d = &s.detections[0];
        assert!(d.detected);
        assert_eq!(d.detect_window, Some(2));
        // Alert window 2 starts at 500 ms == fault start: detected at 0.
        assert_eq!(d.time_to_detect, Some(SimDuration::ZERO));
        // Alert held through window 4, ending 1250 ms: RTO 750 ms.
        assert_eq!(d.time_to_recover, Some(SimDuration::from_millis(750)));
        assert_eq!(d.culprit_named, None, "machine crash names no culprit");
    }

    #[test]
    fn unrelated_alert_is_a_false_positive() {
        let interval = SimDuration::from_millis(250);
        let alerts = vec![alert(20, 21)];
        let s = score(&plan(), interval, &alerts, &[], SimDuration::ZERO);
        assert_eq!(s.false_alerts, 1);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0, "the fault went undetected");
        assert!(!s.detections[0].detected);
    }

    #[test]
    fn no_faults_no_alerts_is_a_perfect_score() {
        let s = score(
            &ChaosPlan::empty(1),
            SimDuration::from_millis(250),
            &[],
            &[],
            SimDuration::ZERO,
        );
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert!(s.detections.is_empty());
    }
}
