//! Core models: brawny out-of-order vs wimpy in-order, frequency scaling,
//! and the analytic top-down cycle breakdown.

use crate::profile::UarchProfile;

/// The pipeline organization of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Wide out-of-order core (Xeon-class): overlaps memory stalls.
    BrawnyOoO,
    /// Narrow in-order core (Cavium ThunderX-class): exposed stalls.
    WimpyInOrder,
}

/// A top-down cycle breakdown, as fractions that sum to 1 (Fig. 10's
/// stacked bars), plus the resulting IPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleBreakdown {
    /// Front-end bound fraction (fetch stalls, i-cache misses).
    pub frontend: f64,
    /// Bad-speculation fraction (branch mispredictions).
    pub bad_spec: f64,
    /// Back-end bound fraction (data-memory and execution stalls).
    pub backend: f64,
    /// Retiring fraction (useful work).
    pub retiring: f64,
    /// Instructions per cycle implied by the breakdown.
    pub ipc: f64,
}

impl CycleBreakdown {
    /// Sanity helper: the four fractions, in Fig. 10's stacking order.
    pub fn fractions(&self) -> [f64; 4] {
        [self.frontend, self.bad_spec, self.backend, self.retiring]
    }
}

/// A processor core: kind, issue width, frequency, and stall penalties.
///
/// The model computes cycles-per-kilo-instruction (CPKI) as
/// `base + frontend + bad-speculation + backend` where each stall term is
/// `MPKI × penalty`, with back-end penalties partially hidden on
/// out-of-order cores (`mem_overlap`). Dividing demand expressed in
/// *reference-core nanoseconds* by [`CoreModel::speed_factor`] turns the
/// same handler into its latency on any core at any frequency — which is
/// how the RAPL (Fig. 12) and ThunderX (Fig. 13) experiments run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreModel {
    /// Pipeline organization.
    pub kind: CoreKind,
    /// Issue width (caps achievable IPC).
    pub width: f64,
    /// Operating frequency in GHz.
    pub freq_ghz: f64,
    /// Nominal (design) frequency in GHz; RAPL lowers `freq_ghz` below it.
    pub nominal_ghz: f64,
    /// Fraction of memory-stall cycles hidden by out-of-order execution.
    pub mem_overlap: f64,
    /// L1-i miss penalty, cycles.
    pub l1i_penalty: f64,
    /// L2 hit-after-L1-miss penalty, cycles.
    pub l2_penalty: f64,
    /// DRAM access penalty, cycles.
    pub mem_penalty: f64,
    /// Branch misprediction penalty, cycles.
    pub branch_penalty: f64,
    /// D-TLB miss penalty, cycles.
    pub dtlb_penalty: f64,
}

impl CoreModel {
    /// The reference server core: Intel Xeon-class, 4-wide OoO at 2.4 GHz
    /// (between the paper's E5-2660 v3 and E5-2699 v4 clusters).
    pub fn xeon() -> Self {
        CoreModel {
            kind: CoreKind::BrawnyOoO,
            width: 4.0,
            freq_ghz: 2.4,
            nominal_ghz: 2.4,
            mem_overlap: 0.55,
            l1i_penalty: 14.0,
            l2_penalty: 12.0,
            mem_penalty: 120.0,
            branch_penalty: 16.0,
            dtlb_penalty: 30.0,
        }
    }

    /// A Cavium ThunderX-class core: 2-wide in-order at 1.8 GHz. In-order
    /// execution exposes memory stalls (`mem_overlap = 0`).
    pub fn thunderx() -> Self {
        CoreModel {
            kind: CoreKind::WimpyInOrder,
            width: 2.0,
            freq_ghz: 1.8,
            nominal_ghz: 1.8,
            mem_overlap: 0.0,
            l1i_penalty: 20.0,
            l2_penalty: 20.0,
            mem_penalty: 150.0,
            branch_penalty: 8.0,
            dtlb_penalty: 40.0,
        }
    }

    /// Returns a copy clocked at `ghz` (models RAPL frequency scaling).
    pub fn at_frequency(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        self.freq_ghz = ghz;
        self
    }

    /// Cycles per kilo-instruction for the given instruction stream,
    /// split into (base, frontend, bad-spec, backend).
    fn cpki_terms(&self, p: &UarchProfile) -> (f64, f64, f64, f64) {
        let ipc_ideal = p.ilp.min(self.width);
        let base = 1000.0 / ipc_ideal;
        let frontend = p.l1i_mpki * self.l1i_penalty;
        let bad_spec = p.branch_mpki * self.branch_penalty;
        let hidden = match self.kind {
            CoreKind::BrawnyOoO => 1.0 - self.mem_overlap,
            CoreKind::WimpyInOrder => 1.0,
        };
        let backend = hidden
            * (p.l2_mpki * self.l2_penalty
                + p.llc_mpki * self.mem_penalty
                + p.dtlb_mpki * self.dtlb_penalty);
        (base, frontend, bad_spec, backend)
    }

    /// The top-down cycle breakdown and IPC of `p` on this core.
    ///
    /// Fractions are over *issue slots* (`width × cycles`), the proper
    /// top-down denominator: retiring is `IPC / width`; cycles in which the
    /// pipeline issues below width due to limited ILP are charged to the
    /// back-end (core-bound), as vTune does.
    pub fn breakdown(&self, p: &UarchProfile) -> CycleBreakdown {
        let (base, fe, bs, be) = self.cpki_terms(p);
        let total_cycles = base + fe + bs + be;
        let slots = total_cycles * self.width;
        let retiring = 1000.0 / slots;
        let frontend = fe / total_cycles;
        let bad_spec = bs / total_cycles;
        let backend = (be + base - 1000.0 / self.width) / total_cycles;
        CycleBreakdown {
            frontend,
            bad_spec,
            backend,
            retiring,
            ipc: 1000.0 / total_cycles,
        }
    }

    /// Instructions per cycle of `p` on this core.
    pub fn ipc(&self, p: &UarchProfile) -> f64 {
        self.breakdown(p).ipc
    }

    /// Wall-clock time multiplier for running `p` on this core, relative
    /// to the same work on the reference core ([`CoreModel::xeon`] at its
    /// nominal frequency). 1.0 on the reference; > 1 means slower.
    pub fn speed_factor(&self, p: &UarchProfile) -> f64 {
        let reference = CoreModel::xeon();
        let t_self = self.time_per_kilo_instruction_ns(p);
        let t_ref = reference.time_per_kilo_instruction_ns(p);
        t_self / t_ref
    }

    /// Nanoseconds to execute one kilo-instruction of `p` on this core.
    pub fn time_per_kilo_instruction_ns(&self, p: &UarchProfile) -> f64 {
        let (base, fe, bs, be) = self.cpki_terms(p);
        (base + fe + bs + be) / self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let c = CoreModel::xeon();
        for p in [
            UarchProfile::microservice_default(),
            UarchProfile::monolith(),
            UarchProfile::search(),
            UarchProfile::recommender(),
        ] {
            let b = c.breakdown(&p);
            let sum: f64 = b.fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{p:?} sums to {sum}");
        }
    }

    #[test]
    fn search_has_high_ipc_recommender_low() {
        // Paper: Search (xapian) retires most instructions & high IPC;
        // the recommender's IPC is extremely low.
        let c = CoreModel::xeon();
        let search = c.ipc(&UarchProfile::search());
        let recommender = c.ipc(&UarchProfile::recommender());
        let typical = c.ipc(&UarchProfile::microservice_default());
        assert!(search > typical, "search {search} vs typical {typical}");
        assert!(recommender < typical * 0.7, "recommender {recommender}");
        assert!(search > 2.0 * recommender);
    }

    #[test]
    fn monolith_more_frontend_bound_than_microservice() {
        let c = CoreModel::xeon();
        let mono = c.breakdown(&UarchProfile::monolith());
        let micro = c.breakdown(&UarchProfile::microservice_default());
        assert!(mono.frontend > micro.frontend);
    }

    #[test]
    fn retiring_fraction_is_minority_for_microservices() {
        // Paper: ~21% retiring on average for Social Network.
        let c = CoreModel::xeon();
        let b = c.breakdown(&UarchProfile::microservice_default());
        assert!(b.retiring < 0.5, "retiring {}", b.retiring);
    }

    #[test]
    fn reference_speed_factor_is_one() {
        let p = UarchProfile::microservice_default();
        assert!((CoreModel::xeon().speed_factor(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_scaling_slows_proportionally() {
        let p = UarchProfile::nginx();
        let full = CoreModel::xeon();
        let half = CoreModel::xeon().at_frequency(1.2);
        let ratio = half.speed_factor(&p) / full.speed_factor(&p);
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn thunderx_slower_than_xeon_even_at_equal_frequency() {
        let p = UarchProfile::microservice_default();
        let xeon18 = CoreModel::xeon().at_frequency(1.8);
        let tx = CoreModel::thunderx();
        assert!(
            tx.speed_factor(&p) > xeon18.speed_factor(&p),
            "in-order core must be slower at equal clocks"
        );
    }

    #[test]
    fn memory_bound_code_suffers_more_in_order() {
        // In-order penalty is largest for memory-bound code (no overlap).
        let tx = CoreModel::thunderx();
        let xeon = CoreModel::xeon().at_frequency(1.8);
        let mem_bound = UarchProfile::recommender();
        let compute_bound = UarchProfile::search();
        let penalty_mem = tx.speed_factor(&mem_bound) / xeon.speed_factor(&mem_bound);
        let penalty_cpu = tx.speed_factor(&compute_bound) / xeon.speed_factor(&compute_bound);
        assert!(
            penalty_mem > penalty_cpu,
            "mem {penalty_mem} vs cpu {penalty_cpu}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_frequency_panics() {
        let _ = CoreModel::xeon().at_frequency(0.0);
    }
}
