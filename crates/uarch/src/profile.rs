//! Per-service microarchitectural profiles and execution domains.

/// Where cycles are spent, from the OS-accounting perspective of Fig. 14.
///
/// Every compute step in a behaviour script is tagged with a domain so that
/// kernel/user/library shares fall out of ordinary accounting. Network
/// (TCP/RPC) processing is charged to [`ExecDomain::Kernel`] like the paper
/// observes for interrupt handling and TCP processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecDomain {
    /// Kernel mode: interrupts, TCP processing, scheduling.
    Kernel,
    /// Application code proper.
    User,
    /// Shared libraries (libc, libstdc++, language runtimes, Thrift).
    Libs,
    /// Anything else (JITs, VDSO, …).
    Other,
}

impl ExecDomain {
    /// All domains, in the order the paper's Fig. 14 stacks them.
    pub const ALL: [ExecDomain; 4] = [
        ExecDomain::Kernel,
        ExecDomain::User,
        ExecDomain::Libs,
        ExecDomain::Other,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecDomain::Kernel => "OS",
            ExecDomain::User => "User",
            ExecDomain::Libs => "Libs",
            ExecDomain::Other => "Other",
        }
    }

    /// Dense index for array-backed accounting.
    pub fn index(self) -> usize {
        match self {
            ExecDomain::Kernel => 0,
            ExecDomain::User => 1,
            ExecDomain::Libs => 2,
            ExecDomain::Other => 3,
        }
    }
}

/// Microarchitectural characteristics of one service's instruction stream.
///
/// Miss rates are expressed per kilo-instruction (MPKI), matching how the
/// paper reports them; `ilp` is the inherent instruction-level parallelism
/// the code exposes (the IPC it would achieve on a perfect front-end and
/// memory system, capped by the core's issue width).
///
/// Constructors provide calibrated presets for the service archetypes that
/// appear across the suite; applications tweak them per tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UarchProfile {
    /// L1 instruction-cache misses per kilo-instruction (Fig. 11's metric).
    pub l1i_mpki: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Last-level-cache misses per kilo-instruction (DRAM accesses).
    pub llc_mpki: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch_mpki: f64,
    /// Data-TLB misses per kilo-instruction.
    pub dtlb_mpki: f64,
    /// Inherent ILP of the code (ideal IPC on an unconstrained core).
    pub ilp: f64,
}

impl UarchProfile {
    /// A typical single-concern microservice: small code footprint, hence
    /// modest i-cache pressure (the paper's central µarch observation).
    pub fn microservice_default() -> Self {
        UarchProfile {
            l1i_mpki: 12.0,
            l2_mpki: 4.0,
            llc_mpki: 0.8,
            branch_mpki: 3.0,
            dtlb_mpki: 0.6,
            ilp: 2.2,
        }
    }

    /// A monolithic binary containing the whole application: large code
    /// footprint, heavy i-cache pressure (Fig. 11 shows the monolith worst).
    pub fn monolith() -> Self {
        UarchProfile {
            l1i_mpki: 68.0,
            l2_mpki: 12.0,
            llc_mpki: 1.6,
            branch_mpki: 6.5,
            dtlb_mpki: 1.8,
            ilp: 2.0,
        }
    }

    /// nginx-style event-driven web server / load balancer.
    pub fn nginx() -> Self {
        UarchProfile {
            l1i_mpki: 32.0,
            l2_mpki: 7.0,
            llc_mpki: 1.0,
            branch_mpki: 5.0,
            dtlb_mpki: 1.0,
            ilp: 2.1,
        }
    }

    /// memcached-style in-memory key-value store: kernel-heavy, moderate
    /// i-cache pressure, data-dependent loads.
    pub fn memcached() -> Self {
        UarchProfile {
            l1i_mpki: 30.0,
            l2_mpki: 9.0,
            llc_mpki: 2.2,
            branch_mpki: 4.0,
            dtlb_mpki: 2.0,
            ilp: 1.8,
        }
    }

    /// MongoDB-style persistent store: large binary, I/O bound.
    pub fn mongodb() -> Self {
        UarchProfile {
            l1i_mpki: 38.0,
            l2_mpki: 10.0,
            llc_mpki: 2.8,
            branch_mpki: 5.5,
            dtlb_mpki: 2.4,
            ilp: 1.7,
        }
    }

    /// Xapian-style search: optimized for memory locality, small hot loop —
    /// the paper calls out its high IPC and few front-end stalls.
    pub fn search() -> Self {
        UarchProfile {
            l1i_mpki: 4.0,
            l2_mpki: 2.0,
            llc_mpki: 0.5,
            branch_mpki: 1.5,
            dtlb_mpki: 0.4,
            ilp: 3.0,
        }
    }

    /// ML recommender: extremely low IPC, memory-bound dense/sparse math
    /// (the paper notes its IPC is the lowest in E-commerce).
    pub fn recommender() -> Self {
        UarchProfile {
            l1i_mpki: 3.0,
            l2_mpki: 18.0,
            llc_mpki: 9.0,
            branch_mpki: 1.0,
            dtlb_mpki: 3.5,
            ilp: 1.4,
        }
    }

    /// A trivially simple microservice (e.g. wishlist): negligible i-cache
    /// misses.
    pub fn tiny_service() -> Self {
        UarchProfile {
            l1i_mpki: 1.5,
            l2_mpki: 1.0,
            llc_mpki: 0.3,
            branch_mpki: 1.0,
            dtlb_mpki: 0.2,
            ilp: 2.6,
        }
    }

    /// Managed-runtime service (JVM/node.js): larger footprint than native
    /// microservices, more indirect branches.
    pub fn managed_runtime() -> Self {
        UarchProfile {
            l1i_mpki: 18.0,
            l2_mpki: 6.0,
            llc_mpki: 1.2,
            branch_mpki: 5.0,
            dtlb_mpki: 1.0,
            ilp: 1.9,
        }
    }

    /// Computer-vision kernel (image recognition): data-crunching loop with
    /// good locality and high ILP.
    pub fn vision() -> Self {
        UarchProfile {
            l1i_mpki: 2.0,
            l2_mpki: 6.0,
            llc_mpki: 2.5,
            branch_mpki: 0.8,
            dtlb_mpki: 0.8,
            ilp: 2.8,
        }
    }

    /// Returns a copy with a different L1-i MPKI (for sweeps/ablations).
    pub fn with_l1i_mpki(mut self, mpki: f64) -> Self {
        self.l1i_mpki = mpki;
        self
    }

    /// Returns a copy with a different inherent ILP.
    pub fn with_ilp(mut self, ilp: f64) -> Self {
        self.ilp = ilp;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monolith_has_most_icache_pressure() {
        let presets = [
            UarchProfile::microservice_default(),
            UarchProfile::nginx(),
            UarchProfile::memcached(),
            UarchProfile::mongodb(),
            UarchProfile::search(),
            UarchProfile::recommender(),
            UarchProfile::tiny_service(),
            UarchProfile::managed_runtime(),
            UarchProfile::vision(),
        ];
        let mono = UarchProfile::monolith();
        for p in presets {
            assert!(mono.l1i_mpki > p.l1i_mpki, "monolith must dominate {p:?}");
        }
    }

    #[test]
    fn microservices_below_traditional_cloud_apps() {
        // The paper: microservice i-cache pressure is "considerably lower"
        // than nginx/memcached/mongodb.
        let micro = UarchProfile::microservice_default();
        assert!(micro.l1i_mpki < UarchProfile::nginx().l1i_mpki);
        assert!(micro.l1i_mpki < UarchProfile::memcached().l1i_mpki);
        assert!(micro.l1i_mpki < UarchProfile::mongodb().l1i_mpki);
    }

    #[test]
    fn domain_indices_dense_and_distinct() {
        let mut seen = [false; 4];
        for d in ExecDomain::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
            assert!(!d.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn builders_modify_fields() {
        let p = UarchProfile::search().with_l1i_mpki(9.0).with_ilp(1.1);
        assert_eq!(p.l1i_mpki, 9.0);
        assert_eq!(p.ilp, 1.1);
    }
}
