//! # dsb-uarch — microarchitectural model
//!
//! The paper characterizes each microservice with Intel vTune: top-down
//! cycle breakdowns and IPC (Fig. 10), L1-i MPKI (Fig. 11), and sensitivity
//! to frequency scaling (Fig. 12) and to wimpy in-order cores (Fig. 13).
//! We have no vTune and no ThunderX, so this crate substitutes an
//! *analytic top-down model*: every service carries a [`UarchProfile`]
//! (cache/branch miss rates and inherent ILP, calibrated to the ranges the
//! paper reports), and a [`CoreModel`] turns a profile into a
//! [`CycleBreakdown`], an IPC, and a relative speed factor.
//!
//! The causal chain the paper highlights — *small per-service code
//! footprints → low i-cache pressure → fewer front-end stalls than
//! monoliths; yet strict per-tier latency targets → high sensitivity to
//! single-thread performance* — is expressed directly: profiles with low
//! `l1i_mpki` yield fewer front-end stall cycles, and service times scale
//! as `1 / (IPC × frequency)`.
//!
//! # Example
//!
//! ```
//! use dsb_uarch::{CoreModel, UarchProfile};
//!
//! let xeon = CoreModel::xeon();
//! let thunderx = CoreModel::thunderx();
//! let svc = UarchProfile::microservice_default();
//!
//! let b = xeon.breakdown(&svc);
//! assert!(b.frontend > 0.15); // front-end stalls dominate cloud services
//!
//! // The wimpy in-order core is slower for the same work:
//! assert!(thunderx.speed_factor(&svc) > xeon.speed_factor(&svc));
//! ```

#![warn(missing_docs)]

mod core_model;
mod profile;

pub use core_model::{CoreKind, CoreModel, CycleBreakdown};
pub use profile::{ExecDomain, UarchProfile};
