//! # dsb-simcore — deterministic discrete-event simulation engine
//!
//! The foundation of the DeathStarBench-sim workspace: a minimal,
//! fully-deterministic discrete-event simulation (DES) kernel plus the
//! numeric utilities every substrate shares.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`Scheduler`] and the [`Model`] trait — a typed event loop. Models
//!   define one event enum; events at equal timestamps are delivered in
//!   schedule order, so runs are bit-for-bit reproducible.
//! * [`Rng`] — a seeded xoshiro256++ generator with stream splitting. We
//!   implement our own generator (rather than depending on `rand`'s stream
//!   stability) because experiments must replay identically forever.
//! * [`Dist`] — service-time / size distributions (constant, uniform,
//!   exponential, Erlang, log-normal, bounded Pareto, mixtures).
//! * [`Zipf`] — skewed popularity sampling.
//! * [`Histogram`], [`WindowedSeries`], [`MeanVar`], [`Counter`] — latency
//!   and utilization metrics with quantile extraction.
//!
//! # Example
//!
//! ```
//! use dsb_simcore::{Model, Scheduler, SimDuration, SimTime};
//!
//! struct Pinger {
//!     bounces: u32,
//! }
//!
//! enum Ev {
//!     Ping,
//! }
//!
//! impl Model for Pinger {
//!     type Event = Ev;
//!     fn handle(&mut self, sched: &mut Scheduler<Ev>, _ev: Ev) {
//!         self.bounces += 1;
//!         if self.bounces < 10 {
//!             sched.schedule_in(SimDuration::from_micros(5), Ev::Ping);
//!         }
//!     }
//! }
//!
//! let mut sched = Scheduler::new(42);
//! sched.schedule_at(SimTime::ZERO, Ev::Ping);
//! let mut model = Pinger { bounces: 0 };
//! sched.run(&mut model);
//! assert_eq!(model.bounces, 10);
//! assert_eq!(sched.now(), SimTime::from_micros(45));
//! ```

#![warn(missing_docs)]

mod dist;
mod engine;
pub mod epoch;
mod metrics;
mod rng;
mod series;
mod time;

pub use dist::{Dist, Zipf};
pub use engine::{Model, Scheduler};
pub use epoch::{run_epochs, EpochShard, Outbox, Transfer};
pub use metrics::{Counter, Histogram, MeanVar};
pub use rng::{mix64, Rng};
pub use series::{UtilizationTracker, WindowedSeries};
pub use time::{SimDuration, SimTime};
