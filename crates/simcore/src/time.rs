//! Virtual time for the simulation: [`SimTime`] instants and
//! [`SimDuration`] spans, both with nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual simulation time, in nanoseconds since the start of
/// the run.
///
/// `SimTime` is a newtype over `u64`; arithmetic with [`SimDuration`]
/// saturates in both directions: underflow clamps to [`SimTime::ZERO`] and
/// overflow clamps to [`SimTime::MAX`]. `MAX` doubles as the event queue's
/// far-future sentinel, so an oversized delay schedules an event at the end
/// of time instead of wrapping into the past and corrupting event order.
///
/// # Example
///
/// ```
/// use dsb_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::from_millis(3) + SimDuration::from_micros(250);
/// assert_eq!(t.as_nanos(), 3_250_000);
/// assert_eq!(format!("{t}"), "3.250ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
///
/// The simulation measures all latencies, service times and network delays
/// as `SimDuration`s. Construct them from seconds, milliseconds, microseconds
/// or nanoseconds; convert to floating-point seconds/millis for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant, used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from floating-point seconds (rounded to ns).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e9).round().max(0.0) as u64)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the origin, as floating point.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from floating-point seconds (rounded to ns, clamped
    /// to non-negative).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round().max(0.0) as u64)
    }

    /// Creates a span from floating-point milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms * 1e6).round().max(0.0) as u64)
    }

    /// Creates a span from floating-point microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1e3).round().max(0.0) as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span in floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span in floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // Saturating: `SimTime::MAX` is the scheduler's overflow sentinel
        // (delivered last, at the end of time). A wrapping add here would
        // send the event into the past; a panicking one would make huge
        // timeouts (e.g. `SimDuration::MAX` as "never") unusable.
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(500);
        assert_eq!((t + d).as_nanos(), 1_500_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t - SimDuration::from_secs(5), SimTime::ZERO);
        assert_eq!((d * 3).as_millis_f64(), 1500.0);
        assert_eq!((d / 2).as_millis_f64(), 250.0);
    }

    #[test]
    fn add_saturates_at_max() {
        // Overflow clamps to the MAX sentinel instead of wrapping/panicking.
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimDuration::MAX, SimTime::MAX);
        assert_eq!(SimTime::from_nanos(1) + SimDuration::MAX, SimTime::MAX);
        // The exact boundary is still representable without saturating.
        assert_eq!(
            SimTime::from_nanos(u64::MAX - 1) + SimDuration::from_nanos(1),
            SimTime::MAX
        );
        let mut t = SimTime::from_nanos(u64::MAX - 5);
        t += SimDuration::from_nanos(3);
        assert_eq!(t.as_nanos(), u64::MAX - 2);
        t += SimDuration::from_nanos(100);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), SimDuration::from_secs(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn float_conversions_round() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(0.5).as_nanos(), 500_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime::from_secs_f64(2.25).as_nanos(), 2_250_000_000);
    }
}
