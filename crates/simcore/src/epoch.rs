//! Conservative epoch-synchronized parallel driver for sharded models.
//!
//! A parallel run partitions the simulated world into *shards* that
//! share no mutable state. Each shard owns its own event queue (a
//! [`Scheduler`](crate::Scheduler)) and advances through bounded
//! *windows*: if the earliest pending event anywhere in the cluster is
//! at `m`, every shard may safely process events up to and including
//! `m + L - 1`, where `L` — the *lookahead* — is a lower bound on the
//! latency of any cross-shard interaction. A message sent by a shard at
//! time `t` arrives no earlier than `t + L`, i.e. never inside the
//! window that produced it, so shards cannot observe each other
//! mid-window and any execution order within a window yields the same
//! per-shard state. This is the classic conservative (CMB-style)
//! synchronization protocol; the static analyzer's DSB015 lookahead
//! certificates prove per-app `L` bounds ahead of time.
//!
//! # Determinism
//!
//! Cross-shard transfers carry a `(time, key)` pair minted on the
//! *sender* (see [`Scheduler::mint_key`](crate::Scheduler::mint_key)):
//! the receiver inserts them verbatim, so its pop order — ascending
//! `(time, key)` — is independent of worker count, barrier timing, and
//! mailbox arrival order. Batches are sorted before absorption, and
//! keys are globally unique (each shard's key space carries its shard
//! index in the upper bits), making the sort a total order. The result:
//! a run with 8 workers is byte-identical to the same run with 1.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// A cross-shard message batch entry: `(arrival_ns, tie_break_key, payload)`.
pub type Transfer<T> = (u64, u64, T);

/// Per-destination staging buffers a shard fills while running a window.
///
/// One bin per destination shard; the driver deposits non-empty bins
/// into the epoch mailbox at the window boundary. Bins keep their
/// capacity across epochs, so steady-state sends do not allocate.
pub struct Outbox<T> {
    bins: Vec<Vec<Transfer<T>>>,
}

impl<T> Outbox<T> {
    /// Creates an outbox with one bin per destination shard.
    pub fn new(shards: usize) -> Self {
        Outbox {
            bins: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    /// Stages `payload` for arrival at `at` on shard `dst`, under the
    /// sender-minted tie-break `key`.
    #[inline]
    pub fn send(&mut self, dst: usize, at: u64, key: u64, payload: T) {
        self.bins[dst].push((at, key, payload));
    }

    /// True if no transfer is staged.
    pub fn is_empty(&self) -> bool {
        self.bins.iter().all(Vec::is_empty)
    }
}

/// One partition of a sharded model, drivable by [`run_epochs`].
///
/// `C` is the read-only context shared by all shards during a run
/// (specs, caches, network topology — anything no shard mutates).
pub trait EpochShard<C: ?Sized>: Send {
    /// Payload type of cross-shard transfers.
    type Transfer: Send;

    /// Timestamp (ns) of this shard's earliest pending event, or `None`
    /// if its queue is empty. `&mut` because peeking a timing wheel may
    /// cascade levels.
    fn next_event_at(&mut self) -> Option<u64>;

    /// Processes every pending event with timestamp `<= last`
    /// (inclusive), staging cross-shard sends in `out`. Events
    /// scheduled during the window that still fall inside it must also
    /// be processed — i.e. drain until the queue head is past `last`.
    fn run_window(&mut self, ctx: &C, last: u64, out: &mut Outbox<Self::Transfer>);

    /// Accepts a batch of inbound transfers, sorted ascending by
    /// `(time, key)`. Every arrival time is beyond the window the batch
    /// was produced in, so scheduling them cannot move this shard's
    /// clock backwards.
    fn absorb(&mut self, batch: Vec<Transfer<Self::Transfer>>);
}

/// A sense-reversing spin barrier for a fixed set of worker threads.
///
/// Spins briefly, then falls back to [`std::thread::yield_now`]: epoch
/// workers are frequently co-scheduled on fewer cores than threads
/// (CI machines, laptops), where pure spinning would burn whole
/// scheduler quanta waiting for a thread that cannot run.
struct SpinBarrier {
    count: AtomicU32,
    sense: AtomicU32,
    n: u32,
}

impl SpinBarrier {
    fn new(n: u32) -> Self {
        SpinBarrier {
            count: AtomicU32::new(0),
            sense: AtomicU32::new(0),
            n,
        }
    }

    /// Blocks until all `n` workers have arrived. `local_sense` is the
    /// caller's thread-local phase bit, flipped on every crossing.
    fn wait(&self, local_sense: &mut u32) {
        *local_sense ^= 1;
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arrival: reset the counter for the next crossing,
            // then release everyone. The counter reset is safe before
            // the sense flip because no thread re-enters `wait` until
            // it has observed the flip.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(*local_sense, Ordering::Release);
        } else {
            let mut spins: u32 = 0;
            while self.sense.load(Ordering::Acquire) != *local_sense {
                spins = spins.wrapping_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Shared per-epoch coordination state. Window minima and the
/// any-events flags are double-buffered by epoch parity so workers can
/// publish epoch `e + 1` values while stragglers still read epoch `e`.
struct EpochSync {
    barrier: SpinBarrier,
    /// Global minimum event time, one slot per epoch parity.
    mins: [AtomicU64; 2],
    /// Whether any shard has pending events, one per epoch parity
    /// (`u64::MAX` is a valid event time — the far-future saturation
    /// sentinel — so emptiness needs its own flag).
    any: [AtomicU32; 2],
}

/// The epoch mailbox: one cell per destination shard. Senders append
/// under the lock during the run phase; the owner drains after the
/// epoch barrier. Append order is scheduling-irrelevant because the
/// batch is sorted by `(time, key)` before absorption and keys are
/// globally unique.
type Mailbox<T> = Vec<Mutex<Vec<Transfer<T>>>>;

/// Drives `shards` forward until every queue is empty or the earliest
/// pending event is past `until_ns` (inclusive bound), exchanging
/// cross-shard transfers at epoch boundaries.
///
/// `lookahead_ns` must be a positive lower bound on every cross-shard
/// latency: a transfer staged at time `t` must arrive at `t +
/// lookahead_ns` or later. `workers <= 1` runs the same epoch protocol
/// inline on the calling thread; `workers >= 2` fans the shards out
/// round-robin (shard `i` to worker `i % workers`) over that many OS
/// threads. The per-shard event sequence — and therefore every
/// observable result — is identical for every worker count.
///
/// # Panics
///
/// Panics if `lookahead_ns` is zero.
pub fn run_epochs<C, S>(ctx: &C, shards: &mut [S], lookahead_ns: u64, until_ns: u64, workers: usize)
where
    C: Sync + ?Sized,
    S: EpochShard<C>,
{
    assert!(lookahead_ns > 0, "lookahead must be positive");
    if shards.is_empty() {
        return;
    }
    let workers = workers.clamp(1, shards.len());
    if workers <= 1 {
        run_epochs_inline(ctx, shards, lookahead_ns, until_ns);
    } else {
        pool::run_epochs_threaded(ctx, shards, lookahead_ns, until_ns, workers);
    }
}

/// The window end (inclusive) every shard may run to when the global
/// minimum pending event is at `start`.
#[inline]
fn window_last(start: u64, lookahead_ns: u64, until_ns: u64) -> u64 {
    start.saturating_add(lookahead_ns - 1).min(until_ns)
}

/// Single-threaded epoch loop: same protocol, no barriers. This is the
/// `workers <= 1` path of [`run_epochs`], and it lets the property
/// suite differentially test the epoch protocol itself (not just its
/// threaded execution) against a flat single-queue reference.
fn run_epochs_inline<C, S>(ctx: &C, shards: &mut [S], lookahead_ns: u64, until_ns: u64)
where
    C: ?Sized,
    S: EpochShard<C>,
{
    let n = shards.len();
    let mut out = Outbox::new(n);
    let mut staged: Vec<Vec<Transfer<S::Transfer>>> = (0..n).map(|_| Vec::new()).collect();
    loop {
        let mut start = u64::MAX;
        let mut any = false;
        for s in shards.iter_mut() {
            if let Some(at) = s.next_event_at() {
                any = true;
                start = start.min(at);
            }
        }
        if !any || start > until_ns {
            return;
        }
        let last = window_last(start, lookahead_ns, until_ns);
        for (i, s) in shards.iter_mut().enumerate() {
            s.run_window(ctx, last, &mut out);
            for (dst, bin) in out.bins.iter_mut().enumerate() {
                debug_assert!(
                    dst != i || bin.is_empty(),
                    "shard staged a transfer to itself"
                );
                staged[dst].append(bin);
            }
        }
        for (dst, batch) in staged.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut batch = std::mem::take(batch);
            batch.sort_unstable_by_key(|&(at, key, _)| (at, key));
            debug_assert!(batch.iter().all(|&(at, _, _)| at > last));
            shards[dst].absorb(batch);
        }
    }
}

/// The threaded epoch driver. Kept in its own module so the
/// workspace's sanctioned-concurrency allowlist (`dsb-lint` DSB014)
/// can scope its thread-pool exemption to exactly this code.
mod pool {
    use super::*;

    pub(super) fn run_epochs_threaded<C, S>(
        ctx: &C,
        shards: &mut [S],
        lookahead_ns: u64,
        until_ns: u64,
        workers: usize,
    ) where
        C: Sync + ?Sized,
        S: EpochShard<C>,
    {
        let n = shards.len();
        let sync = EpochSync {
            barrier: SpinBarrier::new(workers as u32),
            mins: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            any: [AtomicU32::new(0), AtomicU32::new(0)],
        };
        let mailbox: Mailbox<S::Transfer> = (0..n).map(|_| Mutex::new(Vec::new())).collect();

        // Deal the shards round-robin: worker w owns shards w, w + W,
        // w + 2W, … Ownership is exclusive, so each worker takes `&mut`
        // to its own subset.
        let mut lanes: Vec<Vec<(usize, &mut S)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, s) in shards.iter_mut().enumerate() {
            lanes[i % workers].push((i, s));
        }

        std::thread::scope(|scope| {
            for (w, lane) in lanes.into_iter().enumerate() {
                let sync = &sync;
                let mailbox = &mailbox;
                scope.spawn(move || {
                    worker_loop(ctx, sync, mailbox, lane, w == 0, lookahead_ns, until_ns)
                });
            }
        });
    }

    fn worker_loop<C, S>(
        ctx: &C,
        sync: &EpochSync,
        mailbox: &Mailbox<S::Transfer>,
        mut lane: Vec<(usize, &mut S)>,
        leader: bool,
        lookahead_ns: u64,
        until_ns: u64,
    ) where
        C: ?Sized,
        S: EpochShard<C>,
    {
        let n = mailbox.len();
        let mut out = Outbox::new(n);
        let mut sense: u32 = 0;
        let mut epoch: usize = 0;
        loop {
            // Phase 1: publish the minimum over owned shards into this
            // epoch's parity slot.
            let slot = epoch & 1;
            let mut local_min = u64::MAX;
            let mut local_any = false;
            for (_, s) in lane.iter_mut() {
                if let Some(at) = s.next_event_at() {
                    local_any = true;
                    local_min = local_min.min(at);
                }
            }
            sync.mins[slot].fetch_min(local_min, Ordering::AcqRel);
            if local_any {
                sync.any[slot].store(1, Ordering::Release);
            }
            sync.barrier.wait(&mut sense);

            // Phase 2: everyone reads the same window, so termination
            // is unanimous. The leader resets the *other* parity slot
            // for the epoch after next — safe here because every worker
            // finished reading that slot before arriving at the phase-1
            // barrier above.
            let start = sync.mins[slot].load(Ordering::Acquire);
            let any = sync.any[slot].load(Ordering::Acquire) != 0;
            if leader {
                sync.mins[slot ^ 1].store(u64::MAX, Ordering::Release);
                sync.any[slot ^ 1].store(0, Ordering::Release);
            }
            if !any || start > until_ns {
                return;
            }
            let last = window_last(start, lookahead_ns, until_ns);
            for (i, s) in lane.iter_mut() {
                s.run_window(ctx, last, &mut out);
                for (dst, bin) in out.bins.iter_mut().enumerate() {
                    if bin.is_empty() {
                        continue;
                    }
                    debug_assert!(*i != dst, "shard staged a transfer to itself");
                    mailbox[dst].lock().unwrap().append(bin);
                }
            }
            sync.barrier.wait(&mut sense);

            // Phase 3: drain inbound batches for owned shards. No
            // barrier needed after this — each worker only touches its
            // own cells, and the phase-1 barrier of the next epoch
            // orders every drain before anyone's next window.
            for (i, s) in lane.iter_mut() {
                let mut batch = std::mem::take(&mut *mailbox[*i].lock().unwrap());
                if batch.is_empty() {
                    continue;
                }
                batch.sort_unstable_by_key(|&(at, key, _)| (at, key));
                debug_assert!(batch.iter().all(|&(at, _, _)| at > last));
                s.absorb(batch);
            }
            epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Scheduler;
    use crate::rng::mix64;
    use crate::time::SimTime;
    use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq};
    use std::collections::BTreeMap;

    /// Toy sharded model: a hop chain that walks the cluster. Handling
    /// a hop logs `(time, salt)`, then deterministically derives the
    /// next destination and delay from the salt alone — so the exact
    /// same chain unfolds under every driver.
    #[derive(Clone, Copy, Debug)]
    struct Hop {
        remaining: u32,
        salt: u64,
    }

    enum Action {
        Done,
        Local(u64, Hop),
        Cross(usize, u64, Hop),
    }

    struct ToyShard {
        id: usize,
        n: usize,
        lookahead: u64,
        sched: Scheduler<Hop>,
        log: Vec<(u64, u64)>,
        last_at: u64,
    }

    impl ToyShard {
        fn new(id: usize, n: usize, lookahead: u64, seed: u64) -> Self {
            ToyShard {
                id,
                n,
                lookahead,
                sched: Scheduler::with_seq_base(seed ^ id as u64, id as u16),
                log: Vec::new(),
                last_at: 0,
            }
        }

        /// Deterministic in `(self.id, now, hop)` only — shared by the
        /// epoch drivers and the flat oracle.
        fn handle(&mut self, now: u64, hop: Hop) -> Action {
            assert!(now >= self.last_at, "shard clock went backwards");
            self.last_at = now;
            self.log.push((now, hop.salt));
            if hop.remaining == 0 {
                return Action::Done;
            }
            let h = mix64(hop.salt);
            let next = Hop {
                remaining: hop.remaining - 1,
                salt: h,
            };
            let dst = (h % self.n as u64) as usize;
            if dst == self.id {
                // Local hop: any delay, including zero (same-instant
                // chains exercise the near-buffer path).
                Action::Local(now + (h >> 32) % (2 * self.lookahead), next)
            } else {
                // Cross-shard hop: delay at least L — the contract the
                // epoch protocol relies on.
                Action::Cross(
                    dst,
                    now + self.lookahead + (h >> 32) % (3 * self.lookahead),
                    next,
                )
            }
        }
    }

    impl EpochShard<()> for ToyShard {
        type Transfer = Hop;

        fn next_event_at(&mut self) -> Option<u64> {
            self.sched.next_event_at()
        }

        fn run_window(&mut self, _ctx: &(), last: u64, out: &mut Outbox<Hop>) {
            while let Some(hop) = self.sched.pop_due(SimTime::from_nanos(last)) {
                let now = self.sched.now().as_nanos();
                // Tentpole property: the driver never releases an event
                // past the window it announced.
                assert!(
                    now <= last,
                    "event at {now} released past window end {last}"
                );
                match self.handle(now, hop) {
                    Action::Done => {}
                    Action::Local(at, h) => {
                        let k = self.sched.mint_key();
                        self.sched.schedule_keyed(SimTime::from_nanos(at), k, h);
                    }
                    Action::Cross(dst, at, h) => {
                        let k = self.sched.mint_key();
                        out.send(dst, at, k, h);
                    }
                }
            }
        }

        fn absorb(&mut self, batch: Vec<Transfer<Hop>>) {
            let mut prev: Option<(u64, u64)> = None;
            for (at, key, hop) in batch {
                // Satellite property: batches merge in (time, key) order.
                assert!(
                    prev.is_none_or(|p| (at, key) > p),
                    "batch not sorted by (time, key)"
                );
                prev = Some((at, key));
                self.sched.schedule_keyed(SimTime::from_nanos(at), key, hop);
            }
        }
    }

    /// Flat single-queue oracle: the same shards driven by one global
    /// `(at, key)`-ordered queue with no windows at all — mirroring how
    /// `wheel_matches_heap_reference` pits the wheel against a plain
    /// heap. Key-mint order per shard is identical to the epoch
    /// drivers' because each shard handles the same events in the same
    /// order and mints exactly one key per spawned hop.
    fn run_flat(shards: &mut [ToyShard], inits: &[(usize, u64, Hop)], until: u64) {
        let mut queue: BTreeMap<(u64, u64), (usize, Hop)> = BTreeMap::new();
        for &(i, at, hop) in inits {
            let key = shards[i].sched.mint_key();
            queue.insert((at, key), (i, hop));
        }
        while let Some((&(at, key), _)) = queue.first_key_value() {
            if at > until {
                break;
            }
            let (i, hop) = queue.remove(&(at, key)).unwrap();
            match shards[i].handle(at, hop) {
                Action::Done => {}
                Action::Local(a, h) => {
                    let k = shards[i].sched.mint_key();
                    queue.insert((a, k), (i, h));
                }
                Action::Cross(dst, a, h) => {
                    let k = shards[i].sched.mint_key();
                    queue.insert((a, k), (dst, h));
                }
            }
        }
    }

    fn build_shards(case: &Case) -> (Vec<ToyShard>, Vec<(usize, u64, Hop)>) {
        let n = case.shards as usize;
        let shards: Vec<ToyShard> = (0..n)
            .map(|i| ToyShard::new(i, n, case.lookahead, case.seed))
            .collect();
        let inits: Vec<(usize, u64, Hop)> = (0..n)
            .map(|i| {
                let h = mix64(case.seed ^ ((i as u64) << 7 | 1));
                (
                    i,
                    h % (4 * case.lookahead),
                    Hop {
                        remaining: case.hops,
                        salt: h,
                    },
                )
            })
            .collect();
        (shards, inits)
    }

    fn schedule_inits(shards: &mut [ToyShard], inits: &[(usize, u64, Hop)]) {
        for &(i, at, hop) in inits {
            let k = shards[i].sched.mint_key();
            shards[i]
                .sched
                .schedule_keyed(SimTime::from_nanos(at), k, hop);
        }
    }

    #[derive(Clone, Debug)]
    struct Case {
        shards: u8,
        hops: u32,
        lookahead: u64,
        seed: u64,
    }

    impl dsb_testkit::Shrink for Case {
        fn shrink(&self) -> Vec<Self> {
            let mut out = Vec::new();
            if self.shards > 1 {
                out.push(Case {
                    shards: self.shards - 1,
                    ..self.clone()
                });
            }
            if self.hops > 0 {
                out.push(Case {
                    hops: self.hops / 2,
                    ..self.clone()
                });
            }
            if self.lookahead > 1 {
                out.push(Case {
                    lookahead: self.lookahead / 2,
                    ..self.clone()
                });
            }
            out
        }
    }

    /// The tentpole conformance property: for random hop topologies,
    /// the epoch protocol (inline and threaded, several worker counts)
    /// produces per-shard event logs byte-identical to the flat
    /// single-queue oracle, and stopping at a horizon then resuming
    /// changes nothing.
    #[test]
    fn epoch_drivers_match_flat_oracle() {
        prop!(
            cases = 60,
            |rng| Case {
                shards: gen::u8_in(rng, 1, 6),
                hops: gen::u32_in(rng, 0, 40),
                lookahead: gen::u64_in(rng, 1, 10_000),
                seed: gen::u64_in(rng, 0, u64::MAX),
            },
            |case: &Case| {
                let (mut oracle, inits) = build_shards(case);
                run_flat(&mut oracle, &inits, u64::MAX);
                let want: Vec<&[(u64, u64)]> = oracle.iter().map(|s| s.log.as_slice()).collect();

                for workers in [1usize, 2, 3] {
                    let (mut shards, inits) = build_shards(case);
                    schedule_inits(&mut shards, &inits);
                    // Split the run at an arbitrary horizon: epoch runs
                    // must be resumable (Simulation::advance_to relies
                    // on this).
                    let mid = case.lookahead * 2;
                    run_epochs(&(), &mut shards, case.lookahead, mid, workers);
                    run_epochs(&(), &mut shards, case.lookahead, u64::MAX, workers);
                    for (s, want_log) in shards.iter().zip(&want) {
                        prop_assert_eq!(
                            &s.log.as_slice(),
                            want_log,
                            "shard {} diverged at workers={}",
                            s.id,
                            workers
                        );
                    }
                    let total: usize = shards.iter().map(|s| s.log.len()).sum();
                    prop_assert!(total > 0 || case.hops == 0 || case.shards == 0);
                }
                Ok(())
            },
        );
    }

    /// A horizon strictly inside the run must stop every shard at or
    /// before it, with unprocessed events intact.
    #[test]
    fn horizon_bounds_every_shard() {
        let case = Case {
            shards: 4,
            hops: 25,
            lookahead: 500,
            seed: 0x5EED,
        };
        for workers in [1usize, 2, 4] {
            let (mut shards, inits) = build_shards(&case);
            schedule_inits(&mut shards, &inits);
            let horizon = 4 * case.lookahead;
            run_epochs(&(), &mut shards, case.lookahead, horizon, workers);
            for s in &shards {
                assert!(
                    s.log.iter().all(|&(at, _)| at <= horizon),
                    "worker count {workers}: event past the horizon"
                );
            }
            // Something must remain pending (25-hop chains at ~L-scale
            // delays run far past 4L).
            let pending: usize = shards.iter().map(|s| s.sched.pending()).sum();
            assert!(pending > 0, "expected unfinished work past the horizon");
        }
    }

    /// Same seed, same worker count, run twice: identical logs — the
    /// threaded driver introduces no scheduling nondeterminism.
    #[test]
    fn threaded_driver_is_deterministic() {
        let case = Case {
            shards: 5,
            hops: 30,
            lookahead: 900,
            seed: 0xABCD,
        };
        let mut logs = Vec::new();
        for _ in 0..2 {
            let (mut shards, inits) = build_shards(&case);
            schedule_inits(&mut shards, &inits);
            run_epochs(&(), &mut shards, case.lookahead, u64::MAX, 3);
            logs.push(shards.iter().map(|s| s.log.clone()).collect::<Vec<_>>());
        }
        assert_eq!(logs[0], logs[1]);
    }
}
