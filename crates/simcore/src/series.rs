//! Time-windowed metric series, used for the paper's timeline figures
//! (cascading QoS violations, recovery after scaling, hotspot heatmaps).

use crate::metrics::Histogram;
use crate::time::{SimDuration, SimTime};

/// A series of per-window compact histograms.
///
/// Records `(time, value)` observations and answers "what was the p99 in
/// window *k*?" — exactly what the paper's heatmap figures (Figs. 19, 20,
/// 22a) plot per microservice over time.
///
/// # Example
///
/// ```
/// use dsb_simcore::{SimDuration, SimTime, WindowedSeries};
///
/// let mut s = WindowedSeries::new(SimDuration::from_secs(1));
/// s.record(SimTime::from_millis(100), 10);
/// s.record(SimTime::from_millis(900), 30);
/// s.record(SimTime::from_millis(1500), 500);
/// assert_eq!(s.window_count(), 2);
/// assert_eq!(s.count(0), 2);
/// assert!(s.quantile(1, 0.99) >= 450);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedSeries {
    window: SimDuration,
    windows: Vec<Histogram>,
}

impl WindowedSeries {
    /// Creates a series with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        WindowedSeries {
            window,
            windows: Vec::new(),
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn idx(&self, at: SimTime) -> usize {
        (at.as_nanos() / self.window.as_nanos()) as usize
    }

    /// Records an observation at virtual time `at`.
    pub fn record(&mut self, at: SimTime, value: u64) {
        let i = self.idx(at);
        if i >= self.windows.len() {
            self.windows.resize_with(i + 1, Histogram::compact);
        }
        self.windows[i].record(value);
    }

    /// Number of windows touched so far (index of last + 1).
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Observation count in window `i` (0 if out of range).
    pub fn count(&self, i: usize) -> u64 {
        self.windows.get(i).map_or(0, Histogram::count)
    }

    /// The `q`-quantile of window `i` (0 if out of range / empty).
    pub fn quantile(&self, i: usize, q: f64) -> u64 {
        self.windows.get(i).map_or(0, |h| h.quantile(q))
    }

    /// Mean of window `i` (0 if out of range / empty).
    pub fn mean(&self, i: usize) -> f64 {
        self.windows.get(i).map_or(0.0, Histogram::mean)
    }

    /// Collapses all windows into one histogram.
    pub fn total(&self) -> Histogram {
        self.merged_range(0, usize::MAX)
    }

    /// Merges another series of the same window width into this one,
    /// window by window — used to combine per-shard series from a
    /// parallel run into the cluster-wide view.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ.
    pub fn merge(&mut self, other: &WindowedSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot merge series of different window widths"
        );
        if other.windows.len() > self.windows.len() {
            self.windows
                .resize_with(other.windows.len(), Histogram::compact);
        }
        for (a, b) in self.windows.iter_mut().zip(&other.windows) {
            a.merge(b);
        }
    }

    /// Merges windows `[from, to)` into one histogram (out-of-range
    /// indices are ignored) — used to drop warm-up windows from reported
    /// quantiles.
    pub fn merged_range(&self, from: usize, to: usize) -> Histogram {
        let mut h = Histogram::compact();
        for w in self
            .windows
            .iter()
            .take(to.min(self.windows.len()))
            .skip(from)
        {
            h.merge(w);
        }
        h
    }
}

/// Tracks busy time of a multi-unit resource (cores of a machine, workers
/// of an instance) per window, yielding utilization in `[0, 1]`.
///
/// Callers report busy intervals as they complete; intervals are split
/// across window boundaries.
///
/// # Example
///
/// ```
/// use dsb_simcore::{SimDuration, SimTime, UtilizationTracker};
///
/// let mut u = UtilizationTracker::new(SimDuration::from_secs(1), 2);
/// // One of two cores busy for the entire first window:
/// u.add_busy(SimTime::ZERO, SimTime::from_secs(1));
/// assert!((u.utilization(0) - 0.5).abs() < 1e-9);
/// assert_eq!(u.utilization(7), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    window: SimDuration,
    capacity: u32,
    busy_ns: Vec<u64>,
}

impl UtilizationTracker {
    /// Creates a tracker for a resource with `capacity` parallel units.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `capacity` is zero.
    pub fn new(window: SimDuration, capacity: u32) -> Self {
        assert!(window > SimDuration::ZERO, "window must be positive");
        assert!(capacity > 0, "capacity must be positive");
        UtilizationTracker {
            window,
            capacity,
            busy_ns: Vec::new(),
        }
    }

    /// Updates the capacity (e.g. after scaling a worker pool). Only
    /// affects utilization computed for later windows if queried via
    /// [`UtilizationTracker::utilization_with_capacity`]; the plain
    /// [`UtilizationTracker::utilization`] uses the latest capacity.
    pub fn set_capacity(&mut self, capacity: u32) {
        assert!(capacity > 0, "capacity must be positive");
        self.capacity = capacity;
    }

    /// Current capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Reports that one unit was busy during `[from, to)`.
    pub fn add_busy(&mut self, from: SimTime, to: SimTime) {
        if to <= from {
            return;
        }
        let w = self.window.as_nanos();
        let mut cur = from.as_nanos();
        let end = to.as_nanos();
        while cur < end {
            let widx = (cur / w) as usize;
            let wend = (widx as u64 + 1) * w;
            let upto = end.min(wend);
            if widx >= self.busy_ns.len() {
                self.busy_ns.resize(widx + 1, 0);
            }
            self.busy_ns[widx] += upto - cur;
            cur = upto;
        }
    }

    /// Number of windows touched so far.
    pub fn window_count(&self) -> usize {
        self.busy_ns.len()
    }

    /// Utilization of window `i` with the current capacity (0 if untouched).
    pub fn utilization(&self, i: usize) -> f64 {
        self.utilization_with_capacity(i, self.capacity)
    }

    /// Utilization of window `i` assuming the given capacity.
    pub fn utilization_with_capacity(&self, i: usize, capacity: u32) -> f64 {
        let busy = self.busy_ns.get(i).copied().unwrap_or(0) as f64;
        busy / (self.window.as_nanos() as f64 * capacity.max(1) as f64)
    }

    /// Mean utilization over `[first, last]` windows (inclusive, clamped).
    pub fn mean_utilization(&self, first: usize, last: usize) -> f64 {
        if self.busy_ns.is_empty() || first > last {
            return 0.0;
        }
        let last = last.min(self.busy_ns.len().saturating_sub(1));
        let n = (last - first + 1) as f64;
        (first..=last).map(|i| self.utilization(i)).sum::<f64>() / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_time() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(1));
        for ms in (0..5000).step_by(100) {
            s.record(SimTime::from_millis(ms), ms);
        }
        assert_eq!(s.window_count(), 5);
        assert_eq!(s.count(0), 10);
        assert_eq!(s.count(4), 10);
        assert!(s.quantile(4, 0.5) >= 4000);
        assert_eq!(s.quantile(99, 0.5), 0);
        assert_eq!(s.total().count(), 50);
    }

    #[test]
    fn boundary_lands_in_next_window() {
        let mut s = WindowedSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_secs(1), 7);
        assert_eq!(s.count(0), 0);
        assert_eq!(s.count(1), 1);
    }

    #[test]
    fn utilization_splits_across_windows() {
        let mut u = UtilizationTracker::new(SimDuration::from_secs(1), 1);
        u.add_busy(SimTime::from_millis(500), SimTime::from_millis(2500));
        assert!((u.utilization(0) - 0.5).abs() < 1e-9);
        assert!((u.utilization(1) - 1.0).abs() < 1e-9);
        assert!((u.utilization(2) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_ignores_empty_interval() {
        let mut u = UtilizationTracker::new(SimDuration::from_secs(1), 4);
        u.add_busy(SimTime::from_secs(2), SimTime::from_secs(2));
        u.add_busy(SimTime::from_secs(3), SimTime::from_secs(2));
        assert_eq!(u.window_count(), 0);
    }

    #[test]
    fn mean_utilization_averages() {
        let mut u = UtilizationTracker::new(SimDuration::from_secs(1), 2);
        u.add_busy(SimTime::ZERO, SimTime::from_secs(2)); // 0.5 in w0, w1
        u.add_busy(SimTime::ZERO, SimTime::from_secs(1)); // +0.5 in w0
        assert!((u.mean_utilization(0, 1) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn capacity_change_affects_reading() {
        let mut u = UtilizationTracker::new(SimDuration::from_secs(1), 1);
        u.add_busy(SimTime::ZERO, SimTime::from_secs(1));
        assert!((u.utilization(0) - 1.0).abs() < 1e-9);
        u.set_capacity(4);
        assert!((u.utilization(0) - 0.25).abs() < 1e-9);
        assert!((u.utilization_with_capacity(0, 2) - 0.5).abs() < 1e-9);
    }
}
