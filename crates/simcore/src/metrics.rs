//! Latency and throughput metrics: log-bucketed histograms with quantile
//! extraction, streaming mean/variance, and simple counters.

use crate::time::SimDuration;

/// A log-linear histogram of non-negative `u64` samples (HDR-style).
///
/// Values are bucketed with a configurable number of sub-buckets per
/// power of two (`precision_bits`), bounding relative quantile error to
/// about `2^-precision_bits`. The default of 5 bits gives ≈3 % error — ample
/// for tail-latency reporting — with 64 octaves × 32 buckets of `u64`.
///
/// # Example
///
/// ```
/// use dsb_simcore::Histogram;
///
/// let mut h = Histogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.quantile(0.5);
/// assert!((450..=550).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    precision_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(5)
    }
}

impl Histogram {
    /// Creates a histogram with `2^precision_bits` sub-buckets per octave.
    ///
    /// # Panics
    ///
    /// Panics if `precision_bits` is not in `1..=8`.
    pub fn new(precision_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&precision_bits),
            "precision_bits must be in 1..=8"
        );
        Histogram {
            precision_bits,
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// A compact (3-bit, ≈12 % error) histogram for memory-sensitive
    /// per-window series.
    pub fn compact() -> Self {
        Histogram::new(3)
    }

    fn index_of(&self, value: u64) -> usize {
        let p = self.precision_bits;
        if value < (1 << p) {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros(); // >= p
        let sub = ((value >> (octave - p)) - (1 << p)) as usize;
        (((octave - p + 1) as usize) << p) + sub
    }

    fn bucket_upper(&self, index: usize) -> u64 {
        let p = self.precision_bits;
        let base = 1usize << p;
        if index < base {
            return index as u64;
        }
        let octave = (index >> p) as u32 + p - 1;
        let sub = (index & (base - 1)) as u64;
        ((1u64 << p) + sub + 1) << (octave - p)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self.index_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) as a bucket upper bound; exact
    /// samples are approximated within the bucket's relative precision.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// The `q`-quantile as a [`SimDuration`] (samples interpreted as ns).
    pub fn quantile_duration(&self, q: f64) -> SimDuration {
        SimDuration::from_nanos(self.quantile(q))
    }

    /// Mean as a [`SimDuration`] (samples interpreted as ns).
    pub fn mean_duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean() as u64)
    }

    /// Number of samples `<= value`, within the bucket precision (samples
    /// are attributed to their bucket's upper bound, so the estimate may
    /// undercount by up to one bucket's width). Monotone in `value` and in
    /// recording order, which makes per-scrape deltas of it well defined —
    /// the property the telemetry SLO layer relies on.
    pub fn count_le(&self, value: u64) -> u64 {
        let mut acc = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if self.bucket_upper(i) > value {
                break;
            }
            acc += c;
        }
        acc
    }

    /// Merges another histogram of the same precision into this one.
    ///
    /// # Panics
    ///
    /// Panics if the precisions differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.precision_bits, other.precision_bits,
            "cannot merge histograms of different precision"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Clears all samples, keeping the precision.
    pub fn reset(&mut self) {
        self.buckets.clear();
        self.count = 0;
        self.sum = 0;
        self.max = 0;
        self.min = u64::MAX;
    }
}

/// Streaming mean and variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use dsb_simcore::MeanVar;
///
/// let mut mv = MeanVar::default();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     mv.record(x);
/// }
/// assert_eq!(mv.mean(), 5.0);
/// assert!((mv.variance() - 4.571428).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A monotone event counter with a helper for rates over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Events per second over the given span (0 for a zero span).
    pub fn rate(self, over: SimDuration) -> f64 {
        let secs = over.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.0 as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::default();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q) as f64;
            let exact = q * 100_000.0;
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q}: est {est} exact {exact}"
            );
        }
        assert_eq!(h.quantile(1.0), 100_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        assert!((h.mean() - 50_000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 17, 31] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
    }

    #[test]
    fn histogram_huge_values() {
        let mut h = Histogram::default();
        h.record(u64::MAX / 2);
        h.record(1_000_000_000_000);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= 1_000_000_000_000);
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::default();
        h.record(5);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn count_le_tracks_cdf() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count_le(0), 0);
        assert_eq!(h.count_le(u64::MAX), 1000);
        let mid = h.count_le(500) as f64;
        assert!((mid - 500.0).abs() <= 500.0 * 0.05 + 2.0, "mid {mid}");
        // Monotone in the threshold.
        assert!(h.count_le(250) <= h.count_le(500));
        // Small values are exact (unit buckets below 2^precision).
        let mut s = Histogram::default();
        for v in [0u64, 1, 2, 3, 17] {
            s.record(v);
        }
        assert_eq!(s.count_le(3), 4);
    }

    #[test]
    fn histogram_merge_empty_into_empty() {
        let mut a = Histogram::default();
        let b = Histogram::default();
        a.merge(&b);
        assert!(a.is_empty());
        assert_eq!(a.count(), 0);
        assert_eq!(a.quantile(0.5), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 0);
        // Still usable after the no-op merge.
        a.record(9);
        assert_eq!(a.min(), 9);
        assert_eq!(a.max(), 9);
    }

    #[test]
    fn histogram_merge_empty_into_populated_is_noop() {
        let mut a = Histogram::default();
        for v in 1..=100u64 {
            a.record(v);
        }
        let before = (a.count(), a.quantile(0.5), a.min(), a.max());
        a.merge(&Histogram::default());
        assert_eq!(before, (a.count(), a.quantile(0.5), a.min(), a.max()));
    }

    #[test]
    #[should_panic]
    fn merge_mismatched_precision_panics() {
        let mut a = Histogram::new(5);
        let b = Histogram::new(3);
        a.merge(&b);
    }

    #[test]
    fn meanvar_single_value() {
        let mut mv = MeanVar::new();
        mv.record(42.0);
        assert_eq!(mv.mean(), 42.0);
        assert_eq!(mv.variance(), 0.0);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::new();
        c.add(100);
        c.incr();
        assert_eq!(c.get(), 101);
        assert!((c.rate(SimDuration::from_secs(10)) - 10.1).abs() < 1e-9);
        assert_eq!(c.rate(SimDuration::ZERO), 0.0);
    }
}
