//! Probability distributions for service times, message sizes and
//! popularity skew.

use crate::rng::Rng;

/// A sampleable, non-negative real-valued distribution.
///
/// `Dist` values parameterize every stochastic demand in the suite: CPU
/// cycles per handler, I/O waits, payload sizes, think times. All samples
/// are clamped to be non-negative.
///
/// # Example
///
/// ```
/// use dsb_simcore::{Dist, Rng};
///
/// let mut rng = Rng::new(1);
/// let d = Dist::log_normal(1_000.0, 0.5);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// // The configured median is preserved:
/// assert!((d.mean() - 1_000.0 * (0.5f64 * 0.5 / 2.0).exp()).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns the given value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exp {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Erlang-`k`: the sum of `k` i.i.d. exponentials, with the given total
    /// mean. Lower variance than an exponential; models pipelined work.
    Erlang {
        /// Shape (number of exponential stages).
        k: u32,
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal parameterized by its median and the log-space standard
    /// deviation `sigma`. Heavy-tailed; the usual model for RPC service
    /// times.
    LogNormal {
        /// Median (`e^mu`).
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Pareto truncated to `[lo, hi]`, via inverse-CDF sampling. Models
    /// payload sizes with occasional large documents.
    ParetoBounded {
        /// Tail exponent (> 0).
        alpha: f64,
        /// Minimum value.
        lo: f64,
        /// Maximum value.
        hi: f64,
    },
    /// A two-component mixture: with probability `p_b`, sample from `b`,
    /// otherwise from `a`. Models bimodal handlers (e.g. cache hit vs miss).
    Mix {
        /// Probability of drawing from `b`.
        p_b: f64,
        /// First component.
        a: Box<Dist>,
        /// Second component.
        b: Box<Dist>,
    },
    /// `base + extra`, where `extra` is sampled. Models a fixed setup cost
    /// plus variable work.
    Shifted {
        /// Fixed offset added to every sample.
        base: f64,
        /// Variable component.
        extra: Box<Dist>,
    },
}

impl Dist {
    /// A constant distribution.
    pub fn constant(v: f64) -> Dist {
        Dist::Constant(v)
    }

    /// An exponential distribution with the given mean.
    pub fn exp(mean: f64) -> Dist {
        Dist::Exp { mean }
    }

    /// A uniform distribution on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Dist {
        Dist::Uniform { lo, hi }
    }

    /// An Erlang-`k` distribution with the given mean.
    pub fn erlang(k: u32, mean: f64) -> Dist {
        Dist::Erlang { k, mean }
    }

    /// A log-normal distribution with the given median and log-space sigma.
    pub fn log_normal(median: f64, sigma: f64) -> Dist {
        Dist::LogNormal { median, sigma }
    }

    /// A bounded Pareto distribution.
    pub fn pareto(alpha: f64, lo: f64, hi: f64) -> Dist {
        Dist::ParetoBounded { alpha, lo, hi }
    }

    /// A two-point mixture drawing from `b` with probability `p_b`.
    pub fn mix(p_b: f64, a: Dist, b: Dist) -> Dist {
        Dist::Mix {
            p_b,
            a: Box::new(a),
            b: Box::new(b),
        }
    }

    /// A shifted distribution: `base + extra`.
    pub fn shifted(base: f64, extra: Dist) -> Dist {
        Dist::Shifted {
            base,
            extra: Box::new(extra),
        }
    }

    /// Draws one sample (always `>= 0`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        let v = match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => lo + (hi - lo) * rng.f64(),
            Dist::Exp { mean } => rng.exp(*mean),
            Dist::Erlang { k, mean } => {
                let stage = mean / (*k).max(1) as f64;
                (0..(*k).max(1)).map(|_| rng.exp(stage)).sum()
            }
            Dist::LogNormal { median, sigma } => median * (sigma * rng.normal()).exp(),
            Dist::ParetoBounded { alpha, lo, hi } => {
                let u = rng.f64();
                let la = lo.powf(*alpha);
                let ha = hi.powf(*alpha);
                // Inverse CDF of Pareto truncated to [lo, hi].
                (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
            }
            Dist::Mix { p_b, a, b } => {
                if rng.chance(*p_b) {
                    b.sample(rng)
                } else {
                    a.sample(rng)
                }
            }
            Dist::Shifted { base, extra } => base + extra.sample(rng),
        };
        v.max(0.0)
    }

    /// The analytic mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exp { mean } => *mean,
            Dist::Erlang { mean, .. } => *mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::ParetoBounded { alpha, lo, hi } => {
                if (*alpha - 1.0).abs() < 1e-12 {
                    let la = lo.powf(*alpha);
                    let ha = hi.powf(*alpha);
                    (ha * la) / (ha - la) * (hi / lo).ln()
                } else {
                    let la = lo.powf(*alpha);
                    let ha = hi.powf(*alpha);
                    la / (1.0 - la / ha)
                        * (alpha / (alpha - 1.0))
                        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
                }
            }
            Dist::Mix { p_b, a, b } => (1.0 - p_b) * a.mean() + p_b * b.mean(),
            Dist::Shifted { base, extra } => base + extra.mean(),
        }
    }

    /// Returns a copy of this distribution with every sample (and the mean)
    /// scaled by `factor`. Used to express "the same handler, on a core
    /// that is `factor×` slower".
    pub fn scaled(&self, factor: f64) -> Dist {
        match self {
            Dist::Constant(v) => Dist::Constant(v * factor),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Exp { mean } => Dist::Exp {
                mean: mean * factor,
            },
            Dist::Erlang { k, mean } => Dist::Erlang {
                k: *k,
                mean: mean * factor,
            },
            Dist::LogNormal { median, sigma } => Dist::LogNormal {
                median: median * factor,
                sigma: *sigma,
            },
            Dist::ParetoBounded { alpha, lo, hi } => Dist::ParetoBounded {
                alpha: *alpha,
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Mix { p_b, a, b } => Dist::Mix {
                p_b: *p_b,
                a: Box::new(a.scaled(factor)),
                b: Box::new(b.scaled(factor)),
            },
            Dist::Shifted { base, extra } => Dist::Shifted {
                base: base * factor,
                extra: Box::new(extra.scaled(factor)),
            },
        }
    }
}

/// A Zipf-distributed sampler over `{0, 1, …, n-1}` with exponent `s`.
///
/// Item `i` is drawn with probability proportional to `1/(i+1)^s`. Used for
/// user-popularity skew (Sec. 8 of the paper) and key popularity in caches.
/// Sampling is O(log n) via binary search over the precomputed CDF.
///
/// # Example
///
/// ```
/// use dsb_simcore::{Rng, Zipf};
///
/// let z = Zipf::new(100, 1.2);
/// let mut rng = Rng::new(3);
/// let mut first = 0;
/// for _ in 0..1000 {
///     if z.sample(&mut rng) == 0 {
///         first += 1;
///     }
/// }
/// assert!(first > 100); // rank 0 is by far the most popular
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true; see [`Zipf::new`]).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: &Dist, seed: u64, n: usize) -> f64 {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let d = Dist::constant(5.0);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn means_match_samples() {
        let dists = vec![
            Dist::uniform(2.0, 10.0),
            Dist::exp(7.0),
            Dist::erlang(4, 9.0),
            Dist::log_normal(3.0, 0.7),
            Dist::pareto(1.5, 1.0, 100.0),
            Dist::mix(0.3, Dist::constant(1.0), Dist::constant(11.0)),
            Dist::shifted(5.0, Dist::exp(2.0)),
        ];
        for d in dists {
            let m = empirical_mean(&d, 99, 300_000);
            let a = d.mean();
            assert!(
                (m - a).abs() / a.max(1e-9) < 0.05,
                "dist {d:?}: empirical {m} vs analytic {a}"
            );
        }
    }

    #[test]
    fn erlang_less_variable_than_exp() {
        let mut rng = Rng::new(4);
        let e = Dist::exp(10.0);
        let g = Dist::erlang(10, 10.0);
        let var = |d: &Dist, rng: &mut Rng| {
            let xs: Vec<f64> = (0..100_000).map(|_| d.sample(rng)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(&g, &mut rng) < var(&e, &mut rng) / 2.0);
    }

    #[test]
    fn pareto_stays_in_bounds() {
        let d = Dist::pareto(1.1, 2.0, 50.0);
        let mut rng = Rng::new(6);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..=50.0001).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn scaled_scales_mean() {
        let d = Dist::log_normal(4.0, 0.5);
        let s = d.scaled(3.0);
        assert!((s.mean() - 3.0 * d.mean()).abs() < 1e-9);
        let d = Dist::mix(0.5, Dist::exp(2.0), Dist::constant(8.0));
        let s = d.scaled(2.0);
        assert!((s.mean() - 2.0 * d.mean()).abs() < 1e-9);
    }

    #[test]
    fn zipf_is_monotone_and_normalized() {
        let z = Zipf::new(1000, 0.99);
        let total: f64 = (0..1000).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(100));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(10);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_sample_skews_to_low_ranks() {
        let z = Zipf::new(100, 1.5);
        let mut rng = Rng::new(11);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 5 {
                low += 1;
            }
        }
        assert!(low as f64 / n as f64 > 0.7, "low-rank share {low}/{n}");
    }
}
