//! Deterministic pseudo-random number generation.
//!
//! The simulator owns its generator instead of depending on `rand` so that
//! experiment outputs are reproducible bit-for-bit regardless of dependency
//! upgrades. The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the combination recommended by the algorithm's authors.

/// A seeded xoshiro256++ pseudo-random number generator.
///
/// Every stochastic component of the simulation draws from an `Rng` that is
/// ultimately derived from the experiment seed, so an experiment replays
/// identically given the same configuration.
///
/// # Example
///
/// ```
/// use dsb_simcore::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent sub-streams for decoupled components:
/// let mut c = a.split();
/// assert_ne!(a.next_u64(), c.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    mix64(*state)
}

/// The SplitMix64 output mixer: a stateless, bijective 64-bit hash.
///
/// This is exactly the finalizer the seeding path has always used, so
/// exposing it changes no existing stream. Components that need a
/// deterministic *keyed* decision without consuming generator state
/// share it — per-shard stream derivation (`mix64(seed ^ mix64(shard))`)
/// and hash-based trace sampling, where every shard must reach the same
/// verdict for a trace id without coordinating RNG draws.
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent generator, advancing `self` once.
    ///
    /// Useful for giving each component (workload generator, service-time
    /// sampler, fault injector, …) its own stream so that adding draws to one
    /// component does not perturb the others.
    pub fn split(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in the open interval `(0, 1]`.
    ///
    /// Used when a logarithm of the sample is taken (e.g. exponential
    /// inversion), where 0 would be a singularity.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be positive");
        // Lemire's multiply-shift with rejection for unbiased results.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Samples a standard normal variate (polar Box–Muller, no caching so
    /// the stream stays position-independent).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples an exponential variate with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        -mean * self.f64_open().ln()
    }

    /// Chooses an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "Rng::weighted needs non-empty positive weights"
        );
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn differs_for_different_seed() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Rng::new(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut r = Rng::new(77);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(31);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn exp_mean() {
        let mut r = Rng::new(13);
        let n = 200_000;
        let mean = (0..n).map(|_| r.exp(42.0)).sum::<f64>() / n as f64;
        assert!((mean - 42.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng::new(2);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.5).abs() < 0.02);
    }

    #[test]
    fn split_streams_decorrelated() {
        let mut a = Rng::new(555);
        let mut b = a.split();
        let matches = (0..128).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(8);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
