//! The discrete-event loop: a [`Scheduler`] of typed events and the
//! [`Model`] trait that consumes them.
//!
//! # Event-queue internals
//!
//! The pending-event set is a hierarchical timing wheel (a calendar
//! queue), not a comparison heap: `schedule`/`pop` are O(1) amortized
//! for the near-horizon events that dominate microservice simulations
//! (NIC hops, worker completions and `schedule_now` chains cluster
//! within microseconds of the clock), while far-future events (diurnal
//! ticks, pre-scheduled open-loop arrivals) sit in coarse upper levels
//! and cascade down in batches as the clock approaches them. See
//! [`TimerWheel`] for the level layout and the determinism argument.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// A simulation model: owns all mutable world state and interprets events.
///
/// The event type is typically one enum covering every occurrence in the
/// modelled system (message deliveries, compute completions, timer ticks…).
/// [`Scheduler::run`] pops events in timestamp order and hands them to
/// [`Model::handle`], which may schedule further events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event at the scheduler's current virtual time.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, ev: Self::Event);
}

/// One queued event: absolute nanosecond timestamp, insertion sequence
/// number (the deterministic tie-break) and the payload.
struct Entry<E> {
    at: u64,
    seq: u64,
    ev: E,
}

/// Slots per wheel level (one occupancy bit per slot fits in a `u64`).
const SLOT_BITS: u32 = 6;
/// Number of slots at each level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels. Level `L` has slot width `2^(G0_BITS + 6L)` ns.
const LEVELS: usize = 8;
/// Level-0 slot width exponent: slots of `2^10` ns ≈ 1 µs.
const G0_BITS: u32 = 10;
/// Horizon of the whole wheel: `2^(10 + 6*8)` = 2^58 ns ≈ 9 simulated
/// years. Events scheduled further out (notably the [`SimTime::MAX`]
/// saturation sentinel) go to the overflow ring.
const H_TOP: u64 = 1 << (G0_BITS + SLOT_BITS * LEVELS as u32);

/// A hierarchical timing wheel holding `(at, seq, ev)` entries.
///
/// # Layout
///
/// * `LEVELS` wheels of `SLOTS` slots each; the level-`L` slot width is
///   `2^(G0_BITS + 6L)` ns, so level 0 spans ~65 µs and level 7 spans
///   ~9 years. A per-level `u64` occupancy bitmap makes "next non-empty
///   slot" a rotate + trailing-zeros.
/// * `near`: the drained current slot, kept sorted **descending** by
///   `(at, seq)` so the minimum pops from the tail. New events that land
///   inside the near window (`at < near_end`, the common `schedule_now`
///   and sub-microsecond-hop case) binary-insert here — at the tail for
///   same-instant chains, so no memmove in the hot path.
/// * `overflow`: events at least `H_TOP` beyond the cursor, re-seeded
///   into the wheels when the clock gets close (or when the wheels
///   drain). [`SimTime::MAX`] — the saturation sentinel produced by
///   `SimTime + SimDuration` overflow — always lands here.
///
/// # Determinism
///
/// The pop order must be *exactly* ascending `(at, seq)` — byte-for-byte
/// the order the previous `BinaryHeap` implementation produced — because
/// every golden fixture and differential sweep in the workspace pins it.
/// Slot FIFO order alone does not guarantee this: an event can reach a
/// level-0 slot either directly or by cascading from a coarser level,
/// and the two paths can interleave same-instant entries out of seq
/// order. Draining therefore sorts the slot by `(at, seq)` (seq values
/// are unique, so the sort is a total order and `sort_unstable` is
/// deterministic). Slots are nearly sorted already, so this is cheap.
struct TimerWheel<E> {
    /// `LEVELS * SLOTS` slot vectors, flattened (`level * SLOTS + idx`).
    /// Drained with `Vec::drain` so their capacity is reused for the
    /// whole run — no steady-state allocation.
    slots: Vec<Vec<Entry<E>>>,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// Current drained slot, sorted descending by `(at, seq)`.
    near: Vec<Entry<E>>,
    /// Exclusive upper bound of the near window; events with
    /// `at < near_end` insert into `near` directly.
    near_end: u64,
    /// Wheel position: the start of the last drained slot, always
    /// aligned to the level-0 slot width. Only advances.
    cursor: u64,
    /// Events at least `H_TOP` beyond the cursor.
    overflow: Vec<Entry<E>>,
    /// Minimum `at` in `overflow` (`u64::MAX` when empty — which is
    /// also a valid event time, so emptiness is checked separately).
    overflow_min: u64,
    /// Lower bound on the earliest `slot_start` of any occupied slot in
    /// levels ≥ 1 (`u64::MAX` when provably none). Pushes fold their
    /// slot start in; the full refill scan recomputes it exactly. The
    /// bound may drift *low* after a cascade empties the minimum slot
    /// (harmless: one wasted full scan), never high — so the fast path
    /// in [`TimerWheel::refill`] can trust it to skip the 8-level scan
    /// and drain straight from the level-0 bitmap.
    upper_min: u64,
    /// Live entry count across near + slots + overflow.
    len: usize,
}

impl<E> TimerWheel<E> {
    fn new() -> Self {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            near: Vec::new(),
            near_end: 0,
            cursor: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            upper_min: u64::MAX,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Inserts an entry. `at` must be `>= self.cursor` (the scheduler
    /// clamps past events to `now >= cursor`).
    fn push(&mut self, at: u64, seq: u64, ev: E) {
        self.len += 1;
        let e = Entry { at, seq, ev };
        if at < self.near_end {
            // Descending order: larger (at, seq) first, minimum at the
            // tail. A same-instant chain inserts at the very tail.
            let idx = self.near.partition_point(|x| (x.at, x.seq) > (at, seq));
            self.near.insert(idx, e);
        } else {
            self.push_wheel(e);
        }
    }

    /// Places an entry into the wheel level whose span covers its delta
    /// from the cursor (or into overflow).
    fn push_wheel(&mut self, e: Entry<E>) {
        let delta = e.at - self.cursor;
        if delta >= H_TOP {
            self.overflow_min = self.overflow_min.min(e.at);
            self.overflow.push(e);
            return;
        }
        // Smallest level whose horizon 2^(G0_BITS + 6(L+1)) exceeds the
        // delta, then bump while the slot distance reaches a full
        // rotation (possible when the cursor sits mid-slot).
        let bits = 64 - delta.leading_zeros();
        let mut level = (bits.saturating_sub(G0_BITS + SLOT_BITS) + SLOT_BITS - 1) / SLOT_BITS;
        loop {
            if level as usize >= LEVELS {
                self.overflow_min = self.overflow_min.min(e.at);
                self.overflow.push(e);
                return;
            }
            let shift = G0_BITS + level * SLOT_BITS;
            if (e.at >> shift) - (self.cursor >> shift) < SLOTS as u64 {
                break;
            }
            level += 1;
        }
        let shift = G0_BITS + level * SLOT_BITS;
        let idx = ((e.at >> shift) & (SLOTS as u64 - 1)) as usize;
        if level > 0 {
            self.upper_min = self.upper_min.min((e.at >> shift) << shift);
        }
        self.occupied[level as usize] |= 1 << idx;
        self.slots[level as usize * SLOTS + idx].push(e);
    }

    /// Timestamp of the next entry, refilling the near buffer if needed.
    fn peek_at(&mut self) -> Option<u64> {
        if self.refill() {
            self.near.last().map(|e| e.at)
        } else {
            None
        }
    }

    /// Removes and returns the earliest entry.
    fn pop(&mut self) -> Option<Entry<E>> {
        if !self.refill() {
            return None;
        }
        self.len -= 1;
        self.near.pop()
    }

    /// Ensures `near` holds the next batch of entries; returns whether
    /// any entry is pending at all.
    fn refill(&mut self) -> bool {
        if !self.near.is_empty() {
            return true;
        }
        // Fast path: the next event usually sits in a level-0 slot with
        // nothing coarser due first, so one bitmap rotate suffices. Ties
        // with `upper_min` fall through (a coarser slot starting at the
        // same instant must cascade before this slot drains); ties with
        // `overflow_min` stay here (the old scan kept the wheel on ties).
        if self.occupied[0] != 0 {
            let cur_idx = ((self.cursor >> G0_BITS) & (SLOTS as u64 - 1)) as u32;
            let k = self.occupied[0].rotate_right(cur_idx).trailing_zeros() as u64;
            let idx = ((cur_idx as u64 + k) & (SLOTS as u64 - 1)) as usize;
            let slot_start = ((self.cursor >> G0_BITS) + k) << G0_BITS;
            if slot_start < self.upper_min && slot_start <= self.overflow_min {
                self.occupied[0] &= !(1 << idx);
                self.cursor = slot_start;
                let slot = &mut self.slots[idx];
                self.near.append(slot);
                self.near
                    .sort_unstable_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
                self.near_end = slot_start + (1 << G0_BITS);
                return true;
            }
        }
        loop {
            // Earliest non-empty slot across levels: per level, rotate
            // the occupancy bitmap so the cursor's slot is bit 0 and take
            // the first set bit. Entries always sit within one rotation
            // ahead of the cursor, so the circular scan is unambiguous.
            let mut best: Option<(u64, usize, usize)> = None;
            let mut upper = u64::MAX;
            for level in 0..LEVELS {
                let occ = self.occupied[level];
                if occ == 0 {
                    continue;
                }
                let shift = G0_BITS + level as u32 * SLOT_BITS;
                let cur_idx = ((self.cursor >> shift) & (SLOTS as u64 - 1)) as u32;
                let k = occ.rotate_right(cur_idx).trailing_zeros() as u64;
                let idx = ((cur_idx as u64 + k) & (SLOTS as u64 - 1)) as usize;
                let slot_start = ((self.cursor >> shift) + k) << shift;
                if level > 0 {
                    upper = upper.min(slot_start);
                }
                // Minimal start time wins; on ties the *coarser* level
                // must cascade first so its entries join the finer slot
                // before that slot is drained.
                let better = match best {
                    None => true,
                    Some((bs, bl, _)) => slot_start < bs || (slot_start == bs && level > bl),
                };
                if better {
                    best = Some((slot_start, level, idx));
                }
            }
            // The scan just visited every upper level, so the bound is
            // exact again here (cascades below re-lower it via pushes).
            self.upper_min = upper;
            // Overflow entries re-enter the wheels once they are the
            // earliest pending work (their deltas shrink as the cursor
            // advances; nothing in the wheels is earlier, so jumping the
            // cursor to the overflow minimum skips no event).
            if !self.overflow.is_empty() && best.is_none_or(|(bs, _, _)| self.overflow_min < bs) {
                self.reseed_overflow();
                continue;
            }
            let Some((slot_start, level, idx)) = best else {
                return false;
            };
            self.occupied[level] &= !(1 << idx);
            self.cursor = slot_start;
            if level == 0 {
                let slot = &mut self.slots[idx];
                self.near.append(slot);
                self.near
                    .sort_unstable_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
                self.near_end = slot_start + (1 << G0_BITS);
                return true;
            }
            // Cascade: re-insert the coarse slot's entries; each lands at
            // a strictly lower level (its delta is below this level's
            // slot width). The slot vector is swapped back afterwards so
            // its capacity is reused.
            let mut batch = std::mem::take(&mut self.slots[level * SLOTS + idx]);
            for e in batch.drain(..) {
                self.push_wheel(e);
            }
            self.slots[level * SLOTS + idx] = batch;
        }
    }

    /// Moves overflow entries whose horizon the cursor has reached back
    /// into the wheels. Only called when overflow holds the earliest
    /// pending entry, so advancing the cursor is safe.
    fn reseed_overflow(&mut self) {
        self.cursor = self.cursor.max(self.overflow_min & !((1 << G0_BITS) - 1));
        let batch = std::mem::take(&mut self.overflow);
        self.overflow_min = u64::MAX;
        for e in batch {
            // push_wheel re-files entries still past the horizon (the
            // minimum itself always lands in the wheels, so this makes
            // progress every time).
            self.push_wheel(e);
        }
    }
}

/// The event queue and clock of a simulation run.
///
/// A `Scheduler` owns virtual time, the pending-event timing wheel and
/// the run's root [`Rng`]. Two events scheduled for the same instant are
/// delivered in the order they were scheduled, making every run
/// deterministic.
///
/// See the [crate-level example](crate) for typical usage.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    queue: TimerWheel<E>,
    rng: Rng,
    processed: u64,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler at time zero with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            rng: Rng::new(seed),
            processed: 0,
        }
    }

    /// Creates a scheduler whose tie-break sequence numbers start at
    /// `(shard as u64) << 48` instead of zero.
    ///
    /// A parallel run gives every shard its own scheduler; tagging the
    /// sequence space with the shard index keeps keys globally unique,
    /// so events transferred between shards (via
    /// [`Scheduler::mint_key`] / [`Scheduler::schedule_keyed`]) never
    /// collide with locally minted ones and `(at, key)` stays a total
    /// order across the whole cluster. A single shard minting more than
    /// 2^48 events would overflow into the next shard's tag; that is
    /// ~10^14 events, far beyond any run this engine targets.
    pub fn with_seq_base(seed: u64, shard: u16) -> Self {
        let mut s = Scheduler::new(seed);
        s.seq = (shard as u64) << 48;
        s
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The run's root random-number generator.
    ///
    /// Components that need decoupled streams should take
    /// `sched.rng().split()` once at setup.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `ev` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are delivered at the current time (the
    /// simulation clock never runs backwards).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(at.as_nanos(), self.seq, ev);
    }

    /// Schedules `ev` after the given delay.
    ///
    /// A delay that would overflow virtual time saturates to
    /// [`SimTime::MAX`], the queue's far-future sentinel: the event is
    /// still delivered (last, at the end of time) rather than wrapping
    /// around and corrupting the order.
    pub fn schedule_in(&mut self, delay: SimDuration, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Schedules `ev` at the current instant (after already-queued events
    /// for this instant).
    pub fn schedule_now(&mut self, ev: E) {
        self.schedule_at(self.now, ev);
    }

    /// Mints a fresh tie-break key without scheduling anything.
    ///
    /// A shard sending an event to another shard mints the key on the
    /// *sender* (where the causal order is known) and ships it with the
    /// message; the receiver inserts it verbatim via
    /// [`Scheduler::schedule_keyed`]. Because each shard's sequence
    /// space carries its own tag (see [`Scheduler::with_seq_base`]),
    /// sender-minted keys can never collide with receiver-local ones.
    pub fn mint_key(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Schedules `ev` at `at` under a caller-supplied tie-break key
    /// (from [`Scheduler::mint_key`], possibly on another shard's
    /// scheduler) instead of minting a local one.
    ///
    /// Same past-clamping rule as [`Scheduler::schedule_at`].
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, ev: E) {
        let at = at.max(self.now);
        self.queue.push(at.as_nanos(), key, ev);
    }

    /// Timestamp (in nanoseconds) of the earliest pending event, or
    /// `None` when the queue is empty.
    ///
    /// Takes `&mut self` because peeking may cascade timing-wheel
    /// levels; it never pops or alters the pending set. Epoch drivers
    /// use this to compute the global minimum that bounds the next
    /// synchronization window.
    pub fn next_event_at(&mut self) -> Option<u64> {
        self.queue.peek_at()
    }

    /// Pops the next event if it is due at or before `until`, advancing
    /// the clock. This is the single dequeue path shared by
    /// [`Scheduler::run_until`] and [`Scheduler::step`], so the
    /// backwards-time guard holds on every route out of the queue.
    /// Public so epoch drivers (see `dsb_simcore::epoch`) can drain a
    /// shard's bounded window without going through a [`Model`].
    pub fn pop_due(&mut self, until: SimTime) -> Option<E> {
        let at = self.queue.peek_at()?;
        if at > until.as_nanos() {
            return None;
        }
        let e = self.queue.pop().expect("peeked entry disappeared");
        debug_assert!(e.at >= self.now.as_nanos(), "time went backwards");
        self.now = SimTime::from_nanos(e.at);
        self.processed += 1;
        Some(e.ev)
    }

    /// Runs the model until the event queue is empty.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) {
        self.run_until(model, SimTime::MAX);
    }

    /// Runs the model until the queue is empty or the next event would be
    /// after `until`; the clock is left at the last processed event (or
    /// unchanged if none ran).
    pub fn run_until<M: Model<Event = E>>(&mut self, model: &mut M, until: SimTime) {
        while let Some(ev) = self.pop_due(until) {
            model.handle(self, ev);
        }
    }

    /// Runs at most `n` further events (for stepping in tests/debuggers).
    /// Returns the number actually processed.
    pub fn step<M: Model<Event = E>>(&mut self, model: &mut M, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            let Some(ev) = self.pop_due(SimTime::MAX) else {
                break;
            };
            model.handle(self, ev);
            done += 1;
        }
        done
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_testkit::{gen, prop, prop_assert_eq};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    // -- The retired comparison-heap queue, kept as the differential
    //    reference: the timing wheel must reproduce its pop order
    //    byte-for-byte.

    struct HeapScheduled<E> {
        at: u64,
        seq: u64,
        ev: E,
    }

    impl<E> PartialEq for HeapScheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for HeapScheduled<E> {}
    impl<E> PartialOrd for HeapScheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for HeapScheduled<E> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Reversed: BinaryHeap is a max-heap, we need earliest-first.
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    /// Reference queue with the exact semantics of the pre-wheel engine.
    struct HeapQueue<E> {
        heap: BinaryHeap<HeapScheduled<E>>,
    }

    impl<E> HeapQueue<E> {
        fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
            }
        }
        fn push(&mut self, at: u64, seq: u64, ev: E) {
            self.heap.push(HeapScheduled { at, seq, ev });
        }
        fn pop(&mut self) -> Option<(u64, u64, E)> {
            self.heap.pop().map(|s| (s.at, s.seq, s.ev))
        }
    }

    // -- Pop-order model tests (shared with the old engine).

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tag(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            match ev {
                Ev::Tag(t) => self.seen.push((sched.now().as_nanos(), t)),
                Ev::Chain(n) => {
                    self.seen.push((sched.now().as_nanos(), n));
                    if n > 0 {
                        sched.schedule_in(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(30), Ev::Tag(3));
        s.schedule_at(SimTime::from_nanos(10), Ev::Tag(1));
        s.schedule_at(SimTime::from_nanos(20), Ev::Tag(2));
        let mut m = Recorder::default();
        s.run(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(s.events_processed(), 3);
    }

    #[test]
    fn ties_delivered_in_schedule_order() {
        let mut s = Scheduler::new(0);
        for i in 0..50 {
            s.schedule_at(SimTime::from_nanos(5), Ev::Tag(i));
        }
        let mut m = Recorder::default();
        s.run(&mut m);
        let tags: Vec<u32> = m.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::ZERO, Ev::Chain(5));
        let mut m = Recorder::default();
        s.run(&mut m);
        assert_eq!(s.now(), SimTime::from_nanos(50));
        assert_eq!(m.seen.len(), 6);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(10), Ev::Tag(1));
        s.schedule_at(SimTime::from_nanos(100), Ev::Tag(2));
        let mut m = Recorder::default();
        s.run_until(&mut m, SimTime::from_nanos(50));
        assert_eq!(m.seen, vec![(10, 1)]);
        assert_eq!(s.pending(), 1);
        // Can resume afterwards.
        s.run(&mut m);
        assert_eq!(m.seen.len(), 2);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(100), Ev::Tag(1));
        let mut m = Recorder::default();
        s.run(&mut m);
        s.schedule_at(SimTime::from_nanos(5), Ev::Tag(2)); // in the past
        s.run(&mut m);
        assert_eq!(m.seen, vec![(100, 1), (100, 2)]);
    }

    #[test]
    fn step_limits_event_count() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::ZERO, Ev::Chain(10));
        let mut m = Recorder::default();
        assert_eq!(s.step(&mut m, 3), 3);
        assert_eq!(m.seen.len(), 3);
        assert_eq!(s.step(&mut m, 100), 8);
    }

    // -- New coverage for the wheel's distinct regimes.

    #[test]
    fn far_future_events_survive_overflow() {
        let mut s = Scheduler::new(0);
        // Beyond the wheel horizon: overflow ring.
        s.schedule_at(SimTime::from_nanos(H_TOP * 3 + 17), Ev::Tag(2));
        // The saturation sentinel itself.
        s.schedule_at(SimTime::MAX, Ev::Tag(3));
        s.schedule_at(SimTime::from_nanos(40), Ev::Tag(1));
        let mut m = Recorder::default();
        s.run(&mut m);
        assert_eq!(m.seen, vec![(40, 1), (H_TOP * 3 + 17, 2), (u64::MAX, 3)]);
    }

    #[test]
    fn schedule_in_saturates_to_end_of_time() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(10), Ev::Tag(1));
        let mut m = Recorder::default();
        s.run(&mut m);
        // now = 10; MAX delay saturates instead of wrapping to the past.
        s.schedule_in(SimDuration::MAX, Ev::Tag(9));
        s.schedule_at(SimTime::from_nanos(20), Ev::Tag(2));
        s.run(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (u64::MAX, 9)]);
    }

    #[test]
    fn cross_level_cascade_preserves_tie_order() {
        // Two events at the same far instant, scheduled at different
        // times: one cascades down from a coarse level, the other is
        // inserted directly once the instant is near. Seq order must
        // still decide.
        let t = 1 << (G0_BITS + SLOT_BITS + 3); // level-1 territory
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(t), Ev::Tag(1)); // seq 1, coarse
        s.schedule_at(SimTime::from_nanos(t - 5), Ev::Tag(0));
        let mut m = Recorder::default();
        // Drain the first event; now sits just below t.
        s.run_until(&mut m, SimTime::from_nanos(t - 5));
        s.schedule_at(SimTime::from_nanos(t), Ev::Tag(2)); // seq 3, direct
        s.run(&mut m);
        assert_eq!(m.seen, vec![(t - 5, 0), (t, 1), (t, 2)]);
    }

    /// Satellite regression: `step` and `run_until` interleavings must
    /// produce byte-identical event order to an uninterrupted `run`
    /// (they share one dequeue routine, including the backwards-time
    /// guard).
    #[test]
    fn step_run_until_interleaving_matches_pure_run() {
        let build = |s: &mut Scheduler<Ev>| {
            s.schedule_at(SimTime::ZERO, Ev::Chain(7));
            for i in 0..20 {
                s.schedule_at(SimTime::from_nanos(i * 13 % 60), Ev::Tag(i as u32));
            }
            s.schedule_at(SimTime::from_nanos(45), Ev::Chain(3));
        };
        let mut pure = Scheduler::new(0);
        build(&mut pure);
        let mut pm = Recorder::default();
        pure.run(&mut pm);

        let mut inter = Scheduler::new(0);
        build(&mut inter);
        let mut im = Recorder::default();
        loop {
            if inter.step(&mut im, 3) == 0 {
                break;
            }
            inter.run_until(&mut im, inter.now() + SimDuration::from_nanos(7));
            if inter.step(&mut im, 1) == 0 {
                break;
            }
        }
        inter.run(&mut im);
        assert_eq!(im.seen, pm.seen);
        assert_eq!(im.seen.len() as u64, inter.events_processed());
        assert_eq!(inter.events_processed(), pure.events_processed());
    }

    // -- Wheel-vs-heap differential property test.

    /// One generated scheduling action: `pops` events are drained, then
    /// an event is pushed `delta` ns after the last popped time (clamped
    /// like the real scheduler clamps past events).
    #[derive(Debug, Clone)]
    struct Op {
        pops: u8,
        delta: u64,
    }

    impl dsb_testkit::Shrink for Op {
        fn shrink(&self) -> Vec<Self> {
            let mut out = Vec::new();
            if self.pops > 0 {
                out.push(Op {
                    pops: self.pops / 2,
                    delta: self.delta,
                });
            }
            if self.delta > 0 {
                out.push(Op {
                    pops: self.pops,
                    delta: self.delta / 2,
                });
            }
            out
        }
    }

    // `dsb_testkit::Rng` rather than `crate::rng::Rng`: inside this
    // crate's unit tests, testkit links against the *published* simcore
    // build, so its Rng is a distinct type from `crate::rng::Rng`.
    fn gen_delta(r: &mut dsb_testkit::Rng) -> u64 {
        // Mix the wheel's regimes: same-instant bursts, sub-slot hops,
        // each wheel level, past-clamped (handled by caller), overflow
        // and the MAX sentinel.
        match gen::u32_in(r, 0, 9) {
            0 => 0,
            1 => gen::u64_in(r, 1, 1 << G0_BITS),
            2 => gen::u64_in(r, 1, 1 << (G0_BITS + SLOT_BITS)),
            3 => gen::u64_in(r, 1, 1 << (G0_BITS + 2 * SLOT_BITS)),
            4 => gen::u64_in(r, 1, 1 << (G0_BITS + 4 * SLOT_BITS)),
            5 => gen::u64_in(r, 1, H_TOP - 1),
            6 => gen::u64_in(r, H_TOP, u64::MAX / 2),
            7 => u64::MAX, // saturates: far-future sentinel
            _ => gen::u64_in(r, 1, 1 << (G0_BITS + 1)),
        }
    }

    #[test]
    fn wheel_matches_heap_reference() {
        prop!(
            cases = 200,
            |rng| {
                gen::vec_with(rng, 1, 120, |r| Op {
                    pops: gen::u8_in(r, 0, 3),
                    delta: gen_delta(r),
                })
            },
            |ops: &Vec<Op>| {
                let mut wheel: TimerWheel<u32> = TimerWheel::new();
                let mut heap: HeapQueue<u32> = HeapQueue::new();
                let mut wheel_order = Vec::new();
                let mut heap_order = Vec::new();
                // Mirror the scheduler: a shared clock that follows pops
                // and clamps pushes into the past up to `now`.
                let mut now = 0u64;
                let mut seq = 0u64;
                let mut id = 0u32;
                for op in ops {
                    for _ in 0..op.pops {
                        let w = wheel.pop().map(|e| (e.at, e.seq, e.ev));
                        let h = heap.pop();
                        prop_assert_eq!(
                            w.as_ref().map(|e| (e.0, e.1)),
                            h.as_ref().map(|e| (e.0, e.1)),
                            "pop mismatch"
                        );
                        if let Some((at, s, ev)) = w {
                            now = now.max(at);
                            wheel_order.push((at, s, ev));
                        }
                        if let Some(e) = h {
                            heap_order.push(e);
                        }
                    }
                    // Even deltas push into the future; odd deltas aim into
                    // the past and get clamped to `now`, exactly like
                    // `Scheduler::schedule_at` clamps past events.
                    let at = if op.delta % 2 == 0 {
                        now.saturating_add(op.delta)
                    } else {
                        now.saturating_sub(op.delta).max(now)
                    };
                    seq += 1;
                    id += 1;
                    wheel.push(at, seq, id);
                    heap.push(at, seq, id);
                    // Same-instant burst half the time.
                    if op.pops == 0 {
                        seq += 1;
                        id += 1;
                        wheel.push(at, seq, id);
                        heap.push(at, seq, id);
                    }
                }
                // Drain both completely.
                while let Some(e) = wheel.pop() {
                    wheel_order.push((e.at, e.seq, e.ev));
                }
                while let Some(e) = heap.pop() {
                    heap_order.push(e);
                }
                prop_assert_eq!(&wheel_order, &heap_order, "drain order diverged");
                prop_assert_eq!(wheel.len(), 0, "wheel len accounting");
                Ok(())
            }
        );
    }
}
