//! The discrete-event loop: a [`Scheduler`] of typed events and the
//! [`Model`] trait that consumes them.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// A simulation model: owns all mutable world state and interprets events.
///
/// The event type is typically one enum covering every occurrence in the
/// modelled system (message deliveries, compute completions, timer ticks…).
/// [`Scheduler::run`] pops events in timestamp order and hands them to
/// [`Model::handle`], which may schedule further events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Processes one event at the scheduler's current virtual time.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, ev: Self::Event);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        // Ties broken by insertion sequence for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The event queue and clock of a simulation run.
///
/// A `Scheduler` owns virtual time, the pending-event heap and the run's
/// root [`Rng`]. Two events scheduled for the same instant are delivered in
/// the order they were scheduled, making every run deterministic.
///
/// See the [crate-level example](crate) for typical usage.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
    rng: Rng,
    processed: u64,
}

impl<E> Scheduler<E> {
    /// Creates a scheduler at time zero with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            rng: Rng::new(seed),
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// The run's root random-number generator.
    ///
    /// Components that need decoupled streams should take
    /// `sched.rng().split()` once at setup.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Schedules `ev` at the absolute instant `at`.
    ///
    /// Events scheduled in the past are delivered at the current time (the
    /// simulation clock never runs backwards).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        let at = at.max(self.now);
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            ev,
        });
    }

    /// Schedules `ev` after the given delay.
    pub fn schedule_in(&mut self, delay: SimDuration, ev: E) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Schedules `ev` at the current instant (after already-queued events
    /// for this instant).
    pub fn schedule_now(&mut self, ev: E) {
        self.schedule_at(self.now, ev);
    }

    /// Runs the model until the event queue is empty.
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M) {
        self.run_until(model, SimTime::MAX);
    }

    /// Runs the model until the queue is empty or the next event would be
    /// after `until`; the clock is left at the last processed event (or
    /// unchanged if none ran).
    pub fn run_until<M: Model<Event = E>>(&mut self, model: &mut M, until: SimTime) {
        while let Some(head) = self.heap.peek() {
            if head.at > until {
                break;
            }
            let sc = self.heap.pop().expect("peeked");
            debug_assert!(sc.at >= self.now, "time went backwards");
            self.now = sc.at;
            self.processed += 1;
            model.handle(self, sc.ev);
        }
    }

    /// Runs at most `n` further events (for stepping in tests/debuggers).
    /// Returns the number actually processed.
    pub fn step<M: Model<Event = E>>(&mut self, model: &mut M, n: u64) -> u64 {
        let mut done = 0;
        while done < n {
            let Some(sc) = self.heap.pop() else { break };
            self.now = sc.at;
            self.processed += 1;
            model.handle(self, sc.ev);
            done += 1;
        }
        done
    }
}

impl<E> std::fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tag(u32),
        Chain(u32),
    }

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            match ev {
                Ev::Tag(t) => self.seen.push((sched.now().as_nanos(), t)),
                Ev::Chain(n) => {
                    self.seen.push((sched.now().as_nanos(), n));
                    if n > 0 {
                        sched.schedule_in(SimDuration::from_nanos(10), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(30), Ev::Tag(3));
        s.schedule_at(SimTime::from_nanos(10), Ev::Tag(1));
        s.schedule_at(SimTime::from_nanos(20), Ev::Tag(2));
        let mut m = Recorder::default();
        s.run(&mut m);
        assert_eq!(m.seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(s.events_processed(), 3);
    }

    #[test]
    fn ties_delivered_in_schedule_order() {
        let mut s = Scheduler::new(0);
        for i in 0..50 {
            s.schedule_at(SimTime::from_nanos(5), Ev::Tag(i));
        }
        let mut m = Recorder::default();
        s.run(&mut m);
        let tags: Vec<u32> = m.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::ZERO, Ev::Chain(5));
        let mut m = Recorder::default();
        s.run(&mut m);
        assert_eq!(s.now(), SimTime::from_nanos(50));
        assert_eq!(m.seen.len(), 6);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(10), Ev::Tag(1));
        s.schedule_at(SimTime::from_nanos(100), Ev::Tag(2));
        let mut m = Recorder::default();
        s.run_until(&mut m, SimTime::from_nanos(50));
        assert_eq!(m.seen, vec![(10, 1)]);
        assert_eq!(s.pending(), 1);
        // Can resume afterwards.
        s.run(&mut m);
        assert_eq!(m.seen.len(), 2);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::from_nanos(100), Ev::Tag(1));
        let mut m = Recorder::default();
        s.run(&mut m);
        s.schedule_at(SimTime::from_nanos(5), Ev::Tag(2)); // in the past
        s.run(&mut m);
        assert_eq!(m.seen, vec![(100, 1), (100, 2)]);
    }

    #[test]
    fn step_limits_event_count() {
        let mut s = Scheduler::new(0);
        s.schedule_at(SimTime::ZERO, Ev::Chain(10));
        let mut m = Recorder::default();
        assert_eq!(s.step(&mut m, 3), 3);
        assert_eq!(m.seen.len(), 3);
        assert_eq!(s.step(&mut m, 100), 8);
    }
}
