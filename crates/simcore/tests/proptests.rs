//! Property-based tests for the simulation kernel's data structures.

use proptest::prelude::*;

use dsb_simcore::{
    Dist, Histogram, MeanVar, Model, Rng, Scheduler, SimDuration, SimTime, UtilizationTracker,
    WindowedSeries, Zipf,
};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

proptest! {
    /// Quantiles are monotone in q and bracketed by min/max.
    #[test]
    fn histogram_quantiles_monotone(values in prop::collection::vec(0u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
        let mut prev = 0;
        for &q in &qs {
            let x = h.quantile(q);
            prop_assert!(x >= prev, "quantile({q}) = {x} < previous {prev}");
            prev = x;
        }
        prop_assert!(h.quantile(0.0) >= h.min());
        prop_assert_eq!(h.quantile(1.0), h.max());
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Quantile estimates stay within the documented ~3% relative error of
    /// the exact order statistic (plus one bucket at the low end).
    #[test]
    fn histogram_quantile_error_bounded(
        mut values in prop::collection::vec(1u64..1_000_000_000, 10..400),
        qi in 0usize..5,
    ) {
        let q = [0.1, 0.25, 0.5, 0.9, 0.99][qi];
        let mut h = Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let est = h.quantile(q) as f64;
        prop_assert!(
            (est - exact).abs() <= exact * 0.04 + 2.0,
            "q={q}: est {est} exact {exact}"
        );
    }

    /// Merging histograms is equivalent to recording the union.
    #[test]
    fn histogram_merge_union(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::default();
        let mut hb = Histogram::default();
        let mut hu = Histogram::default();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        for &q in &[0.1, 0.5, 0.9, 1.0] {
            prop_assert_eq!(ha.quantile(q), hu.quantile(q));
        }
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.min(), hu.min());
    }
}

// ---------------------------------------------------------------------------
// MeanVar
// ---------------------------------------------------------------------------

proptest! {
    /// Welford matches the naive two-pass computation.
    #[test]
    fn meanvar_matches_naive(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut mv = MeanVar::new();
        for &v in &values {
            mv.record(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((mv.mean() - mean).abs() <= mean.abs() * 1e-9 + 1e-6);
        prop_assert!((mv.variance() - var).abs() <= var.abs() * 1e-6 + 1e-3);
    }
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        (0.0f64..1e6).prop_map(Dist::constant),
        (0.1f64..1e5, 1.0f64..2.0).prop_map(|(lo, f)| Dist::uniform(lo, lo * f + 1.0)),
        (0.1f64..1e5).prop_map(Dist::exp),
        (1u32..8, 0.1f64..1e5).prop_map(|(k, m)| Dist::erlang(k, m)),
        (0.1f64..1e5, 0.05f64..1.2).prop_map(|(m, s)| Dist::log_normal(m, s)),
        (1.05f64..3.0, 1.0f64..100.0).prop_map(|(a, lo)| Dist::pareto(a, lo, lo * 50.0)),
    ]
}

proptest! {
    /// All samples are non-negative and finite; the empirical mean of many
    /// samples approaches the analytic mean.
    #[test]
    fn dist_samples_sane(d in arb_dist(), seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let n = 30_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0, "bad sample {x} from {d:?}");
            sum += x;
        }
        let mean = sum / n as f64;
        let analytic = d.mean();
        prop_assert!(
            (mean - analytic).abs() <= analytic * 0.2 + 1e-6,
            "{d:?}: empirical {mean} vs analytic {analytic}"
        );
    }

    /// Scaling a distribution scales its mean exactly.
    #[test]
    fn dist_scaled_mean(d in arb_dist(), k in 0.1f64..10.0) {
        let s = d.scaled(k);
        prop_assert!((s.mean() - d.mean() * k).abs() <= d.mean() * k * 1e-9 + 1e-9);
    }

    /// Zipf pmf is a normalized, non-increasing distribution.
    #[test]
    fn zipf_pmf_valid(n in 1usize..2000, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let p = z.pmf(i);
            prop_assert!(p >= -1e-12);
            prop_assert!(p <= prev + 1e-12, "pmf not monotone at {i}");
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------------
// Scheduler ordering
// ---------------------------------------------------------------------------

struct Recorder {
    seen: Vec<(u64, usize)>,
}

enum REv {
    Tag(usize),
}

impl Model for Recorder {
    type Event = REv;
    fn handle(&mut self, sched: &mut Scheduler<REv>, ev: REv) {
        let REv::Tag(i) = ev;
        self.seen.push((sched.now().as_nanos(), i));
    }
}

proptest! {
    /// Events fire in non-decreasing time order; equal times preserve the
    /// schedule order.
    #[test]
    fn scheduler_total_order(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut sched = Scheduler::new(0);
        for (i, &t) in times.iter().enumerate() {
            sched.schedule_at(SimTime::from_nanos(t), REv::Tag(i));
        }
        let mut m = Recorder { seen: Vec::new() };
        sched.run(&mut m);
        prop_assert_eq!(m.seen.len(), times.len());
        for w in m.seen.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie not FIFO");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Utilization / windows
// ---------------------------------------------------------------------------

proptest! {
    /// Busy time is conserved: the per-window sums equal the interval sum.
    #[test]
    fn utilization_conserves_busy_time(
        intervals in prop::collection::vec((0u64..100_000u64, 1u64..50_000u64), 0..50),
    ) {
        let window = SimDuration::from_micros(10);
        let mut u = UtilizationTracker::new(window, 1);
        let mut total = 0u64;
        for &(start, len) in &intervals {
            u.add_busy(SimTime::from_nanos(start), SimTime::from_nanos(start + len));
            total += len;
        }
        let tracked: f64 = (0..u.window_count())
            .map(|i| u.utilization(i) * window.as_nanos() as f64)
            .sum();
        prop_assert!((tracked - total as f64).abs() < 1.0, "tracked {tracked} vs {total}");
    }

    /// Windowed series place every sample in exactly one window.
    #[test]
    fn windowed_series_conserves_counts(
        samples in prop::collection::vec((0u64..10_000_000u64, 0u64..1000u64), 0..300),
    ) {
        let mut s = WindowedSeries::new(SimDuration::from_micros(100));
        for &(at, v) in &samples {
            s.record(SimTime::from_nanos(at), v);
        }
        let total: u64 = (0..s.window_count()).map(|i| s.count(i)).sum();
        prop_assert_eq!(total, samples.len() as u64);
        prop_assert_eq!(s.total().count(), samples.len() as u64);
    }
}
