//! Property-based tests for the simulation kernel's data structures,
//! on the in-repo `dsb-testkit` engine.

use dsb_simcore::{
    Dist, Histogram, MeanVar, Model, Rng, Scheduler, SimDuration, SimTime, UtilizationTracker,
    WindowedSeries, Zipf,
};
use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq};

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Quantiles are monotone in q and bracketed by min/max.
#[test]
fn histogram_quantiles_monotone() {
    prop!(
        |rng| gen::vec_with(rng, 1, 500, |r| gen::u64_in(r, 0, 10_000_000_000)),
        |values: &Vec<u64>| {
            if values.is_empty() {
                return Ok(()); // outside the generator's domain (shrink artifact)
            }
            let mut h = Histogram::default();
            for &v in values {
                h.record(v);
            }
            let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
            let mut prev = 0;
            for &q in &qs {
                let x = h.quantile(q);
                prop_assert!(x >= prev, "quantile({q}) = {x} < previous {prev}");
                prev = x;
            }
            prop_assert!(h.quantile(0.0) >= h.min());
            prop_assert_eq!(h.quantile(1.0), h.max());
            prop_assert_eq!(h.count(), values.len() as u64);
            Ok(())
        }
    );
}

/// Quantile estimates stay within the documented ~3% relative error of
/// the exact order statistic (plus one bucket at the low end).
#[test]
fn histogram_quantile_error_bounded() {
    prop!(
        |rng| {
            (
                gen::vec_with(rng, 10, 400, |r| gen::u64_in(r, 1, 1_000_000_000)),
                gen::usize_in(rng, 0, 5),
            )
        },
        |&(ref values, qi): &(Vec<u64>, usize)| {
            if values.is_empty() {
                return Ok(());
            }
            let q = [0.1, 0.25, 0.5, 0.9, 0.99][qi % 5];
            let mut h = Histogram::default();
            for &v in values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1] as f64;
            let est = h.quantile(q) as f64;
            prop_assert!(
                (est - exact).abs() <= exact * 0.04 + 2.0,
                "q={q}: est {est} exact {exact}"
            );
            Ok(())
        }
    );
}

/// Merging histograms is equivalent to recording the union.
#[test]
fn histogram_merge_union() {
    prop!(
        |rng| {
            (
                gen::vec_with(rng, 0, 200, |r| gen::u64_in(r, 0, 1_000_000)),
                gen::vec_with(rng, 0, 200, |r| gen::u64_in(r, 0, 1_000_000)),
            )
        },
        |&(ref a, ref b): &(Vec<u64>, Vec<u64>)| {
            let mut ha = Histogram::default();
            let mut hb = Histogram::default();
            let mut hu = Histogram::default();
            for &v in a {
                ha.record(v);
                hu.record(v);
            }
            for &v in b {
                hb.record(v);
                hu.record(v);
            }
            ha.merge(&hb);
            prop_assert_eq!(ha.count(), hu.count());
            for &q in &[0.1, 0.5, 0.9, 1.0] {
                prop_assert_eq!(ha.quantile(q), hu.quantile(q));
            }
            prop_assert_eq!(ha.max(), hu.max());
            prop_assert_eq!(ha.min(), hu.min());
            Ok(())
        }
    );
}

// ---------------------------------------------------------------------------
// MeanVar
// ---------------------------------------------------------------------------

/// Welford matches the naive two-pass computation.
#[test]
fn meanvar_matches_naive() {
    prop!(
        |rng| gen::vec_with(rng, 2, 200, |r| gen::f64_in(r, -1e6, 1e6)),
        |values: &Vec<f64>| {
            if values.len() < 2 {
                return Ok(());
            }
            let mut mv = MeanVar::new();
            for &v in values {
                mv.record(v);
            }
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((mv.mean() - mean).abs() <= mean.abs() * 1e-9 + 1e-6);
            prop_assert!((mv.variance() - var).abs() <= var.abs() * 1e-6 + 1e-3);
            Ok(())
        }
    );
}

// ---------------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------------

/// A plain-data distribution descriptor: generated (and shrunk) as
/// primitives, turned into a [`Dist`] inside the property. `kind`
/// selects the family, `p1`/`p2` are uniform in `[0, 1)` and mapped to
/// each family's parameter ranges.
type DistSpec = (u8, f64, f64);

fn arb_dist_spec(rng: &mut Rng) -> DistSpec {
    (gen::u8_in(rng, 0, 6), rng.f64(), rng.f64())
}

fn make_dist((kind, p1, p2): DistSpec) -> Dist {
    let p1 = p1.clamp(0.0, 1.0);
    let p2 = p2.clamp(0.0, 1.0);
    match kind % 6 {
        0 => Dist::constant(p1 * 1e6),
        1 => {
            let lo = 0.1 + p1 * 1e5;
            let f = 1.0 + p2;
            Dist::uniform(lo, lo * f + 1.0)
        }
        2 => Dist::exp(0.1 + p1 * 1e5),
        3 => Dist::erlang(1 + (p1 * 7.0) as u32, 0.1 + p2 * 1e5),
        4 => Dist::log_normal(0.1 + p1 * 1e5, 0.05 + p2 * 1.15),
        _ => {
            let lo = 1.0 + p2 * 99.0;
            Dist::pareto(1.05 + p1 * 1.95, lo, lo * 50.0)
        }
    }
}

/// All samples are non-negative and finite; the empirical mean of many
/// samples approaches the analytic mean.
#[test]
fn dist_samples_sane() {
    prop!(
        |rng| (arb_dist_spec(rng), gen::u64_in(rng, 0, 1_000_000)),
        |&(spec, seed): &(DistSpec, u64)| {
            let d = make_dist(spec);
            let mut rng = Rng::new(seed);
            let n = 30_000;
            let mut sum = 0.0;
            for _ in 0..n {
                let x = d.sample(&mut rng);
                prop_assert!(x.is_finite() && x >= 0.0, "bad sample {x} from {d:?}");
                sum += x;
            }
            let mean = sum / n as f64;
            let analytic = d.mean();
            prop_assert!(
                (mean - analytic).abs() <= analytic * 0.2 + 1e-6,
                "{d:?}: empirical {mean} vs analytic {analytic}"
            );
            Ok(())
        }
    );
}

/// Scaling a distribution scales its mean exactly.
#[test]
fn dist_scaled_mean() {
    prop!(
        |rng| (arb_dist_spec(rng), gen::f64_in(rng, 0.1, 10.0)),
        |&(spec, k): &(DistSpec, f64)| {
            let d = make_dist(spec);
            let k = k.abs().clamp(0.1, 10.0);
            let s = d.scaled(k);
            prop_assert!(
                (s.mean() - d.mean() * k).abs() <= d.mean() * k * 1e-9 + 1e-9,
                "{d:?} scaled by {k}"
            );
            Ok(())
        }
    );
}

/// Zipf pmf is a normalized, non-increasing distribution.
#[test]
fn zipf_pmf_valid() {
    prop!(
        |rng| (gen::usize_in(rng, 1, 2000), gen::f64_in(rng, 0.0, 3.0)),
        |&(n, s): &(usize, f64)| {
            let n = n.max(1);
            let s = s.abs().min(3.0);
            let z = Zipf::new(n, s);
            let mut total = 0.0;
            let mut prev = f64::INFINITY;
            for i in 0..n {
                let p = z.pmf(i);
                prop_assert!(p >= -1e-12);
                prop_assert!(p <= prev + 1e-12, "pmf not monotone at {i}");
                prev = p;
                total += p;
            }
            prop_assert!((total - 1.0).abs() < 1e-9);
            Ok(())
        }
    );
}

// ---------------------------------------------------------------------------
// Scheduler ordering
// ---------------------------------------------------------------------------

struct Recorder {
    seen: Vec<(u64, usize)>,
}

enum REv {
    Tag(usize),
}

impl Model for Recorder {
    type Event = REv;
    fn handle(&mut self, sched: &mut Scheduler<REv>, ev: REv) {
        let REv::Tag(i) = ev;
        self.seen.push((sched.now().as_nanos(), i));
    }
}

/// Events fire in non-decreasing time order; equal times preserve the
/// schedule order.
#[test]
fn scheduler_total_order() {
    prop!(
        |rng| gen::vec_with(rng, 1, 300, |r| gen::u64_in(r, 0, 1_000)),
        |times: &Vec<u64>| {
            let mut sched = Scheduler::new(0);
            for (i, &t) in times.iter().enumerate() {
                sched.schedule_at(SimTime::from_nanos(t), REv::Tag(i));
            }
            let mut m = Recorder { seen: Vec::new() };
            sched.run(&mut m);
            prop_assert_eq!(m.seen.len(), times.len());
            for w in m.seen.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards");
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "tie not FIFO");
                }
            }
            Ok(())
        }
    );
}

// ---------------------------------------------------------------------------
// Utilization / windows
// ---------------------------------------------------------------------------

/// Busy time is conserved: the per-window sums equal the interval sum.
#[test]
fn utilization_conserves_busy_time() {
    prop!(
        |rng| {
            gen::vec_with(rng, 0, 50, |r| {
                (gen::u64_in(r, 0, 100_000), gen::u64_in(r, 1, 50_000))
            })
        },
        |intervals: &Vec<(u64, u64)>| {
            let window = SimDuration::from_micros(10);
            let mut u = UtilizationTracker::new(window, 1);
            let mut total = 0u64;
            for &(start, len) in intervals {
                let len = len.max(1);
                u.add_busy(SimTime::from_nanos(start), SimTime::from_nanos(start + len));
                total += len;
            }
            let tracked: f64 = (0..u.window_count())
                .map(|i| u.utilization(i) * window.as_nanos() as f64)
                .sum();
            prop_assert!(
                (tracked - total as f64).abs() < 1.0,
                "tracked {tracked} vs {total}"
            );
            Ok(())
        }
    );
}

/// A sample landing exactly on a window edge is assigned to exactly one
/// window (the one opening at that instant), and counts are conserved
/// across the rollover: recording at `k*w - 1`, `k*w`, and `k*w + 1`
/// yields one sample left of the edge and two in the new window.
#[test]
fn windowed_series_edge_samples_land_in_one_window() {
    prop!(
        |rng| {
            (
                gen::u64_in(rng, 1, 10_000),
                gen::vec_with(rng, 1, 100, |r| gen::u64_in(r, 1, 200)),
            )
        },
        |&(w, ref ks): &(u64, Vec<u64>)| {
            let w = w.max(1);
            let window = SimDuration::from_nanos(w);
            for &k in ks {
                let k = k.max(1);
                let edge = k * w;
                let mut s = WindowedSeries::new(window);
                s.record(SimTime::from_nanos(edge), 1);
                // Exactly one window holds the edge sample...
                let holders: Vec<usize> =
                    (0..s.window_count()).filter(|&i| s.count(i) > 0).collect();
                prop_assert_eq!(holders.len(), 1, "edge {edge} w {w}");
                // ...and it is the window that *opens* at the edge.
                prop_assert_eq!(holders[0], k as usize);
                // Rollover conserves counts: neighbors split around the edge.
                s.record(SimTime::from_nanos(edge - 1), 2);
                if w > 1 {
                    prop_assert_eq!(s.count(k as usize - 1), 1);
                    prop_assert_eq!(s.count(k as usize), 1);
                }
                s.record(SimTime::from_nanos(edge + 1), 3);
                let total: u64 = (0..s.window_count()).map(|i| s.count(i)).sum();
                prop_assert_eq!(total, 3);
            }
            Ok(())
        }
    );
}

/// Windowed series place every sample in exactly one window.
#[test]
fn windowed_series_conserves_counts() {
    prop!(
        |rng| {
            gen::vec_with(rng, 0, 300, |r| {
                (gen::u64_in(r, 0, 10_000_000), gen::u64_in(r, 0, 1000))
            })
        },
        |samples: &Vec<(u64, u64)>| {
            let mut s = WindowedSeries::new(SimDuration::from_micros(100));
            for &(at, v) in samples {
                s.record(SimTime::from_nanos(at), v);
            }
            let total: u64 = (0..s.window_count()).map(|i| s.count(i)).sum();
            prop_assert_eq!(total, samples.len() as u64);
            prop_assert_eq!(s.total().count(), samples.len() as u64);
            Ok(())
        }
    );
}
