//! # dsb-trace — distributed tracing
//!
//! The paper's §3.7 instruments every service with a Dapper/Zipkin-style
//! tracing system that timestamps RPCs on arrival and departure at each
//! microservice, associates them with the end-to-end request, and stores
//! them centrally. All of the cluster-management analyses (per-tier latency
//! breakdowns, cascading-hotspot heatmaps, critical paths) are built on it.
//!
//! This crate is that system for the simulator:
//!
//! * [`Span`] — one RPC's lifetime at one service, with queueing /
//!   processing / network components separated (the paper's §5 network-vs-
//!   application split is read straight off these fields).
//! * [`TraceCollector`] — aggregates spans into per-service histograms and
//!   time-windowed series (for heatmaps), and retains a configurable sample
//!   of complete traces, like production collectors do.
//! * [`critical_path`] — attributes an end-to-end request's latency to the
//!   services on its critical path (the "last finishing child" walk used on
//!   Dapper-style traces).

#![warn(missing_docs)]

mod collector;
mod span;

pub use collector::{ServiceTraceStats, TraceCollector};
pub use span::{critical_path, Attribution, Span, SpanId, TraceId};
