//! The centralized trace collector.

use std::collections::BTreeMap;

use dsb_simcore::{mix64, Histogram, SimDuration, WindowedSeries};

use crate::span::{Span, TraceId};

/// Aggregated tracing statistics for one service.
#[derive(Debug, Clone)]
pub struct ServiceTraceStats {
    /// Distribution of span durations over the whole run.
    pub latency: Histogram,
    /// Per-window span durations (ns), for timeline heatmaps.
    pub latency_windows: WindowedSeries,
    /// Total time spans spent queued for workers/connections, ns.
    pub queue_ns: u128,
    /// Total application-processing time, ns.
    pub app_ns: u128,
    /// Total network-processing time, ns.
    pub net_ns: u128,
    /// Number of spans recorded.
    pub spans: u64,
}

impl ServiceTraceStats {
    fn new(window: SimDuration) -> Self {
        ServiceTraceStats {
            latency: Histogram::default(),
            latency_windows: WindowedSeries::new(window),
            queue_ns: 0,
            app_ns: 0,
            net_ns: 0,
            spans: 0,
        }
    }

    /// The `q`-quantile of span latency over the whole run, as a
    /// [`SimDuration`] — the convenience experiments kept reimplementing
    /// on top of `latency.quantile(...)`.
    pub fn p(&self, q: f64) -> SimDuration {
        self.latency.quantile_duration(q)
    }

    /// Fraction of processing time spent in network processing (the
    /// paper's Fig. 15 metric): `net / (net + app)`.
    pub fn net_fraction(&self) -> f64 {
        let denom = (self.net_ns + self.app_ns) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.net_ns as f64 / denom
        }
    }

    /// Adds another service's aggregates into this one (shard merge).
    fn merge(&mut self, other: &ServiceTraceStats) {
        self.latency.merge(&other.latency);
        self.latency_windows.merge(&other.latency_windows);
        self.queue_ns += other.queue_ns;
        self.app_ns += other.app_ns;
        self.net_ns += other.net_ns;
        self.spans += other.spans;
    }
}

/// The centralized collector: per-service aggregates plus a sample of
/// complete traces (like Zipkin's sampled storage).
///
/// Aggregation is unconditional and cheap; full span retention is sampled
/// per trace so long runs stay within memory. The paper verifies tracing
/// overhead is < 0.1 % of end-to-end latency; in the simulator collection
/// is free (no simulated cost), which we note in EXPERIMENTS.md.
///
/// # Example
///
/// ```
/// use dsb_simcore::{SimDuration, SimTime};
/// use dsb_trace::{Span, SpanId, TraceCollector, TraceId};
///
/// let mut col = TraceCollector::new(SimDuration::from_secs(1), 1.0, 7);
/// col.record(Span {
///     trace: TraceId(1),
///     id: SpanId(1),
///     parent: None,
///     service: 0,
///     endpoint: 0,
///     start: SimTime::ZERO,
///     end: SimTime::from_micros(150),
///     queue_time: SimDuration::ZERO,
///     app_time: SimDuration::from_micros(100),
///     net_time: SimDuration::from_micros(50),
/// });
/// let stats = col.service(0).unwrap();
/// assert_eq!(stats.spans, 1);
/// assert!((stats.net_fraction() - 1.0 / 3.0).abs() < 1e-9);
/// assert_eq!(col.sampled_traces().count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceCollector {
    window: SimDuration,
    sample_prob: f64,
    seed: u64,
    services: Vec<ServiceTraceStats>,
    sampled: BTreeMap<TraceId, Vec<Span>>,
    dropped: u64,
}

impl TraceCollector {
    /// Creates a collector with the given heatmap window width, trace
    /// sampling probability, and sampling seed.
    ///
    /// The per-trace keep/drop decision is a pure hash of `(seed,
    /// trace id)` rather than a stateful RNG draw: in a sharded run
    /// every shard owns its own collector, and all of them must reach
    /// the same verdict for a trace without coordinating — give them
    /// all the same seed and they do.
    pub fn new(window: SimDuration, sample_prob: f64, seed: u64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&sample_prob),
            "sample_prob {sample_prob} outside [0, 1]; clamping"
        );
        TraceCollector {
            window,
            sample_prob: sample_prob.clamp(0.0, 1.0),
            seed,
            services: Vec::new(),
            sampled: BTreeMap::new(),
            dropped: 0,
        }
    }

    /// The keyed sampling verdict for a trace: stateless, so identical
    /// on every shard and independent of record order.
    #[inline]
    fn keeps(&self, trace: TraceId) -> bool {
        // Top 53 bits of the mix as a uniform in [0, 1).
        let u = (mix64(self.seed ^ mix64(trace.0)) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.sample_prob
    }

    /// Records one completed span.
    pub fn record(&mut self, span: Span) {
        let idx = span.service as usize;
        if idx >= self.services.len() {
            let w = self.window;
            self.services
                .resize_with(idx + 1, || ServiceTraceStats::new(w));
        }
        let s = &mut self.services[idx];
        let dur = span.duration().as_nanos();
        s.latency.record(dur);
        s.latency_windows.record(span.end, dur);
        s.queue_ns += span.queue_time.as_nanos() as u128;
        s.app_ns += span.app_time.as_nanos() as u128;
        s.net_ns += span.net_time.as_nanos() as u128;
        s.spans += 1;

        // Fast path when sampling is off (the common configuration for
        // perf kernels): no trace ever qualifies, so skip the hash.
        if self.sample_prob == 0.0 {
            self.dropped += 1;
            return;
        }
        if self.keeps(span.trace) {
            self.sampled.entry(span.trace).or_default().push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Folds another collector (a shard's) into this one: per-service
    /// aggregates merge, sampled spans append per trace in call order,
    /// dropped counts add.
    ///
    /// Callers merging several shards must do so in a fixed order
    /// (shard 0, 1, 2, …) so the within-trace span order — and
    /// therefore any serialized trace output — is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the collectors disagree on window width, sampling
    /// probability, or sampling seed — merged verdicts would be
    /// inconsistent otherwise.
    pub fn merge_from(&mut self, other: &TraceCollector) {
        assert!(
            self.window == other.window
                && self.sample_prob == other.sample_prob
                && self.seed == other.seed,
            "cannot merge collectors with different configurations"
        );
        if other.services.len() > self.services.len() {
            let w = self.window;
            self.services
                .resize_with(other.services.len(), || ServiceTraceStats::new(w));
        }
        for (mine, theirs) in self.services.iter_mut().zip(&other.services) {
            mine.merge(theirs);
        }
        for (trace, spans) in &other.sampled {
            self.sampled
                .entry(*trace)
                .or_default()
                .extend(spans.iter().cloned());
        }
        self.dropped += other.dropped;
    }

    /// Aggregates for service `id`, if any span was recorded for it.
    pub fn service(&self, id: u32) -> Option<&ServiceTraceStats> {
        self.services.get(id as usize).filter(|s| s.spans > 0)
    }

    /// Number of services with at least one span.
    pub fn service_count(&self) -> usize {
        self.services.iter().filter(|s| s.spans > 0).count()
    }

    /// Iterates over retained complete traces.
    pub fn sampled_traces(&self) -> impl Iterator<Item = (&TraceId, &Vec<Span>)> {
        self.sampled.iter()
    }

    /// The spans of one sampled trace, if retained.
    pub fn trace(&self, id: TraceId) -> Option<&[Span]> {
        self.sampled.get(&id).map(Vec::as_slice)
    }

    /// Spans recorded but not retained (aggregation still happened).
    pub fn dropped_spans(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;
    use dsb_simcore::SimTime;

    fn span(trace: u64, svc: u32, start_us: u64, end_us: u64) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(trace * 100 + svc as u64),
            parent: None,
            service: svc,
            endpoint: 0,
            start: SimTime::from_micros(start_us),
            end: SimTime::from_micros(end_us),
            queue_time: SimDuration::from_micros(1),
            app_time: SimDuration::from_micros(5),
            net_time: SimDuration::from_micros(3),
        }
    }

    #[test]
    fn aggregates_per_service() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.0, 1);
        c.record(span(1, 0, 0, 100));
        c.record(span(2, 0, 0, 200));
        c.record(span(3, 5, 0, 50));
        assert_eq!(c.service_count(), 2);
        let s0 = c.service(0).unwrap();
        assert_eq!(s0.spans, 2);
        assert!(s0.latency.quantile(1.0) >= 190_000);
        assert!(c.service(1).is_none());
        assert!(c.service(99).is_none());
    }

    #[test]
    fn sampling_zero_drops_all_traces() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.0, 1);
        for i in 0..50 {
            c.record(span(i, 0, 0, 10));
        }
        assert_eq!(c.sampled_traces().count(), 0);
        assert_eq!(c.dropped_spans(), 50);
        // Aggregation unaffected by sampling.
        assert_eq!(c.service(0).unwrap().spans, 50);
    }

    #[test]
    fn sampling_one_keeps_all() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 1.0, 1);
        for i in 0..20 {
            c.record(span(i, 0, 0, 10));
        }
        assert_eq!(c.sampled_traces().count(), 20);
        assert_eq!(c.dropped_spans(), 0);
    }

    #[test]
    fn sampling_decision_consistent_within_trace() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.5, 42);
        for i in 0..200 {
            // 3 spans per trace.
            c.record(span(i, 0, 0, 10));
            c.record(span(i, 1, 0, 10));
            c.record(span(i, 2, 0, 10));
        }
        for (_, spans) in c.sampled_traces() {
            assert_eq!(spans.len(), 3, "trace must be kept or dropped whole");
        }
        let kept = c.sampled_traces().count();
        assert!((60..140).contains(&kept), "kept {kept} of 200");
    }

    #[test]
    fn p_quantile_convenience_matches_histogram() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.0, 1);
        for i in 0..100 {
            c.record(span(i, 0, 0, 10 * (i + 1)));
        }
        let s = c.service(0).unwrap();
        assert_eq!(s.p(0.5).as_nanos(), s.latency.quantile(0.5));
        assert_eq!(s.p(0.99).as_nanos(), s.latency.quantile(0.99));
        assert_eq!(s.p(1.0), s.latency.quantile_duration(1.0));
    }

    #[test]
    fn net_fraction_computed() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.0, 1);
        c.record(span(1, 0, 0, 10));
        let f = c.service(0).unwrap().net_fraction();
        assert!((f - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn windows_track_time() {
        let mut c = TraceCollector::new(SimDuration::from_secs(1), 0.0, 1);
        c.record(span(1, 0, 0, 100));
        c.record(span(2, 0, 1_500_000, 1_500_100));
        let s = c.service(0).unwrap();
        assert_eq!(s.latency_windows.count(0), 1);
        assert_eq!(s.latency_windows.count(1), 1);
    }
}
