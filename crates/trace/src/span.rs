//! Span records and critical-path attribution.

use dsb_simcore::{SimDuration, SimTime};

/// Identifies one end-to-end request across all of its RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span (one RPC's execution at one service).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// One RPC's lifetime at one service, in the style of Dapper/Zipkin.
///
/// `start` is the instant the request arrived at the service (before
/// queueing); `end` is the instant the response left. The component fields
/// decompose the interval the way the paper's §5 analysis does: time queued
/// for a worker, time executing application code, time executing network
/// (TCP/RPC) processing, and time blocked on downstream calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// End-to-end request this span belongs to.
    pub trace: TraceId,
    /// This span's id (unique within the run).
    pub id: SpanId,
    /// The caller's span, if any (`None` for the root/front-end span).
    pub parent: Option<SpanId>,
    /// Raw service id (assigned by `dsb-core`).
    pub service: u32,
    /// Raw endpoint index within the service.
    pub endpoint: u32,
    /// Arrival at the service.
    pub start: SimTime,
    /// Response departure.
    pub end: SimTime,
    /// Time spent waiting for a worker / connection.
    pub queue_time: SimDuration,
    /// Time executing application-domain compute.
    pub app_time: SimDuration,
    /// Time executing network processing (kernel + serialization).
    pub net_time: SimDuration,
}

impl Span {
    /// Total wall-clock duration of the span.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Latency attributed to one service by [`critical_path`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// Raw service id.
    pub service: u32,
    /// Nanoseconds of end-to-end latency attributed to this service.
    pub ns: u64,
}

/// Attributes the root span's latency to services along the critical path.
///
/// Uses the "last finishing child" walk standard for Dapper-style traces:
/// starting from a span's end, repeatedly find the child whose completion
/// gates progress, attribute the gap after it to the span's own service,
/// and recurse into the child. Returns per-service totals, sorted by
/// descending attribution. Returns an empty vector if `spans` is empty or
/// contains no root.
///
/// # Example
///
/// ```
/// use dsb_simcore::{SimDuration, SimTime};
/// use dsb_trace::{critical_path, Span, SpanId, TraceId};
///
/// let t = TraceId(1);
/// let mk = |id: u64, parent: Option<u64>, svc: u32, s: u64, e: u64| Span {
///     trace: t,
///     id: SpanId(id),
///     parent: parent.map(SpanId),
///     service: svc,
///     endpoint: 0,
///     start: SimTime::from_micros(s),
///     end: SimTime::from_micros(e),
///     queue_time: SimDuration::ZERO,
///     app_time: SimDuration::ZERO,
///     net_time: SimDuration::ZERO,
/// };
/// // Root 0..100us, child covering 20..90us.
/// let spans = vec![mk(1, None, 0, 0, 100), mk(2, Some(1), 7, 20, 90)];
/// let attr = critical_path(&spans);
/// let child = attr.iter().find(|a| a.service == 7).unwrap();
/// assert_eq!(child.ns, 70_000);
/// let root = attr.iter().find(|a| a.service == 0).unwrap();
/// assert_eq!(root.ns, 30_000);
/// ```
pub fn critical_path(spans: &[Span]) -> Vec<Attribution> {
    let Some(root) = spans.iter().find(|s| s.parent.is_none()) else {
        return Vec::new();
    };
    let mut totals: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    attribute(root, spans, &mut totals);
    let mut out: Vec<Attribution> = totals
        .into_iter()
        .map(|(service, ns)| Attribution { service, ns })
        .collect();
    out.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.service.cmp(&b.service)));
    out
}

fn attribute(span: &Span, spans: &[Span], totals: &mut std::collections::BTreeMap<u32, u64>) {
    let mut children: Vec<&Span> = spans.iter().filter(|s| s.parent == Some(span.id)).collect();
    // Walk backwards from the span's end.
    children.sort_by_key(|s| std::cmp::Reverse(s.end));
    let mut cursor = span.end;
    for child in children {
        if child.end <= cursor {
            // Gap after this child is the span's own work.
            *totals.entry(span.service).or_insert(0) += (cursor - child.end.min(cursor)).as_nanos();
            attribute(child, spans, totals);
            cursor = child.start.min(cursor);
        }
        // Children ending after the cursor overlap work already attributed;
        // they are off the critical path.
    }
    *totals.entry(span.service).or_insert(0) += (cursor - span.start.min(cursor)).as_nanos();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64, parent: Option<u64>, svc: u32, s_us: u64, e_us: u64) -> Span {
        Span {
            trace: TraceId(1),
            id: SpanId(id),
            parent: parent.map(SpanId),
            service: svc,
            endpoint: 0,
            start: SimTime::from_micros(s_us),
            end: SimTime::from_micros(e_us),
            queue_time: SimDuration::ZERO,
            app_time: SimDuration::ZERO,
            net_time: SimDuration::ZERO,
        }
    }

    fn attr_of(attr: &[Attribution], svc: u32) -> u64 {
        attr.iter().find(|a| a.service == svc).map_or(0, |a| a.ns)
    }

    #[test]
    fn single_span_owns_everything() {
        let spans = vec![mk(1, None, 3, 10, 60)];
        let attr = critical_path(&spans);
        assert_eq!(attr.len(), 1);
        assert_eq!(attr_of(&attr, 3), 50_000);
    }

    #[test]
    fn sequential_children_chain() {
        // Root 0..100; children 10..40 and 50..90 (sequential calls).
        let spans = vec![
            mk(1, None, 0, 0, 100),
            mk(2, Some(1), 1, 10, 40),
            mk(3, Some(1), 2, 50, 90),
        ];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 2), 40_000);
        assert_eq!(attr_of(&attr, 1), 30_000);
        // Root gets 100 - 40 - 30 - (overlap gaps): [90,100]+[40,50]+[0,10] = 30.
        assert_eq!(attr_of(&attr, 0), 30_000);
        let total: u64 = attr.iter().map(|a| a.ns).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn parallel_children_attribute_longest() {
        // Two parallel children 10..90 (svc 1) and 10..50 (svc 2):
        // only the later-ending child is on the critical path.
        let spans = vec![
            mk(1, None, 0, 0, 100),
            mk(2, Some(1), 1, 10, 90),
            mk(3, Some(1), 2, 10, 50),
        ];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 1), 80_000);
        assert_eq!(attr_of(&attr, 2), 0);
        assert_eq!(attr_of(&attr, 0), 20_000);
    }

    #[test]
    fn nested_grandchildren_recurse() {
        let spans = vec![
            mk(1, None, 0, 0, 100),
            mk(2, Some(1), 1, 20, 80),
            mk(3, Some(2), 2, 30, 70),
        ];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 2), 40_000);
        assert_eq!(attr_of(&attr, 1), 20_000);
        assert_eq!(attr_of(&attr, 0), 40_000);
    }

    #[test]
    fn empty_and_rootless_traces() {
        assert!(critical_path(&[]).is_empty());
        let spans = vec![mk(2, Some(1), 1, 0, 10)];
        assert!(critical_path(&spans).is_empty());
    }

    #[test]
    fn attribution_sorted_descending() {
        let spans = vec![mk(1, None, 0, 0, 100), mk(2, Some(1), 1, 5, 95)];
        let attr = critical_path(&spans);
        assert!(attr.windows(2).all(|w| w[0].ns >= w[1].ns));
    }

    #[test]
    fn span_duration() {
        let s = mk(1, None, 0, 10, 35);
        assert_eq!(s.duration(), SimDuration::from_micros(25));
    }

    #[test]
    fn twin_siblings_with_identical_end_pick_the_first_listed() {
        // Two children both ending at 90: the walk must deterministically
        // put exactly one on the critical path (the first listed — the
        // sort is stable), never split or double-count the interval.
        let spans = vec![
            mk(1, None, 0, 0, 100),
            mk(2, Some(1), 1, 10, 90),
            mk(3, Some(1), 2, 20, 90),
        ];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 1), 80_000, "first-listed twin wins");
        assert_eq!(attr_of(&attr, 2), 0, "second twin is off-path");
        assert_eq!(attr_of(&attr, 0), 20_000);
        let total: u64 = attr.iter().map(|a| a.ns).sum();
        assert_eq!(total, 100_000, "attribution must conserve the root");
        // Listing order decides, not span ids: swap the twins.
        let swapped = vec![spans[0], spans[2], spans[1]];
        let attr = critical_path(&swapped);
        assert_eq!(attr_of(&attr, 2), 70_000);
        assert_eq!(attr_of(&attr, 1), 0);
    }

    #[test]
    fn zero_duration_child_conserves_the_root() {
        // A zero-length child (instantaneous cache hit) contributes 0 ns
        // but must not break the walk or leak time.
        let spans = vec![mk(1, None, 0, 0, 100), mk(2, Some(1), 1, 50, 50)];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 1), 0);
        assert_eq!(attr_of(&attr, 0), 100_000);
        let total: u64 = attr.iter().map(|a| a.ns).sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn orphaned_child_is_excluded_from_the_walk() {
        // A span whose parent id matches nothing (dropped by sampling)
        // must be ignored: totals still equal the root's duration.
        let spans = vec![
            mk(1, None, 0, 0, 100),
            mk(2, Some(1), 1, 10, 90),
            mk(3, Some(99), 2, 30, 95),
        ];
        let attr = critical_path(&spans);
        assert_eq!(attr_of(&attr, 1), 80_000);
        assert_eq!(attr_of(&attr, 2), 0, "orphan attributed time");
        let total: u64 = attr.iter().map(|a| a.ns).sum();
        assert_eq!(total, 100_000);
    }
}
