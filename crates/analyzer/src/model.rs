//! The shared static capacity model behind DSB009/DSB011/DSB012.
//!
//! Every load-aware analyzer pass asks the same three questions: how
//! often is each endpoint invoked (offered entry rates propagated
//! through branch probabilities and expected fan-out degrees), how long
//! does one invocation hold a worker or a core, and how does that
//! demand compare to the provisioned pools and machines. This module
//! answers them once, publicly, so the differential-testing harness
//! (`dsb-gen`'s `dsb-diff`) can hold the *same* predictions the
//! diagnostics are built on against a fixed-seed simulation.

use std::collections::BTreeMap;
use std::fmt;

use dsb_core::{
    AppSpec, ClusterSpec, EndpointRef, LbPolicy, MachineId, PlacementPlan, ServiceId, Step,
    WorkerPolicy,
};
use dsb_net::Fabric;

/// Erlang-C: the probability an M/M/k arrival must queue, for `k` servers
/// offered `a` erlangs. Uses the numerically stable Erlang-B recurrence
/// `B(n) = a·B(n-1) / (n + a·B(n-1))`, then `C = k·B / (k - a·(1 - B))`.
/// The expected queueing delay in service-time units is
/// `Wq/S = C / (k·(1 - a/k))`. Returns 1.0 (certain wait) at or past
/// saturation.
pub fn erlang_c(k: u64, a: f64) -> f64 {
    if k == 0 || a >= k as f64 {
        return 1.0;
    }
    let mut b = 1.0;
    for n in 1..=k {
        b = a * b / (n as f64 + a * b);
    }
    let k = k as f64;
    let c = k * b / (k - a * (1.0 - b));
    c.clamp(0.0, 1.0)
}

pub(crate) fn resolve<'s>(spec: &'s AppSpec, t: &EndpointRef) -> Option<&'s dsb_core::ServiceSpec> {
    let svc = spec.services.get(t.service.0 as usize)?;
    if (t.endpoint as usize) < svc.endpoints.len() {
        Some(svc)
    } else {
        None
    }
}

/// Calls `f(target, is_parallel)` for every call site in `steps`,
/// including both branch arms.
pub fn walk_calls(steps: &[Step], f: &mut impl FnMut(&EndpointRef, bool)) {
    for s in steps {
        match s {
            Step::Call { target, .. } => f(target, false),
            Step::FanCall { target, .. } => f(target, true),
            Step::ParCall { calls } => {
                for (t, _) in calls {
                    f(t, true);
                }
            }
            Step::Branch { then, els, .. } | Step::CacheLookup { then, els, .. } => {
                walk_calls(then, f);
                walk_calls(els, f);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Calls `f(target, expected_parallel_degree)` for every fan-out site.
/// `ParCall`s count each distinct target once per listed call.
pub fn walk_fanouts(steps: &[Step], f: &mut impl FnMut(&EndpointRef, f64)) {
    for s in steps {
        match s {
            Step::FanCall { target, n, .. } => f(target, n.mean()),
            Step::Branch { then, els, .. } | Step::CacheLookup { then, els, .. } => {
                walk_fanouts(then, f);
                walk_fanouts(els, f);
            }
            _ => {}
        }
    }
}

/// Service-level dependency edges over *valid* call targets only.
pub fn valid_edges(spec: &AppSpec) -> Vec<(ServiceId, ServiceId)> {
    let mut edges = Vec::new();
    for (i, svc) in spec.services.iter().enumerate() {
        let from = ServiceId(i as u32);
        for ep in &svc.endpoints {
            walk_calls(&ep.script, &mut |t, _| {
                if resolve(spec, t).is_some() && !edges.contains(&(from, t.service)) {
                    edges.push((from, t.service));
                }
            });
        }
    }
    edges
}

/// Kahn topological order of services (callers before callees); `None`
/// when the dependency graph is cyclic.
pub(crate) fn topo_order(spec: &AppSpec) -> Option<Vec<usize>> {
    let n = spec.services.len();
    let edges = valid_edges(spec);
    let mut indeg = vec![0u32; n];
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in &edges {
        adj[a.0 as usize].push(b.0 as usize);
        indeg[b.0 as usize] += 1;
    }
    let mut order: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &w in &adj[v] {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                order.push(w);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Expected per-endpoint arrival rates (req/s) given offered entry loads,
/// propagated through the call graph. `None` when the graph is cyclic.
pub fn endpoint_rates(spec: &AppSpec, offered: &[(EndpointRef, f64)]) -> Option<Vec<Vec<f64>>> {
    let order = topo_order(spec)?;
    let mut rates: Vec<Vec<f64>> = spec
        .services
        .iter()
        .map(|s| vec![0.0; s.endpoints.len()])
        .collect();
    for &(entry, qps) in offered {
        if resolve(spec, &entry).is_some() {
            rates[entry.service.0 as usize][entry.endpoint as usize] += qps;
        }
    }
    for &svc in &order {
        for e in 0..spec.services[svc].endpoints.len() {
            let rate = rates[svc][e];
            if rate <= 0.0 {
                continue;
            }
            let script = spec.services[svc].endpoints[e].script.clone();
            expected_calls(&script, 1.0, &mut |t, per_invocation| {
                if resolve(spec, t).is_some() && t.service.0 as usize != svc {
                    rates[t.service.0 as usize][t.endpoint as usize] += rate * per_invocation;
                }
            });
        }
    }
    Some(rates)
}

/// Calls `f(target, expected_calls_per_invocation)` for every call site,
/// weighting by branch probability and expected fan-out degree.
pub fn expected_calls(steps: &[Step], weight: f64, f: &mut impl FnMut(&EndpointRef, f64)) {
    for s in steps {
        match s {
            Step::Call { target, .. } => f(target, weight),
            Step::FanCall { target, n, .. } => f(target, weight * n.mean().max(0.0)),
            Step::ParCall { calls } => {
                for (t, _) in calls {
                    f(t, weight);
                }
            }
            Step::Branch { p, then, els } => {
                expected_calls(then, weight * p, f);
                expected_calls(els, weight * (1.0 - p), f);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                expected_calls(then, weight * hit, f);
                expected_calls(els, weight * (1.0 - hit), f);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Mean nanoseconds an invocation of `steps` holds a worker for locally
/// (compute + I/O; downstream calls excluded).
pub fn local_demand_ns(steps: &[Step]) -> f64 {
    let mut total = 0.0;
    for s in steps {
        match s {
            Step::Compute { ns, .. } | Step::Io { ns } => total += ns.mean(),
            Step::Branch { p, then, els } => {
                total += p * local_demand_ns(then) + (1.0 - p) * local_demand_ns(els);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                total += hit * local_demand_ns(then) + (1.0 - hit) * local_demand_ns(els);
            }
            _ => {}
        }
    }
    total
}

/// Mean nanoseconds of *CPU* demand per invocation (compute only — an
/// I/O phase holds a worker, not a core), branch-weighted. This is what
/// DSB011 charges against a machine's core budget; per-message network
/// processing is modeled separately (see [`net_demand_ns`] and
/// [`CapacityModel::machine_net`]).
pub fn compute_demand_ns(steps: &[Step]) -> f64 {
    let mut total = 0.0;
    for s in steps {
        match s {
            Step::Compute { ns, .. } => total += ns.mean(),
            Step::Branch { p, then, els } => {
                total += p * compute_demand_ns(then) + (1.0 - p) * compute_demand_ns(els);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                total += hit * compute_demand_ns(then) + (1.0 - hit) * compute_demand_ns(els);
            }
            _ => {}
        }
    }
    total
}

/// Calls `f(target, expected_calls_per_invocation, mean_request_bytes)`
/// for every call site, weighting by branch probability and expected
/// fan-out degree — [`expected_calls`] plus the payload size the message
/// cost model needs.
pub fn expected_call_sites(
    steps: &[Step],
    weight: f64,
    f: &mut impl FnMut(&EndpointRef, f64, f64),
) {
    for s in steps {
        match s {
            Step::Call { target, req_bytes } => f(target, weight, req_bytes.mean()),
            Step::FanCall {
                target,
                req_bytes,
                n,
            } => f(target, weight * n.mean().max(0.0), req_bytes.mean()),
            Step::ParCall { calls } => {
                for (t, b) in calls {
                    f(t, weight, b.mean());
                }
            }
            Step::Branch { p, then, els } => {
                expected_call_sites(then, weight * p, f);
                expected_call_sites(els, weight * (1.0 - p), f);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                expected_call_sites(then, weight * hit, f);
                expected_call_sites(els, weight * (1.0 - hit), f);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Client-ingress request payload (bytes) assumed by the static network
/// model. The offered-load interface carries only rates, not payload
/// sizes; this matches the suite's default query-mix request size, and
/// message costs are dominated by their per-message constants anyway.
pub const CLIENT_REQ_BYTES: u64 = 256;

/// Per-service network-processing CPU demand in reference-core ns/s:
/// the kernel (TCP/interrupt) plus library (de/serialization) cost of
/// every message the service sends or receives per second, mirroring
/// what `dsb-core` charges on machine cores per message. Per call edge
/// at rate `r`, the *caller* pays `r ×` (send request + receive
/// response) and the *callee* pays `r ×` (receive request + send
/// response), priced by the callee's protocol at the call site's mean
/// request bytes and the callee endpoint's mean response bytes. Entry
/// services additionally pay client ingress (receive side, at
/// [`CLIENT_REQ_BYTES`]) and the client reply (send side only).
/// Assumes NIC offload disabled — offload is a runtime toggle the
/// static spec does not carry.
pub fn net_demand_ns(
    spec: &AppSpec,
    rates: &[Vec<f64>],
    offered: &[(EndpointRef, f64)],
) -> Vec<f64> {
    let mut net = vec![0.0; spec.services.len()];
    for (i, svc) in spec.services.iter().enumerate() {
        for (e, ep) in svc.endpoints.iter().enumerate() {
            let rate = rates[i][e];
            if rate <= 0.0 {
                continue;
            }
            expected_call_sites(&ep.script, 1.0, &mut |t, w, req_bytes| {
                let Some(callee) = resolve(spec, t) else {
                    return;
                };
                if t.service.0 as usize == i {
                    return; // self-calls carry no propagated rate
                }
                let proto = callee.protocol;
                let req = proto.costs(req_bytes.max(1.0) as u64);
                let resp_bytes = callee.endpoints[t.endpoint as usize].resp_bytes.mean();
                let resp = proto.costs(resp_bytes.max(1.0) as u64);
                let msgs = rate * w;
                net[i] += msgs
                    * (req.send_kernel_ns
                        + req.send_libs_ns
                        + resp.recv_kernel_ns
                        + resp.recv_libs_ns);
                net[t.service.0 as usize] += msgs
                    * (req.recv_kernel_ns
                        + req.recv_libs_ns
                        + resp.send_kernel_ns
                        + resp.send_libs_ns);
            });
        }
    }
    for &(entry, qps) in offered {
        let Some(svc) = resolve(spec, &entry) else {
            continue;
        };
        let proto = svc.protocol;
        let ingress = proto.costs(CLIENT_REQ_BYTES);
        let reply_bytes = svc.endpoints[entry.endpoint as usize].resp_bytes.mean();
        let reply = proto.costs(reply_bytes.max(1.0) as u64);
        net[entry.service.0 as usize] += qps
            * (ingress.recv_kernel_ns
                + ingress.recv_libs_ns
                + reply.send_kernel_ns
                + reply.send_libs_ns);
    }
    net
}

/// Cap (ns) on the statically-predicted queueing wait at a saturated
/// worker pool: overload must propagate to callers as an enormous but
/// finite hold time, not NaN.
const SATURATED_WAIT_NS: f64 = 1e12;

/// The static response-time / worker-hold model, computed leaf-up.
struct HoldModel {
    /// Mean response time (ns) per service, per endpoint: local demand
    /// plus downstream round-trips (message processing, propagation,
    /// M/M/k wait at the callee's pool when enabled, callee response
    /// time).
    resp_ns: Vec<Vec<f64>>,
    /// Worker-held erlangs per service, concurrency-aware: a *blocking*
    /// service holds its worker for the full response time (downstream
    /// calls included); an event-driven one releases at the first await
    /// point, so only local demand counts.
    hold: Vec<f64>,
}

/// Mean round-trip and response time for one script, given the callee
/// models already computed (leaf-up order guarantees availability).
/// Parallel fan-outs join on their slowest branch, so they contribute
/// the max — not the sum — of their round-trips.
fn script_resp_ns(
    spec: &AppSpec,
    svc: usize,
    steps: &[Step],
    resp_ns: &[Vec<f64>],
    wait_ns: &[f64],
    one_way_ns: f64,
) -> f64 {
    let call_rtt = |t: &EndpointRef, req_bytes: f64| -> f64 {
        let Some(callee) = resolve(spec, t) else {
            return 0.0;
        };
        if t.service.0 as usize == svc {
            return 0.0; // self-calls carry no propagated rate
        }
        let proto = callee.protocol;
        let req = proto.costs(req_bytes.max(1.0) as u64);
        let resp_bytes = callee.endpoints[t.endpoint as usize].resp_bytes.mean();
        let resp = proto.costs(resp_bytes.max(1.0) as u64);
        let processing = req.send_kernel_ns
            + req.send_libs_ns
            + req.recv_kernel_ns
            + req.recv_libs_ns
            + resp.send_kernel_ns
            + resp.send_libs_ns
            + resp.recv_kernel_ns
            + resp.recv_libs_ns;
        processing
            + 2.0 * one_way_ns
            + wait_ns[t.service.0 as usize]
            + resp_ns[t.service.0 as usize][t.endpoint as usize]
    };
    let mut total = 0.0;
    for s in steps {
        match s {
            Step::Compute { ns, .. } | Step::Io { ns } => total += ns.mean(),
            Step::Call { target, req_bytes } => total += call_rtt(target, req_bytes.mean()),
            Step::FanCall {
                target, req_bytes, ..
            } => total += call_rtt(target, req_bytes.mean()),
            Step::ParCall { calls } => {
                total += calls
                    .iter()
                    .map(|(t, b)| call_rtt(t, b.mean()))
                    .fold(0.0, f64::max);
            }
            Step::Branch { p, then, els } => {
                total += p * script_resp_ns(spec, svc, then, resp_ns, wait_ns, one_way_ns)
                    + (1.0 - p) * script_resp_ns(spec, svc, els, resp_ns, wait_ns, one_way_ns);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                total += hit * script_resp_ns(spec, svc, then, resp_ns, wait_ns, one_way_ns)
                    + (1.0 - hit) * script_resp_ns(spec, svc, els, resp_ns, wait_ns, one_way_ns);
            }
        }
    }
    total
}

/// Builds the hold model by walking services callee-first: each pool's
/// hold erlangs and M/M/k queue wait are known before any caller prices
/// a round-trip into it. With `with_wait` false the queue-wait term is
/// dropped, yielding the pure service-path *floor* on hold time (a
/// lower bound no amount of scheduling luck can beat). `None` on a
/// cyclic graph.
fn hold_model(
    spec: &AppSpec,
    rates: &[Vec<f64>],
    capacity: &[Option<f64>],
    one_way_ns: f64,
    with_wait: bool,
) -> Option<HoldModel> {
    let order = topo_order(spec)?;
    let n = spec.services.len();
    let mut resp_ns: Vec<Vec<f64>> = spec
        .services
        .iter()
        .map(|s| vec![0.0; s.endpoints.len()])
        .collect();
    let mut wait_ns = vec![0.0; n];
    let mut hold = vec![0.0; n];
    for &s in order.iter().rev() {
        let svc = &spec.services[s];
        let blocking = svc.concurrency == dsb_core::Concurrency::Blocking;
        let mut hold_x_rate_ns = 0.0; // Σ rate × per-invocation hold
        let mut total_rate = 0.0;
        for (e, ep) in svc.endpoints.iter().enumerate() {
            resp_ns[s][e] = script_resp_ns(spec, s, &ep.script, &resp_ns, &wait_ns, one_way_ns);
            let hold_one = if blocking {
                resp_ns[s][e]
            } else {
                local_demand_ns(&ep.script)
            };
            hold_x_rate_ns += rates[s][e] * hold_one;
            total_rate += rates[s][e];
        }
        hold[s] = hold_x_rate_ns / 1e9;
        wait_ns[s] = match capacity[s] {
            Some(k) if with_wait && total_rate > 0.0 => {
                let a = hold[s];
                if a >= k {
                    SATURATED_WAIT_NS
                } else {
                    // M/M/k: Wq = C(k, a) · S / (k − a), S = mean hold.
                    let mean_hold = hold_x_rate_ns / total_rate;
                    erlang_c(k as u64, a) * mean_hold / (k - a)
                }
            }
            // On-demand pools scale out instead of queueing.
            _ => 0.0,
        };
    }
    Some(HoldModel { resp_ns, hold })
}

/// The full static prediction for one `(spec, offered load)` pair: the
/// numbers DSB009 and DSB011 compare against thresholds, exposed as
/// data so a differential harness can compare them against measurement.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    /// Expected arrival rate (req/s) per service, per endpoint.
    pub rates: Vec<Vec<f64>>,
    /// Worker-held erlangs per service counting *local demand only*
    /// (compute + I/O) — the number DSB009 compares against pool sizes.
    pub busy: Vec<f64>,
    /// Concurrency-aware worker-held erlangs per service: blocking
    /// services hold their worker across downstream round-trips
    /// (including the M/M/k wait at each callee's pool), event-driven
    /// ones only for local demand. For a blocking mid-tier this — not
    /// `busy` — is the demand that actually saturates the pool. The
    /// M/M/k wait assumes Poisson arrivals and exponential service, so
    /// against smoother real traffic this is an *upper* bound on hold.
    pub hold: Vec<f64>,
    /// Like `hold` but without any queue-wait term: the pure
    /// service-path *floor* on worker-held erlangs, a lower bound that
    /// holds however smooth the traffic is.
    pub hold_floor: Vec<f64>,
    /// Mean response time (ns) per service, per endpoint, under the
    /// no-core-contention approximation the hold model is built on
    /// (queue waits included, as in `hold`).
    pub resp_ns: Vec<Vec<f64>>,
    /// Reference-core CPU erlangs per service (compute only).
    pub compute: Vec<f64>,
    /// Reference-core erlangs per service of per-message network
    /// processing (kernel + libs, both directions; see [`net_demand_ns`]).
    pub net: Vec<f64>,
    /// Total fixed workers per service (`None`: on-demand pool).
    pub capacity: Vec<Option<f64>>,
    /// Actual-core erlangs per machine under the placement plan (empty
    /// without cluster context).
    pub machine_busy: Vec<f64>,
    /// Actual-core erlangs per machine of network-message processing
    /// under the placement plan (empty without cluster context). Kept
    /// separate from `machine_busy` because DSB011's compute-budget
    /// diagnostic intentionally excludes it; saturation predictions
    /// should add the two (see [`CapacityModel::max_machine_utilization_with_net`]).
    pub machine_net: Vec<f64>,
    /// Core budget per machine (empty without cluster context).
    pub machine_cores: Vec<f64>,
    /// Per-machine breakdown of `machine_busy` by service id.
    pub machine_by_service: Vec<BTreeMap<usize, f64>>,
}

impl CapacityModel {
    /// Builds the model; `None` when the call graph is cyclic (rates
    /// cannot be propagated). Machine-level fields are filled only when
    /// `cluster` is given and the placement plan is feasible.
    pub fn compute(
        spec: &AppSpec,
        offered: &[(EndpointRef, f64)],
        cluster: Option<&ClusterSpec>,
    ) -> Option<CapacityModel> {
        let rates = endpoint_rates(spec, offered)?;
        let busy: Vec<f64> = spec
            .services
            .iter()
            .enumerate()
            .map(|(i, svc)| {
                svc.endpoints
                    .iter()
                    .enumerate()
                    .map(|(e, ep)| rates[i][e] * local_demand_ns(&ep.script) / 1e9)
                    .sum()
            })
            .collect();
        let compute: Vec<f64> = spec
            .services
            .iter()
            .enumerate()
            .map(|(i, svc)| {
                svc.endpoints
                    .iter()
                    .enumerate()
                    .map(|(e, ep)| rates[i][e] * compute_demand_ns(&ep.script) / 1e9)
                    .sum()
            })
            .collect();
        let capacity: Vec<Option<f64>> = spec
            .services
            .iter()
            .map(|svc| match svc.workers {
                WorkerPolicy::Fixed(w) => Some((svc.initial_instances.max(1) * w) as f64),
                WorkerPolicy::OnDemand { .. } => None,
            })
            .collect();

        let net: Vec<f64> = net_demand_ns(spec, &rates, offered)
            .into_iter()
            .map(|ns| ns / 1e9)
            .collect();
        // Propagation estimate for downstream round-trips: intra-rack
        // once the app spans machines, loopback on a single box, zero
        // without cluster context.
        let one_way_ns = cluster.map_or(0.0, |c| {
            if c.machines.len() > 1 {
                c.fabric.intra_rack_ns as f64
            } else {
                c.fabric.loopback_ns as f64
            }
        });
        let hm = hold_model(spec, &rates, &capacity, one_way_ns, true)?;
        let floor = hold_model(spec, &rates, &capacity, one_way_ns, false)?;

        let mut model = CapacityModel {
            rates,
            busy,
            hold: hm.hold,
            hold_floor: floor.hold,
            resp_ns: hm.resp_ns,
            compute,
            net,
            capacity,
            machine_busy: Vec::new(),
            machine_net: Vec::new(),
            machine_cores: Vec::new(),
            machine_by_service: Vec::new(),
        };
        if let Some(cluster) = cluster {
            if let Some(plan) = feasible_plan(spec, cluster) {
                model.fill_machines(spec, cluster, &plan);
            }
        }
        Some(model)
    }

    fn fill_machines(&mut self, spec: &AppSpec, cluster: &ClusterSpec, plan: &PlacementPlan) {
        // Per-instance compute / network demand in reference-core erlangs.
        let share = |totals: &[f64]| -> Vec<f64> {
            totals
                .iter()
                .enumerate()
                .map(|(i, &t)| t / plan.machines_of(ServiceId(i as u32)).len().max(1) as f64)
                .collect()
        };
        let per_instance = share(&self.compute);
        let per_instance_net = share(&self.net);
        self.machine_busy = vec![0.0; cluster.machines.len()];
        self.machine_net = vec![0.0; cluster.machines.len()];
        self.machine_by_service = vec![BTreeMap::new(); cluster.machines.len()];
        for &(svc, m) in plan.instances() {
            let mi = m.0 as usize;
            let slowdown = cluster.machines[mi]
                .core
                .speed_factor(&spec.services[svc.0 as usize].profile);
            self.machine_net[mi] += per_instance_net[svc.0 as usize] * slowdown;
            let erlangs = per_instance[svc.0 as usize] * slowdown;
            if erlangs <= 0.0 {
                continue;
            }
            self.machine_busy[mi] += erlangs;
            *self.machine_by_service[mi]
                .entry(svc.0 as usize)
                .or_insert(0.0) += erlangs;
        }
        self.machine_cores = cluster
            .machines
            .iter()
            .map(|m| m.cores.max(1) as f64)
            .collect();
    }

    /// Worker-pool utilization of service `s` (`None`: on-demand pool),
    /// counting local demand only — what DSB009 reports.
    pub fn utilization(&self, s: usize) -> Option<f64> {
        self.capacity[s].map(|k| self.busy[s] / k)
    }

    /// Concurrency-aware worker-pool utilization of service `s`
    /// (`None`: on-demand pool), counting downstream hold time for
    /// blocking services.
    pub fn hold_utilization(&self, s: usize) -> Option<f64> {
        self.capacity[s].map(|k| self.hold[s] / k)
    }

    /// The highest worker-pool utilization across fixed-pool services
    /// (0.0 when every pool is on-demand), counting local demand only.
    pub fn max_tier_utilization(&self) -> f64 {
        (0..self.busy.len())
            .filter_map(|s| self.utilization(s))
            .fold(0.0, f64::max)
    }

    /// The highest *hold-based* worker-pool utilization across
    /// fixed-pool services. A blocking mid-tier with slow callees
    /// saturates long before its local-demand utilization says so;
    /// this is the bound that predicts it. Being wait-inclusive it is
    /// an upper bound — use it to certify head-room, not overload.
    pub fn max_tier_utilization_with_hold(&self) -> f64 {
        (0..self.hold.len())
            .filter_map(|s| self.hold_utilization(s))
            .fold(0.0, f64::max)
    }

    /// The highest *floor* (no-queue-wait) hold utilization across
    /// fixed-pool services: a lower bound on pool load that holds for
    /// arbitrarily smooth traffic — at or above 1.0 the pool falls
    /// behind no matter what, so use it to certify overload.
    pub fn max_tier_utilization_hold_floor(&self) -> f64 {
        (0..self.hold_floor.len())
            .filter_map(|s| self.capacity[s].map(|k| self.hold_floor[s] / k))
            .fold(0.0, f64::max)
    }

    /// The highest core-budget utilization across machines (0.0 without
    /// cluster context), counting *compute demand only* — the number
    /// DSB011 compares against its thresholds.
    pub fn max_machine_utilization(&self) -> f64 {
        self.machine_busy
            .iter()
            .zip(&self.machine_cores)
            .map(|(&b, &c)| b / c)
            .fold(0.0, f64::max)
    }

    /// The highest core-budget utilization across machines including
    /// per-message network processing. For chatty, low-compute services
    /// the message-handling kernel/library time dominates the core
    /// budget, so this — not [`Self::max_machine_utilization`] — is the
    /// utilization that predicts whether a machine actually saturates.
    pub fn max_machine_utilization_with_net(&self) -> f64 {
        self.machine_busy
            .iter()
            .zip(&self.machine_net)
            .zip(&self.machine_cores)
            .map(|((&b, &n), &c)| (b + n) / c)
            .fold(0.0, f64::max)
    }
}

/// The deterministic placement of the app on the cluster; `None` when
/// some service has no feasible machine (the placer would panic — a
/// deployment error outside the analyzer's scope).
pub(crate) fn feasible_plan(spec: &AppSpec, cluster: &ClusterSpec) -> Option<PlacementPlan> {
    let feasible = spec.services.iter().all(|s| {
        cluster.machines.iter().any(|m| match s.zone_pref {
            Some(z) => m.zone == z,
            None => !matches!(m.zone, dsb_net::Zone::Edge),
        })
    });
    feasible.then(|| PlacementPlan::compute(spec, cluster))
}

/// One cross-machine communicating hop discovered by the lookahead walk:
/// a call edge plus one `(caller machine, callee machine)` pair its load
/// balancing can route across.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CrossHop {
    /// Guaranteed minimum one-way delay of this hop, ns. Zero for a
    /// same-host-only protocol spanning machines (the impossible hop a
    /// parallel engine cannot bound at all).
    pub min_delay_ns: u64,
    /// Calling service.
    pub caller: ServiceId,
    /// Called service.
    pub callee: ServiceId,
    /// A machine hosting a caller instance.
    pub from_machine: MachineId,
    /// A machine hosting a callee instance the LB can route to.
    pub to_machine: MachineId,
    /// Whether the callee's protocol is same-host-only (IPC).
    pub same_host_only: bool,
}

/// The per-app parallel-lookahead certificate: the minimum guaranteed
/// cross-machine network delay under the deterministic placement plan.
/// A conservative parallel engine sharded by machine may advance each
/// shard's clock by this epoch between synchronizations without ever
/// observing an event out of order — this is the bound the planned
/// parallel engine (ROADMAP) will run behind.
#[derive(Debug, Clone)]
pub struct LookaheadCertificate {
    /// Every cross-machine hop, sorted by `(min delay, caller, callee,
    /// machines)` — the first entry is the limiting hop.
    pub hops: Vec<CrossHop>,
    /// Number of distinct machines the app's instances occupy.
    pub machines_used: usize,
}

impl LookaheadCertificate {
    /// The certified minimum safe epoch in sim-time ns; `None` when no
    /// call edge can cross machines (single shard — embarrassingly
    /// parallel over seeds instead).
    pub fn min_epoch_ns(&self) -> Option<u64> {
        self.hops.first().map(|h| h.min_delay_ns)
    }

    /// The hop that limits the epoch, if any.
    pub fn limiting(&self) -> Option<&CrossHop> {
        self.hops.first()
    }

    /// Renders the one-line certificate for service-name context
    /// supplied by the caller (the certificate itself stores ids).
    pub fn render(&self, name_of: impl Fn(ServiceId) -> String) -> String {
        match self.limiting() {
            None => format!(
                "lookahead: no cross-machine call edges across {} machine(s); \
                 shards synchronize only at the horizon",
                self.machines_used
            ),
            Some(h) => format!(
                "lookahead: min safe epoch {} ns over {} cross-machine hop(s); \
                 limiting hop {} -> {} (machine {} -> {})",
                h.min_delay_ns,
                self.hops.len(),
                name_of(h.caller),
                name_of(h.callee),
                h.from_machine.0,
                h.to_machine.0,
            ),
        }
    }
}

impl fmt::Display for LookaheadCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(|s| format!("svc{}", s.0)))
    }
}

/// Whether `caller -> callee` is a *partition-aligned* pair: both ends
/// route by partition key over the same instance count, and instance `k`
/// of each lands on the same machine. The simulator hashes the request's
/// partition key modulo the instance count on both sides, so such an
/// edge provably never crosses machines (this is how the drone swarm's
/// per-drone IPC stacks stay single-machine).
fn partition_aligned(spec: &AppSpec, plan: &PlacementPlan, c: ServiceId, d: ServiceId) -> bool {
    let (cs, ds) = (&spec.services[c.0 as usize], &spec.services[d.0 as usize]);
    if cs.lb != LbPolicy::Partition || ds.lb != LbPolicy::Partition {
        return false;
    }
    let (cm, dm) = (plan.machines_of(c), plan.machines_of(d));
    cm.len() == dm.len() && cm.iter().zip(dm).all(|(a, b)| a == b)
}

/// Computes the app's [`LookaheadCertificate`] under the deterministic
/// placement plan; `None` when no feasible plan exists. Every valid call
/// edge contributes the `(caller machine, callee machine)` pairs its
/// load balancing can produce — all distinct cross-machine pairs of the
/// two ends' machine sets, except partition-aligned edges, which are
/// proven same-machine. Hops of a same-host-only protocol that can
/// nevertheless span machines carry a zero bound.
pub fn lookahead_certificate(
    spec: &AppSpec,
    cluster: &ClusterSpec,
) -> Option<LookaheadCertificate> {
    let plan = feasible_plan(spec, cluster)?;
    let fabric = Fabric::new(cluster.fabric);
    let mut hops = Vec::new();
    for (c, d) in valid_edges(spec) {
        if c == d || partition_aligned(spec, &plan, c, d) {
            continue;
        }
        let same_host_only = spec.services[d.0 as usize].protocol.same_host_only();
        let mut from: Vec<MachineId> = plan.machines_of(c).to_vec();
        let mut to: Vec<MachineId> = plan.machines_of(d).to_vec();
        from.sort_unstable_by_key(|m| m.0);
        from.dedup();
        to.sort_unstable_by_key(|m| m.0);
        to.dedup();
        for &fm in &from {
            for &tm in &to {
                if fm == tm {
                    continue;
                }
                let min_delay_ns = if same_host_only {
                    0
                } else {
                    let (fz, tz) = (
                        cluster.machines[fm.0 as usize].zone,
                        cluster.machines[tm.0 as usize].zone,
                    );
                    fabric.min_delay(fz, tz).as_nanos()
                };
                hops.push(CrossHop {
                    min_delay_ns,
                    caller: c,
                    callee: d,
                    from_machine: fm,
                    to_machine: tm,
                    same_host_only,
                });
            }
        }
    }
    hops.sort();
    hops.dedup();
    let mut used: Vec<u32> = plan.instances().iter().map(|&(_, m)| m.0).collect();
    used.sort_unstable();
    used.dedup();
    Some(LookaheadCertificate {
        hops,
        machines_used: used.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{AppBuilder, Step};
    use dsb_simcore::Dist;

    fn two_tier() -> (AppSpec, EndpointRef) {
        let mut app = AppBuilder::new("m");
        let leaf = app.service("leaf").workers(4).build();
        let lep = app.endpoint(
            leaf,
            "run",
            Dist::constant(64.0),
            vec![
                Step::Compute {
                    ns: Dist::constant(2_000_000.0),
                    domain: dsb_uarch::ExecDomain::User,
                },
                Step::Io {
                    ns: Dist::constant(3_000_000.0),
                },
            ],
        );
        let front = app.service("front").event_driven().workers(32).build();
        let fep = app.endpoint(
            front,
            "root",
            Dist::constant(64.0),
            vec![Step::call(lep, 64.0)],
        );
        (app.build(), fep)
    }

    #[test]
    fn capacity_model_propagates_rates_and_demand() {
        let (spec, entry) = two_tier();
        let m = CapacityModel::compute(&spec, &[(entry, 100.0)], None).unwrap();
        // 100 qps at the front, 100 qps at the leaf.
        assert!((m.rates[1][0] - 100.0).abs() < 1e-9);
        assert!((m.rates[0][0] - 100.0).abs() < 1e-9);
        // Leaf holds a worker 5 ms per call -> 0.5 erlangs; 2 ms of CPU.
        assert!((m.busy[0] - 0.5).abs() < 1e-9, "{}", m.busy[0]);
        assert!((m.compute[0] - 0.2).abs() < 1e-9, "{}", m.compute[0]);
        assert_eq!(m.capacity[0], Some(4.0));
        assert!((m.utilization(0).unwrap() - 0.125).abs() < 1e-9);
        assert!((m.max_tier_utilization() - 0.125).abs() < 1e-9);
        assert!(m.machine_busy.is_empty(), "no cluster context given");
        assert_eq!(m.max_machine_utilization(), 0.0);
    }

    #[test]
    fn capacity_model_fills_machines_with_cluster() {
        let (spec, entry) = two_tier();
        let cluster = dsb_core::ClusterSpec::xeon_cluster(2, 1);
        let m = CapacityModel::compute(&spec, &[(entry, 100.0)], Some(&cluster)).unwrap();
        assert_eq!(m.machine_busy.len(), 2);
        assert_eq!(m.machine_cores, vec![40.0, 40.0]);
        let total: f64 = m.machine_busy.iter().sum();
        // All compute demand lands somewhere; speed factors are ~1 on the
        // reference Xeon.
        let expected: f64 = m.compute.iter().sum();
        assert!(
            (total - expected).abs() / expected < 0.2,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn net_demand_prices_every_message_side() {
        let (spec, entry) = two_tier();
        let m = CapacityModel::compute(&spec, &[(entry, 100.0)], None).unwrap();
        // ThriftRpc at 64 B payloads (kb = 0.0625): one front->leaf call
        // costs each side send+recv kernel+libs = 18_396.875 ns.
        let hop = (7_000.0 + 450.0 * 0.0625)
            + (1_500.0 + 250.0 * 0.0625)
            + (8_000.0 + 550.0 * 0.0625)
            + (1_800.0 + 300.0 * 0.0625);
        let leaf = 100.0 * hop / 1e9;
        assert!((m.net[0] - leaf).abs() < 1e-9, "{} vs {leaf}", m.net[0]);
        // The front also pays client ingress (256 B recv) + reply (64 B send).
        let client = (8_000.0 + 550.0 * 0.25)
            + (1_800.0 + 300.0 * 0.25)
            + (7_000.0 + 450.0 * 0.0625)
            + (1_500.0 + 250.0 * 0.0625);
        let front = 100.0 * (hop + client) / 1e9;
        assert!((m.net[1] - front).abs() < 1e-9, "{} vs {front}", m.net[1]);

        let cluster = dsb_core::ClusterSpec::xeon_cluster(1, 1);
        let m = CapacityModel::compute(&spec, &[(entry, 100.0)], Some(&cluster)).unwrap();
        let placed: f64 = m.machine_net.iter().sum();
        let total: f64 = m.net.iter().sum();
        assert!((placed - total).abs() / total < 0.2, "{placed} vs {total}");
        assert!(m.max_machine_utilization_with_net() > m.max_machine_utilization());
    }

    #[test]
    fn cyclic_graph_has_no_model() {
        let mut app = AppBuilder::new("loop");
        let a = app.service("a").build();
        let b = app.service("b").build();
        let bep = app.endpoint(b, "run", Dist::constant(1.0), vec![]);
        let aep = app.endpoint(a, "run", Dist::constant(1.0), vec![Step::call(bep, 64.0)]);
        let mut spec = app.build();
        let mut script = (*spec.services[b.0 as usize].endpoints[0].script).clone();
        script.push(Step::call(aep, 64.0));
        spec.services[b.0 as usize].endpoints[0].script = std::sync::Arc::new(script);
        assert!(CapacityModel::compute(&spec, &[(aep, 10.0)], None).is_none());
    }
}
