//! The spec analysis passes.
//!
//! Checks DSB001–DSB011 are purely static: they consume an [`AppSpec`]
//! (plus optional entry-point, offered-load, and cluster context) and
//! never run the simulator. DSB012 is the exception: enabling
//! [`Analyzer::calibration`] runs a short *deterministic* calibration
//! simulation and feeds the collected spans through
//! [`dsb_trace::critical_path`], so it can see cross-tier queueing that
//! per-tier queueing formulas cannot. Diagnostics come back sorted by
//! service id, then code, so reports are golden-testable byte for byte.

use std::collections::BTreeMap;

use dsb_core::{
    AppSpec, ClusterSpec, Concurrency, EndpointRef, LbPolicy, PlacementPlan, RequestType,
    ServiceId, Simulation, WorkerPolicy,
};
use dsb_simcore::{SimDuration, SimTime};
use dsb_telemetry::{evaluate, BurnRule, Scraper, Slo};

use crate::model::{
    compute_demand_ns, endpoint_rates, erlang_c, feasible_plan, local_demand_ns,
    lookahead_certificate, resolve, valid_edges, walk_calls, walk_fanouts,
};
use crate::{Code, Diagnostic, Severity};

/// Analyzes a spec with no external context: entry points are taken to
/// be every service that no script calls (in-degree zero).
pub fn analyze(spec: &AppSpec) -> Vec<Diagnostic> {
    Analyzer::new(spec).run()
}

/// A configurable analysis run.
///
/// # Example
///
/// ```
/// use dsb_analyzer::{Analyzer, Code};
/// use dsb_core::{AppBuilder, Step};
/// use dsb_simcore::Dist;
///
/// let mut app = AppBuilder::new("loop");
/// let a = app.service("a").build();
/// let b = app.service("b").build();
/// let bep = app.endpoint(b, "run", Dist::constant(1.0), vec![]);
/// let aep = app.endpoint(a, "run", Dist::constant(1.0), vec![Step::call(bep, 64.0)]);
/// // Close the cycle: b calls a back.
/// let mut spec = app.build();
/// let mut script = (*spec.services[b.0 as usize].endpoints[0].script).clone();
/// script.push(Step::call(aep, 64.0));
/// spec.services[b.0 as usize].endpoints[0].script = std::sync::Arc::new(script);
///
/// let diags = Analyzer::new(&spec).run();
/// assert!(diags.iter().any(|d| d.code == Code::CallCycle));
/// ```
#[derive(Debug)]
pub struct Analyzer<'a> {
    spec: &'a AppSpec,
    entries: Vec<ServiceId>,
    offered: Vec<(EndpointRef, f64)>,
    cluster: Option<&'a ClusterSpec>,
    calibration_secs: f64,
    slo: Option<SimDuration>,
}

impl<'a> Analyzer<'a> {
    /// Starts an analysis of `spec`.
    pub fn new(spec: &'a AppSpec) -> Self {
        Analyzer {
            spec,
            entries: Vec::new(),
            offered: Vec::new(),
            cluster: None,
            calibration_secs: 0.0,
            slo: None,
        }
    }

    /// Declares `service` an entry point (the front-end clients hit).
    /// May be called multiple times; when never called, every service
    /// with in-degree zero counts as an entry.
    pub fn entry(mut self, service: ServiceId) -> Self {
        if !self.entries.contains(&service) {
            self.entries.push(service);
        }
        self
    }

    /// Adds offered load: `qps` requests per second arriving at `entry`.
    /// Enables the DSB009 capacity check (skipped when the graph is
    /// cyclic, since rates cannot be propagated).
    pub fn offered(mut self, entry: EndpointRef, qps: f64) -> Self {
        self.offered.push((entry, qps));
        self
    }

    /// Provides the cluster the app deploys on. Enables the
    /// placement-aware passes: DSB007 then verifies actual machine-level
    /// co-location (via the deterministic [`PlacementPlan`]) instead of
    /// comparing zone hints, and DSB011 audits offered load against
    /// per-machine core budgets (with offered load, acyclic graph).
    pub fn cluster(mut self, cluster: &'a ClusterSpec) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Enables DSB012: runs a deterministic calibration simulation of
    /// `secs` simulated seconds at the offered load (requires
    /// [`Analyzer::cluster`]), attributes end-to-end latency with
    /// [`dsb_trace::critical_path`], and flags tiers on blocking fan-out
    /// chains whose measured worker queueing far exceeds what per-tier
    /// Erlang-C admits. The run is seeded with a fixed constant, so
    /// reports stay byte-stable.
    pub fn calibration(mut self, secs: f64) -> Self {
        self.calibration_secs = secs;
        self
    }

    /// Enables DSB013: attaches a p99 latency objective of `latency` to
    /// every offered request type, scrapes the calibration simulation
    /// with a [`dsb_telemetry::Scraper`], and — when the SLO burns — runs
    /// the runtime root-cause engine. A warning fires when the tier it
    /// names differs from the one static capacity analysis predicts as
    /// the bottleneck, the Fig. 17/18 blind spot where latency is billed
    /// upstream of the tier causing it. Requires [`Analyzer::calibration`].
    pub fn slo(mut self, latency: SimDuration) -> Self {
        self.slo = Some(latency);
        self
    }

    /// Runs every check and returns the sorted diagnostics.
    pub fn run(&self) -> Vec<Diagnostic> {
        let spec = self.spec;
        let mut out = Vec::new();

        // DSB005 / DSB006 first: later passes only follow *valid* refs.
        self.check_refs(&mut out);
        let edges = valid_edges(spec);

        // DSB001 cycles.
        let cycle_anchors = self.check_cycles(&edges, &mut out);

        // DSB004 / DSB010 reachability.
        self.check_reachability(&edges, &cycle_anchors, &mut out);

        // DSB002 blocking-pool backpressure, DSB003 fan-out sizing,
        // DSB007 IPC co-location, DSB008 degenerate partitioning.
        let plan = self.placement_plan();
        self.check_pools(plan.as_ref(), &mut out);

        // DSB014 circular waits across blocking pools (deadlock).
        self.check_wait_cycles(&edges, &mut out);

        // DSB016 cross-shard write-visibility windows (structural).
        self.check_write_visibility(&mut out);

        // DSB017 sole cache tier without replication.
        self.check_cache_replication(&mut out);

        // DSB015 lookahead certification under the placement plan.
        if let Some(cluster) = self.cluster {
            self.check_lookahead(cluster, &mut out);
        }

        // DSB009 offered load vs capacity (needs an acyclic graph).
        if !self.offered.is_empty() && cycle_anchors.is_empty() {
            self.check_capacity(&mut out);

            // DSB011 per-machine core budgets under the placement plan.
            if let (Some(cluster), Some(plan)) = (self.cluster, plan.as_ref()) {
                self.check_machine_budget(cluster, plan, &mut out);

                // DSB012 trace-driven critical-path queueing.
                if self.calibration_secs > 0.0 {
                    self.check_critical_path(cluster, &mut out);
                }
            }
        }

        out.sort();
        out.dedup();
        out
    }

    /// The deterministic placement of the app on the provided cluster;
    /// `None` without cluster context or when some service has no
    /// feasible machine (the placer would panic — a deployment error
    /// outside this analyzer's scope).
    fn placement_plan(&self) -> Option<PlacementPlan> {
        feasible_plan(self.spec, self.cluster?)
    }

    fn diag(
        &self,
        code: Code,
        severity: Severity,
        service: ServiceId,
        endpoint: Option<&str>,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            service: Some(service),
            service_name: self.spec.services[service.0 as usize].name.clone(),
            endpoint: endpoint.map(str::to_string),
            message,
        }
    }

    // -- DSB005 / DSB006 ----------------------------------------------------

    fn check_refs(&self, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        for (i, svc) in spec.services.iter().enumerate() {
            let from = ServiceId(i as u32);
            for ep in &svc.endpoints {
                walk_calls(
                    &ep.script,
                    &mut |target, parallel| match resolve(spec, target) {
                        None => out.push(self.diag(
                            Code::DanglingEndpoint,
                            Severity::Error,
                            from,
                            Some(&ep.name),
                            format!(
                                "call target (service {}, endpoint {}) does not exist",
                                target.service.0, target.endpoint
                            ),
                        )),
                        Some(callee) => {
                            if parallel && callee.protocol.blocking_connections() {
                                out.push(self.diag(
                                    Code::ParallelToBlocking,
                                    Severity::Error,
                                    from,
                                    Some(&ep.name),
                                    format!(
                                        "parallel fan-out to `{}` over {}: one outstanding \
                                         request per connection cannot multiplex parallel calls",
                                        callee.name,
                                        callee.protocol.name()
                                    ),
                                ));
                            }
                        }
                    },
                );
            }
        }
    }

    // -- DSB001 -------------------------------------------------------------

    /// Reports every strongly connected component with more than one
    /// service (or a self-loop) as a cycle. Returns each cycle's anchor
    /// (lowest-id member), used to seed default reachability roots —
    /// cycle members have no in-degree-0 ancestor and would otherwise
    /// all double-report as unreachable.
    fn check_cycles(
        &self,
        edges: &[(ServiceId, ServiceId)],
        out: &mut Vec<Diagnostic>,
    ) -> Vec<usize> {
        let n = self.spec.services.len();
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a.0 as usize].push(b.0 as usize);
        }
        let mut anchors = Vec::new();
        for scc in tarjan_sccs(&adj) {
            let is_cycle = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            if !is_cycle {
                continue;
            }
            let anchor = *scc.iter().min().expect("non-empty SCC");
            anchors.push(anchor);
            let mut members: Vec<usize> = scc.clone();
            members.sort_unstable();
            let names: Vec<&str> = members
                .iter()
                .map(|&s| self.spec.services[s].name.as_str())
                .collect();
            // Whether the loop can also *deadlock* is DSB014's job: it
            // looks at which edges hold finite pool slots, which catches
            // conn-pool-only cycles this all-tiers-block test missed.
            out.push(self.diag(
                Code::CallCycle,
                Severity::Error,
                ServiceId(anchor as u32),
                None,
                format!("call cycle among {{{}}}", names.join(", ")),
            ));
        }
        anchors
    }

    // -- DSB004 / DSB010 ----------------------------------------------------

    fn check_reachability(
        &self,
        edges: &[(ServiceId, ServiceId)],
        cycle_anchors: &[usize],
        out: &mut Vec<Diagnostic>,
    ) {
        let spec = self.spec;
        let n = spec.services.len();

        // Entry set: explicit entries, else in-degree-zero services plus
        // one anchor per cycle (cycle members have no in-degree-0
        // ancestor; DSB001 already covers them).
        let mut roots: Vec<usize> = self.entries.iter().map(|s| s.0 as usize).collect();
        if roots.is_empty() {
            let mut indeg = vec![0u32; n];
            for &(_, b) in edges {
                indeg[b.0 as usize] += 1;
            }
            roots = (0..n).filter(|&i| indeg[i] == 0).collect();
            roots.extend_from_slice(cycle_anchors);
        }

        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a.0 as usize].push(b.0 as usize);
        }
        let mut seen = vec![false; n];
        let mut stack = roots.clone();
        for &r in &roots {
            seen[r] = true;
        }
        while let Some(s) = stack.pop() {
            for &t in &adj[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        for (i, svc) in spec.services.iter().enumerate() {
            if !seen[i] {
                out.push(self.diag(
                    Code::UnreachableService,
                    Severity::Warning,
                    ServiceId(i as u32),
                    None,
                    format!(
                        "`{}` is unreachable: no entry point's call graph ever invokes it",
                        svc.name
                    ),
                ));
            }
        }

        // DSB010: endpoints of reachable non-entry services that no valid
        // call references (entry services' endpoints are client-facing).
        let mut used = vec![Vec::new(); n];
        for (i, svc) in spec.services.iter().enumerate() {
            used[i] = vec![false; svc.endpoints.len()];
        }
        for svc in &spec.services {
            for ep in &svc.endpoints {
                walk_calls(&ep.script, &mut |t, _| {
                    if resolve(spec, t).is_some() {
                        used[t.service.0 as usize][t.endpoint as usize] = true;
                    }
                });
            }
        }
        for (i, svc) in spec.services.iter().enumerate() {
            if roots.contains(&i) || !seen[i] {
                continue;
            }
            for (e, ep) in svc.endpoints.iter().enumerate() {
                if !used[i][e] {
                    out.push(self.diag(
                        Code::UnusedEndpoint,
                        Severity::Warning,
                        ServiceId(i as u32),
                        Some(&ep.name),
                        format!("endpoint `{}` is never called by any script", ep.name),
                    ));
                }
            }
        }
    }

    // -- DSB002 / DSB003 / DSB007 / DSB008 ----------------------------------

    fn check_pools(&self, plan: Option<&PlacementPlan>, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        for (i, svc) in spec.services.iter().enumerate() {
            let from = ServiceId(i as u32);

            // DSB008: partitioning with nothing to partition over.
            if svc.lb == LbPolicy::Partition && svc.initial_instances < 2 {
                out.push(self.diag(
                    Code::PartitionDegenerate,
                    Severity::Warning,
                    from,
                    None,
                    format!(
                        "`{}` uses partition load-balancing over a single instance: \
                         the partition key cannot spread load",
                        svc.name
                    ),
                ));
            }

            let blocking_workers = match (svc.concurrency, &svc.workers) {
                (Concurrency::Blocking, WorkerPolicy::Fixed(w)) => Some(*w),
                _ => None,
            };

            // Distinct callees reached synchronously from this service.
            let mut sync_callees: Vec<ServiceId> = Vec::new();
            for ep in &svc.endpoints {
                walk_calls(&ep.script, &mut |t, parallel| {
                    if !parallel
                        && resolve(spec, t).is_some()
                        && t.service != from
                        && !sync_callees.contains(&t.service)
                    {
                        sync_callees.push(t.service);
                    }
                });
            }

            for callee_id in sync_callees {
                let callee = &spec.services[callee_id.0 as usize];

                // DSB002: the Fig. 17 case-B shape — more blocking workers
                // than connections toward a head-of-line-blocked callee.
                if let Some(w) = blocking_workers {
                    if callee.protocol.blocking_connections() && callee.conn_limit < w {
                        out.push(self.diag(
                            Code::BlockingBackpressure,
                            Severity::Warning,
                            from,
                            None,
                            format!(
                                "{w} blocking workers of `{}` share only {} connections \
                                 toward `{}` ({}); under load, workers stall holding their \
                                 callers' connections while `{}` idles (Fig. 17 case B)",
                                svc.name,
                                callee.conn_limit,
                                callee.name,
                                callee.protocol.name(),
                                callee.name
                            ),
                        ));
                    }
                }

                // DSB007: same-host IPC cannot span a network hop. With a
                // placement plan, check the actual machine assignment;
                // without one, fall back to comparing zone hints.
                if callee.protocol.same_host_only() {
                    match plan {
                        Some(plan) => {
                            let callee_on: Vec<u32> =
                                plan.machines_of(callee_id).iter().map(|m| m.0).collect();
                            let mut missing: Vec<u32> = plan
                                .machines_of(from)
                                .iter()
                                .map(|m| m.0)
                                .filter(|m| !callee_on.contains(m))
                                .collect();
                            missing.sort_unstable();
                            missing.dedup();
                            if !missing.is_empty() {
                                out.push(self.diag(
                                    Code::IpcCrossZone,
                                    Severity::Warning,
                                    from,
                                    None,
                                    format!(
                                        "IPC edge `{}` -> `{}`: caller instances on \
                                         machines {missing:?} have no co-located `{}` \
                                         instance (same-host IPC cannot span machines)",
                                        svc.name, callee.name, callee.name,
                                    ),
                                ));
                            }
                        }
                        None if svc.zone_pref != callee.zone_pref => {
                            out.push(self.diag(
                                Code::IpcCrossZone,
                                Severity::Warning,
                                from,
                                None,
                                format!(
                                    "IPC edge `{}` ({}) -> `{}` ({}) crosses zones: \
                                     same-host IPC cannot span a network hop",
                                    svc.name,
                                    zone_name(svc.zone_pref),
                                    callee.name,
                                    zone_name(callee.zone_pref),
                                ),
                            ));
                        }
                        None => {}
                    }
                }
            }

            // DSB003: a single request's fan-out vs the callee's pool.
            for ep in &svc.endpoints {
                walk_fanouts(&ep.script, &mut |t, mean_n| {
                    let Some(callee) = resolve(spec, t) else {
                        return;
                    };
                    let WorkerPolicy::Fixed(w) = callee.workers else {
                        return; // on-demand pools absorb any fan-out
                    };
                    let total = (callee.initial_instances.max(1) * w) as f64;
                    if mean_n > total {
                        out.push(self.diag(
                            Code::FanoutOversubscription,
                            Severity::Warning,
                            from,
                            Some(&ep.name),
                            format!(
                                "fan-out of ~{:.0} parallel calls to `{}` exceeds its {} \
                                 total workers ({}x{}): one request can saturate the tier",
                                mean_n,
                                callee.name,
                                total as u64,
                                callee.initial_instances.max(1),
                                w
                            ),
                        ));
                    }
                });
            }
        }
    }

    // -- DSB014 -------------------------------------------------------------

    /// Circular-wait deadlock certification: restrict the call graph to
    /// *wait edges* — edges that hold a finite pool slot across the
    /// downstream call (the caller is blocking with fixed workers, or
    /// the callee's protocol holds one connection per outstanding
    /// request) — and report every cycle in that subgraph. Unlike the
    /// all-tiers-block special case DSB001 used to note, this also
    /// certifies conn-pool-only loops: event-driven tiers calling each
    /// other over HTTP/1.1 deadlock just the same once every connection
    /// slot is held by a request that cannot complete.
    fn check_wait_cycles(&self, edges: &[(ServiceId, ServiceId)], out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let n = spec.services.len();
        let held = |a: ServiceId, b: ServiceId| -> Option<&'static str> {
            let caller = &spec.services[a.0 as usize];
            let callee = &spec.services[b.0 as usize];
            if caller.concurrency == Concurrency::Blocking
                && matches!(caller.workers, WorkerPolicy::Fixed(_))
            {
                Some("a blocking worker")
            } else if callee.protocol.blocking_connections() {
                Some("a connection slot")
            } else {
                None
            }
        };
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            if held(a, b).is_some() {
                adj[a.0 as usize].push(b.0 as usize);
            }
        }
        for scc in tarjan_sccs(&adj) {
            let is_cycle = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
            if !is_cycle {
                continue;
            }
            let mut members = scc;
            members.sort_unstable();
            let anchor = members[0];
            let in_scc = |s: usize| members.binary_search(&s).is_ok();
            let mut holds: Vec<String> = Vec::new();
            for &s in &members {
                for &t in &adj[s] {
                    if !in_scc(t) {
                        continue;
                    }
                    let what = held(ServiceId(s as u32), ServiceId(t as u32))
                        .expect("wait edges carry a held resource");
                    holds.push(format!(
                        "`{}` holds {what} across `{}` -> `{}`",
                        spec.services[s].name, spec.services[s].name, spec.services[t].name
                    ));
                }
            }
            out.push(self.diag(
                Code::WaitCycle,
                Severity::Error,
                ServiceId(anchor as u32),
                None,
                format!(
                    "circular wait: {} — once the pools drain, every member waits on \
                     the next and no request can complete (static dual of Fig. 17 \
                     backpressure)",
                    holds.join(", "),
                ),
            ));
        }
    }

    // -- DSB015 -------------------------------------------------------------

    /// Lookahead certification: computes the app's
    /// [`LookaheadCertificate`](crate::LookaheadCertificate) under the
    /// deterministic placement plan and flags every call edge whose
    /// guaranteed minimum cross-machine delay is below the loopback
    /// epoch floor — a same-host-only protocol the load balancer can
    /// route across machines (zero bound), or co-located edge devices
    /// whose jittered link floor undercuts loopback. A conservative
    /// parallel engine sharded by machine could not advance even one
    /// local delivery between synchronizations on such an edge.
    fn check_lookahead(&self, cluster: &ClusterSpec, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let Some(cert) = lookahead_certificate(spec, cluster) else {
            return;
        };
        let floor = cluster.fabric.loopback_ns;
        let mut seen: Vec<(ServiceId, ServiceId)> = Vec::new();
        // Hops are sorted by delay first, so the first hop of each edge
        // is that edge's limiting pair.
        for h in &cert.hops {
            if h.min_delay_ns >= floor || seen.contains(&(h.caller, h.callee)) {
                continue;
            }
            seen.push((h.caller, h.callee));
            let caller = &spec.services[h.caller.0 as usize];
            let callee = &spec.services[h.callee.0 as usize];
            let message = if h.same_host_only {
                format!(
                    "zero-lookahead edge `{}` -> `{}`: the {} load balancer can route \
                     this same-host-only call across machines (e.g. machine {} -> {}), \
                     leaving a parallel engine no delay bound at all — shards would \
                     run in lock-step",
                    caller.name,
                    callee.name,
                    lb_name(callee.lb),
                    h.from_machine.0,
                    h.to_machine.0,
                )
            } else {
                format!(
                    "cross-machine hop `{}` -> `{}` (machine {} -> {}) certifies only \
                     {} ns of lookahead, under the {floor} ns loopback epoch floor: \
                     shards could not advance one local delivery between syncs",
                    caller.name, callee.name, h.from_machine.0, h.to_machine.0, h.min_delay_ns,
                )
            };
            out.push(self.diag(
                Code::ZeroLookahead,
                Severity::Warning,
                h.caller,
                None,
                message,
            ));
        }
    }

    // -- DSB016 -------------------------------------------------------------

    /// Cross-shard write-visibility windows, by abstract interpretation
    /// of the behaviour scripts. Two facts are extracted per app:
    ///
    /// 1. *Cache-fill pairs* `(C, D)`: partition-routed store `C` is
    ///    read before partition-routed store `D` on some read path — the
    ///    cache-aside shape, where a miss on `C` is refilled from `D`.
    /// 2. *Certain write orders*: store writes that execute
    ///    unconditionally (not inside any probabilistic branch arm) on
    ///    one endpoint, in script order.
    ///
    /// A write path that certainly writes `C` before certainly writing
    /// `D` inverts the cache-aside protocol: between the two writes a
    /// reader that misses `C` refills it from the *pre-write* `D`, and
    /// under a parallel engine that window spans the certified lookahead
    /// epoch across shards. Probabilistic flushes (write-behind caches)
    /// and writes inside cache-miss arms are exempt — only a *certain*
    /// inversion fires.
    fn check_write_visibility(&self, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        // 1. Cache-fill pairs from every script's read sequences.
        let mut pairs: Vec<(ServiceId, ServiceId)> = Vec::new();
        for svc in &spec.services {
            for ep in &svc.endpoints {
                let mut reads_seen = Vec::new();
                read_pairs(spec, &ep.script, &mut reads_seen, &mut pairs);
            }
        }
        if pairs.is_empty() {
            return;
        }
        pairs.sort_unstable_by_key(|&(c, d)| (c.0, d.0));
        // 2. Certain write order per endpoint vs the pairs.
        for (i, svc) in spec.services.iter().enumerate() {
            for ep in &svc.endpoints {
                let mut writes = Vec::new();
                certain_store_writes(spec, &ep.script, &mut writes);
                for &(c, d) in &pairs {
                    let Some(ci) = writes.iter().position(|&w| w == c) else {
                        continue;
                    };
                    if !writes[ci + 1..].contains(&d) {
                        continue;
                    }
                    out.push(self.diag(
                        Code::WriteVisibilityRace,
                        Severity::Warning,
                        ServiceId(i as u32),
                        Some(&ep.name),
                        format!(
                            "write path updates cache `{}` before the durable write to \
                             `{}` (read paths consult `{}` first): a reader missing the \
                             cache inside that window refills it from the pre-write \
                             store and the update is lost — under a sharded engine the \
                             window spans the certified lookahead epoch; write `{}` \
                             first, then update or invalidate `{}`",
                            spec.services[c.0 as usize].name,
                            spec.services[d.0 as usize].name,
                            spec.services[c.0 as usize].name,
                            spec.services[d.0 as usize].name,
                            spec.services[c.0 as usize].name,
                        ),
                    ));
                }
            }
        }
    }

    // -- DSB017 -------------------------------------------------------------

    /// Sole-cache replication: collects every service targeted by a
    /// `CacheLookup` step. When the app has exactly one such cache tier
    /// and it runs a single instance, a `ChaosPlan` cache-loss or
    /// machine crash takes the whole cached key space down at once —
    /// every lookup app-wide falls through cold to the backing store,
    /// the thundering-herd refill the failure studies warn about. Two
    /// or more instances under partition routing leave warm shards
    /// serving through any single fault.
    fn check_cache_replication(&self, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let mut caches: Vec<ServiceId> = Vec::new();
        for svc in &spec.services {
            for ep in &svc.endpoints {
                walk_cache_targets(&ep.script, &mut |c| {
                    if !caches.contains(&c) {
                        caches.push(c);
                    }
                });
            }
        }
        let [sole] = caches[..] else {
            return; // no cache tiers, or losses leave siblings serving
        };
        let Some(cache) = spec.services.get(sole.0 as usize) else {
            return; // dangling ref — DSB005's finding
        };
        if cache.initial_instances >= 2 {
            return;
        }
        out.push(self.diag(
            Code::SingleReplicaCache,
            Severity::Warning,
            sole,
            None,
            format!(
                "sole cache tier `{}` runs a single instance: one cache-loss or \
                 machine-crash fault evicts the entire cached key space and every \
                 lookup in the app refills cold against the backing store at once; \
                 run >= 2 partition-routed instances so a single fault leaves warm \
                 shards serving",
                cache.name,
            ),
        ));
    }

    // -- DSB009 -------------------------------------------------------------

    fn check_capacity(&self, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let Some(rates) = endpoint_rates(spec, &self.offered) else {
            return;
        };
        for (i, svc) in spec.services.iter().enumerate() {
            let WorkerPolicy::Fixed(w) = svc.workers else {
                continue; // on-demand tiers scale with load
            };
            let capacity = (svc.initial_instances.max(1) * w) as f64;
            let busy: f64 = svc
                .endpoints
                .iter()
                .enumerate()
                .map(|(e, ep)| rates[i][e] * local_demand_ns(&ep.script) / 1e9)
                .sum();
            let util = busy / capacity;
            if util < 0.75 {
                // Raw utilization under-reports queueing pressure on small
                // pools: an M/M/k queue with few workers builds significant
                // wait long before 75% utilization (k=1 waits its own
                // service time at rho=1/2). Flag tiers whose expected
                // M/M/k queueing delay exceeds half a service time.
                if busy <= 0.0 {
                    continue;
                }
                let wait_over_service = erlang_c(capacity as u64, busy) / (capacity * (1.0 - util));
                if wait_over_service < 0.5 {
                    continue;
                }
                out.push(self.diag(
                    Code::TierOverload,
                    Severity::Warning,
                    ServiceId(i as u32),
                    None,
                    format!(
                        "offered load keeps ~{busy:.1} workers of `{}` busy against a \
                         pool of {} ({}x{}): only {:.0}% raw utilization, but M/M/{} \
                         queueing delay is ~{:.1}x the service time — the pool is too \
                         small to absorb arrival bursts",
                        svc.name,
                        capacity as u64,
                        svc.initial_instances.max(1),
                        w,
                        util * 100.0,
                        capacity as u64,
                        wait_over_service,
                    ),
                ));
                continue;
            }
            let (severity, verdict) = if util >= 1.0 {
                (Severity::Error, "queues grow without bound")
            } else {
                (Severity::Warning, "the tier is near saturation")
            };
            out.push(self.diag(
                Code::TierOverload,
                severity,
                ServiceId(i as u32),
                None,
                format!(
                    "offered load keeps ~{busy:.1} workers of `{}` busy against a pool \
                     of {} ({}x{}): {verdict} (service demand only; downstream waits \
                     make the true pressure higher)",
                    svc.name,
                    capacity as u64,
                    svc.initial_instances.max(1),
                    w
                ),
            ));
        }
    }

    // -- DSB011 -------------------------------------------------------------

    /// Offered load vs *per-machine core budgets*: a machine hosting
    /// several hot tiers can be overcommitted even when every pool passes
    /// DSB009, because worker counts say nothing about the cores the
    /// workers share. Uses the same deterministic [`PlacementPlan`] the
    /// simulator provisions with, compute demand only (I/O holds a
    /// worker, not a core), rescaled by each machine's core model.
    fn check_machine_budget(
        &self,
        cluster: &ClusterSpec,
        plan: &PlacementPlan,
        out: &mut Vec<Diagnostic>,
    ) {
        let spec = self.spec;
        let Some(rates) = endpoint_rates(spec, &self.offered) else {
            return;
        };
        // Per-instance compute demand in reference-core erlangs.
        let per_instance: Vec<f64> = spec
            .services
            .iter()
            .enumerate()
            .map(|(i, svc)| {
                let total: f64 = svc
                    .endpoints
                    .iter()
                    .enumerate()
                    .map(|(e, ep)| rates[i][e] * compute_demand_ns(&ep.script) / 1e9)
                    .sum();
                total / plan.machines_of(ServiceId(i as u32)).len().max(1) as f64
            })
            .collect();
        // Accumulate actual-core erlangs per machine (and per service).
        let mut busy = vec![0.0f64; cluster.machines.len()];
        let mut by_service: Vec<BTreeMap<usize, f64>> =
            vec![BTreeMap::new(); cluster.machines.len()];
        for &(svc, m) in plan.instances() {
            let mi = m.0 as usize;
            let slowdown = cluster.machines[mi]
                .core
                .speed_factor(&spec.services[svc.0 as usize].profile);
            let erlangs = per_instance[svc.0 as usize] * slowdown;
            if erlangs <= 0.0 {
                continue;
            }
            busy[mi] += erlangs;
            *by_service[mi].entry(svc.0 as usize).or_insert(0.0) += erlangs;
        }
        for (mi, machine) in cluster.machines.iter().enumerate() {
            let cores = machine.cores.max(1) as f64;
            let util = busy[mi] / cores;
            if util < 0.8 {
                continue;
            }
            let severity = if util >= 1.0 {
                Severity::Error
            } else {
                Severity::Warning
            };
            let mut top: Vec<(usize, f64)> = by_service[mi].iter().map(|(&s, &e)| (s, e)).collect();
            top.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("erlangs are finite")
                    .then(a.0.cmp(&b.0))
            });
            top.truncate(3);
            let hot: Vec<String> = top
                .iter()
                .map(|&(s, e)| format!("`{}` ~{e:.1}", spec.services[s].name))
                .collect();
            out.push(Diagnostic {
                code: Code::MachineOvercommit,
                severity,
                service: None,
                service_name: String::new(),
                endpoint: None,
                message: format!(
                    "machine {mi} ({:?}, {} cores) is overcommitted: resident tiers \
                     demand ~{:.1} cores ({}) — each pool may pass its own capacity \
                     check, but they share this machine's core budget",
                    machine.zone,
                    machine.cores,
                    busy[mi],
                    hot.join(", "),
                ),
            });
        }
    }

    // -- DSB012 -------------------------------------------------------------

    /// Trace-driven critical-path queueing: runs a short deterministic
    /// calibration simulation, attributes end-to-end latency with
    /// [`dsb_trace::critical_path`], and flags tiers sitting on a
    /// blocking fan-out chain whose *measured* worker queueing exceeds
    /// several times what per-tier Erlang-C admits at this load. That is
    /// exactly the blind spot of DSB009: a fan-out synchronizes arrivals
    /// downstream, so the Poisson assumption under M/M/k collapses.
    fn check_critical_path(&self, cluster: &ClusterSpec, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let Some(rates) = endpoint_rates(spec, &self.offered) else {
            return;
        };
        // Which services sit downstream (inclusive) of a parallel
        // fan-out, and through which (fanner, fan-target) edge.
        let fan = fan_chains(spec);
        if fan.is_empty() && self.slo.is_none() {
            return;
        }

        // Short calibration run: sample every trace, fixed seed, evenly
        // spaced arrivals per offered entry (keys spread over shards).
        let mut cal = cluster.clone();
        cal.trace_sample_prob = 1.0;
        let mut sim = Simulation::new(spec.clone(), cal, CALIBRATION_SEED);
        for (idx, &(entry, qps)) in self.offered.iter().enumerate() {
            if qps <= 0.0 || resolve(spec, &entry).is_none() {
                continue;
            }
            let n = (qps * self.calibration_secs).ceil() as u64;
            for j in 0..n {
                let at = SimTime::from_nanos((j as f64 * 1e9 / qps) as u64);
                let key = (j + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                sim.inject(at, entry, RequestType(idx as u32), 256, key);
            }
        }
        // With an SLO attached, scrape the run in CALIBRATION_WINDOWS
        // slices so burn rates and backpressure series exist afterwards.
        // Scraping is read-only, so the event sequence — and therefore
        // DSB012 and every golden report — is identical either way.
        let scraper = self.slo.map(|target| {
            let interval = SimDuration::from_nanos(
                ((self.calibration_secs * 1e9 / CALIBRATION_WINDOWS as f64) as u64).max(1),
            );
            let mut scr = Scraper::new(interval);
            for idx in 0..self.offered.len() {
                scr = scr.with_slo(Slo::p99(RequestType(idx as u32), target));
            }
            for step in 1..=CALIBRATION_WINDOWS {
                let t = SimTime::ZERO + interval * step;
                sim.advance_to(t);
                scr.tick(&sim, t);
            }
            sim.run_until_idle();
            scr.flush(&sim);
            scr
        });
        if scraper.is_none() {
            sim.run_until_idle();
        }
        if let Some(scr) = &scraper {
            self.check_qos_culprit(&sim, scr, out);
        }
        if fan.is_empty() {
            return;
        }

        // Critical-path attribution share per service across all traces.
        let n = spec.services.len();
        let mut attr = vec![0u128; n];
        for (_, spans) in sim.collector().sampled_traces() {
            for a in dsb_trace::critical_path(spans) {
                if (a.service as usize) < n {
                    attr[a.service as usize] += a.ns as u128;
                }
            }
        }
        let total_attr: u128 = attr.iter().sum();
        if total_attr == 0 {
            return;
        }

        for (i, svc) in spec.services.iter().enumerate() {
            let Some(&(fanner, target)) = fan.get(&i) else {
                continue; // sequential queueing is DSB009's domain
            };
            let WorkerPolicy::Fixed(w) = svc.workers else {
                continue; // on-demand pools spawn through bursts
            };
            let k = (svc.initial_instances.max(1) * w) as f64;
            let total_rate: f64 = rates[i].iter().sum();
            let offered_erl: f64 = svc
                .endpoints
                .iter()
                .enumerate()
                .map(|(e, ep)| rates[i][e] * local_demand_ns(&ep.script) / 1e9)
                .sum();
            if total_rate <= 0.0 || offered_erl <= 0.0 || offered_erl >= k {
                continue; // idle, or saturated (DSB009 already errors)
            }
            let share = attr[i] as f64 / total_attr as f64;
            if share < 0.05 {
                continue; // not on the latency-critical path
            }
            let Some(st) = sim.collector().service(i as u32) else {
                continue;
            };
            if st.spans < 8 {
                continue; // too few observations to trust the mean
            }
            let measured_ns = st.queue_ns as f64 / st.spans as f64;
            let mean_service_ns = offered_erl * 1e9 / total_rate;
            let predicted_ns =
                erlang_c(k as u64, offered_erl) / (k * (1.0 - offered_erl / k)) * mean_service_ns;
            // Fire only on a clear multiple plus an absolute floor, so
            // near-zero predictions don't flag microsecond noise.
            if measured_ns <= 4.0 * predicted_ns + 500_000.0 {
                continue;
            }
            out.push(self.diag(
                Code::CriticalPathQueueing,
                Severity::Warning,
                ServiceId(i as u32),
                None,
                format!(
                    "calibration run measured ~{:.1} ms mean worker queueing at `{}` \
                     vs ~{:.1} ms admitted by M/M/{} at this load ({:.0}% of the \
                     end-to-end critical path): the fan-out `{}` -> `{}` synchronizes \
                     arrivals, which per-tier Erlang-C cannot see",
                    measured_ns / 1e6,
                    svc.name,
                    predicted_ns / 1e6,
                    k as u64,
                    share * 100.0,
                    spec.services[fanner].name,
                    spec.services[target].name,
                ),
            ));
        }
    }

    // -- DSB013 -------------------------------------------------------------

    /// Runtime-vs-static bottleneck comparison. When a burn-rate alert
    /// fires on the scraped calibration run, the telemetry root-cause
    /// engine walks saturated connection pools downstream of the tier
    /// the critical path bills the latency to. If the tier it names is
    /// not the tier static capacity analysis ranks busiest, the spec has
    /// a Fig. 17/18-style divergence no static pass can see: the billed
    /// tier holds connections while an apparently idle tier causes the
    /// wait.
    fn check_qos_culprit(&self, sim: &Simulation, scr: &Scraper, out: &mut Vec<Diagnostic>) {
        let spec = self.spec;
        let Some(rates) = endpoint_rates(spec, &self.offered) else {
            return;
        };
        // Static prediction: highest offered utilization across fixed
        // worker pools (lowest service id wins ties).
        let mut predicted: Option<(usize, f64)> = None;
        for (i, svc) in spec.services.iter().enumerate() {
            let WorkerPolicy::Fixed(w) = svc.workers else {
                continue;
            };
            let k = (svc.initial_instances.max(1) * w) as f64;
            let erl: f64 = svc
                .endpoints
                .iter()
                .enumerate()
                .map(|(e, ep)| rates[i][e] * local_demand_ns(&ep.script) / 1e9)
                .sum();
            let util = erl / k;
            if predicted.is_none_or(|(_, u)| util > u) {
                predicted = Some((i, util));
            }
        }
        let Some((predicted, util)) = predicted else {
            return;
        };
        let target = self.slo.expect("only called with an SLO attached");
        for slo in scr.slos() {
            // One diagnostic per request type: report the first alert.
            let Some(alert) = evaluate(scr.registry(), slo, &BurnRule::default())
                .into_iter()
                .next()
            else {
                continue;
            };
            let Some(rc) = dsb_telemetry::diagnose(sim, scr.registry(), &alert) else {
                continue;
            };
            if rc.culprit as usize == predicted {
                continue;
            }
            let chain = rc
                .chain
                .iter()
                .map(|t| format!("`{}`", spec.services[t.service as usize].name))
                .collect::<Vec<_>>()
                .join(" -> ");
            out.push(self.diag(
                Code::QosCulpritMismatch,
                Severity::Warning,
                ServiceId(rc.culprit),
                None,
                format!(
                    "calibration run burned the {:.0} ms p99 SLO for request type {} \
                     ({}/{} completions over target): the runtime root cause is \
                     `{}` (backpressure chain {chain}), not `{}` which static \
                     capacity analysis ranks busiest (~{:.0}% utilization) — \
                     latency is billed upstream of the tier causing it",
                    target.as_millis_f64(),
                    alert.rtype.0,
                    alert.violations,
                    alert.total,
                    spec.services[rc.culprit as usize].name,
                    spec.services[predicted].name,
                    util * 100.0,
                ),
            ));
        }
    }
}

/// Seed of the DSB012 calibration simulation: arbitrary but fixed, so
/// analyzer reports are byte-stable across runs.
const CALIBRATION_SEED: u64 = 0x00D5_B012;

/// Number of scrape windows the DSB013 calibration run is sliced into.
const CALIBRATION_WINDOWS: u64 = 8;

/// For every service reachable (inclusive) from some parallel fan-out
/// target, the `(fanning caller, fan target)` pair that reaches it.
/// Lowest caller id wins, so messages are deterministic.
fn fan_chains(spec: &AppSpec) -> BTreeMap<usize, (usize, usize)> {
    let n = spec.services.len();
    let mut adj = vec![Vec::new(); n];
    for (a, b) in valid_edges(spec) {
        adj[a.0 as usize].push(b.0 as usize);
    }
    let mut out = BTreeMap::new();
    for (i, svc) in spec.services.iter().enumerate() {
        for ep in &svc.endpoints {
            walk_calls(&ep.script, &mut |t, parallel| {
                if !parallel || resolve(spec, t).is_none() {
                    return;
                }
                let target = t.service.0 as usize;
                // BFS downstream of the fan target, inclusive.
                let mut seen = vec![false; n];
                let mut stack = vec![target];
                seen[target] = true;
                while let Some(s) = stack.pop() {
                    out.entry(s).or_insert((i, target));
                    for &w in &adj[s] {
                        if !seen[w] {
                            seen[w] = true;
                            stack.push(w);
                        }
                    }
                }
            });
        }
    }
    out
}

fn zone_name(z: Option<dsb_net::Zone>) -> String {
    match z {
        None => "datacenter".to_string(),
        Some(z) => format!("{z:?}"),
    }
}

fn lb_name(lb: LbPolicy) -> &'static str {
    match lb {
        LbPolicy::RoundRobin => "round-robin",
        LbPolicy::LeastOutstanding => "least-outstanding",
        LbPolicy::Partition => "partition",
    }
}

/// Endpoint names that read a record from a store.
const READ_ENDPOINTS: &[&str] = &["get", "find", "read", "query", "lookup", "fetch", "load"];
/// Endpoint names that mutate a record in a store.
const WRITE_ENDPOINTS: &[&str] = &[
    "set",
    "insert",
    "update",
    "write",
    "put",
    "delete",
    "invalidate",
    "store",
    "push",
    "append",
];

/// Classifies a call target as a store operation: the callee must be
/// partition-routed (a sharded store) and the endpoint name must be a
/// known read or write verb. Returns `(store service, is_write)`.
fn store_op(spec: &AppSpec, t: &dsb_core::EndpointRef) -> Option<(ServiceId, bool)> {
    let callee = resolve(spec, t)?;
    if callee.lb != LbPolicy::Partition {
        return None;
    }
    let name = callee.endpoints[t.endpoint as usize].name.as_str();
    if READ_ENDPOINTS.contains(&name) {
        Some((t.service, false))
    } else if WRITE_ENDPOINTS.contains(&name) {
        Some((t.service, true))
    } else {
        None
    }
}

/// Collects `(C, D)` pairs where store `C` is read before store `D` in
/// script order (both branch arms walked — an over-approximation that
/// only ever *adds* scrutiny, never misses a real pair). The first
/// orientation observed wins: once `C` is known to be consulted before
/// `D`, a later re-read of `C` (a fan-out over cache keys, say) must
/// not also record the reverse pair, or every cache-aside read path
/// would accuse both orders.
fn read_pairs(
    spec: &AppSpec,
    steps: &[dsb_core::Step],
    reads_seen: &mut Vec<ServiceId>,
    pairs: &mut Vec<(ServiceId, ServiceId)>,
) {
    use dsb_core::Step;
    for s in steps {
        match s {
            Step::Call { target, .. } | Step::FanCall { target, .. } => {
                if let Some((store, false)) = store_op(spec, target) {
                    for &c in reads_seen.iter() {
                        if c != store
                            && !pairs.contains(&(c, store))
                            && !pairs.contains(&(store, c))
                        {
                            pairs.push((c, store));
                        }
                    }
                    if !reads_seen.contains(&store) {
                        reads_seen.push(store);
                    }
                }
            }
            Step::ParCall { calls } => {
                for (t, _) in calls {
                    if let Some((store, false)) = store_op(spec, t) {
                        if !reads_seen.contains(&store) {
                            reads_seen.push(store);
                        }
                    }
                }
            }
            Step::Branch { then, els, .. } | Step::CacheLookup { then, els, .. } => {
                read_pairs(spec, then, reads_seen, pairs);
                read_pairs(spec, els, reads_seen, pairs);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Visits the service behind every `CacheLookup` step, both arms walked.
fn walk_cache_targets(steps: &[dsb_core::Step], f: &mut impl FnMut(ServiceId)) {
    use dsb_core::Step;
    for s in steps {
        match s {
            Step::CacheLookup {
                cache, then, els, ..
            } => {
                f(cache.service);
                walk_cache_targets(then, f);
                walk_cache_targets(els, f);
            }
            Step::Branch { then, els, .. } => {
                walk_cache_targets(then, f);
                walk_cache_targets(els, f);
            }
            _ => {}
        }
    }
}

/// Collects the stores *certainly* written by one invocation, in script
/// order: `Call`/`FanCall` write targets at cumulative branch
/// probability 1.0. Branch arms with `0 < p < 1` are skipped (their
/// writes may not happen — the write-behind exemption), as are `ParCall`
/// members (no defined order between them).
fn certain_store_writes(spec: &AppSpec, steps: &[dsb_core::Step], writes: &mut Vec<ServiceId>) {
    use dsb_core::Step;
    for s in steps {
        match s {
            Step::Call { target, .. } | Step::FanCall { target, .. } => {
                if let Some((store, true)) = store_op(spec, target) {
                    writes.push(store);
                }
            }
            Step::Branch { p, then, els } => {
                if *p >= 1.0 {
                    certain_store_writes(spec, then, writes);
                } else if *p <= 0.0 {
                    certain_store_writes(spec, els, writes);
                }
            }
            Step::CacheLookup { hit, then, els, .. } => {
                if *hit >= 1.0 {
                    certain_store_writes(spec, then, writes);
                } else if *hit <= 0.0 {
                    certain_store_writes(spec, els, writes);
                }
            }
            Step::ParCall { .. } | Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Iterative Tarjan strongly-connected components; returns each SCC as a
/// list of node indices (order unspecified inside an SCC).
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS frames: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::Step;
    use dsb_net::{Protocol, Zone};
    use dsb_simcore::Dist;
    use std::sync::Arc;

    /// A minimal hand-built service with one endpoint running `script`.
    fn svc(name: &str, script: Vec<Step>) -> dsb_core::ServiceSpec {
        dsb_core::ServiceSpec {
            name: name.to_string(),
            profile: dsb_uarch::UarchProfile::microservice_default(),
            concurrency: Concurrency::Blocking,
            workers: WorkerPolicy::Fixed(8),
            protocol: Protocol::ThriftRpc,
            lb: LbPolicy::RoundRobin,
            initial_instances: 1,
            conn_limit: 128,
            zone_pref: None,
            placement: dsb_core::PlacementHint::Spread,
            endpoints: vec![dsb_core::EndpointSpec {
                name: "run".to_string(),
                resp_bytes: Dist::constant(64.0),
                script: Arc::new(script),
            }],
        }
    }

    fn ep(service: u32) -> EndpointRef {
        EndpointRef {
            service: ServiceId(service),
            endpoint: 0,
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        let mut v: Vec<Code> = diags.iter().map(|d| d.code).collect();
        v.dedup();
        v
    }

    #[test]
    fn clean_chain_has_no_diagnostics() {
        let spec = AppSpec {
            name: "chain".into(),
            services: vec![
                svc("front", vec![Step::call(ep(1), 64.0)]),
                svc("mid", vec![Step::call(ep(2), 64.0)]),
                svc("leaf", vec![Step::work_us(5.0)]),
            ],
        };
        assert!(analyze(&spec).is_empty(), "{:?}", analyze(&spec));
    }

    #[test]
    fn cycle_of_blocking_tiers_reports_cycle_and_wait_cycle() {
        let spec = AppSpec {
            name: "loop".into(),
            services: vec![
                svc("a", vec![Step::call(ep(1), 64.0)]),
                svc("b", vec![Step::call(ep(0), 64.0)]),
            ],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::CallCycle, Code::WaitCycle]);
        assert_eq!(d[0].severity, Severity::Error);
        assert!(d[0].message.contains("a, b"), "{}", d[0].message);
        assert_eq!(d[1].severity, Severity::Error);
        assert!(
            d[1].message.contains("holds a blocking worker"),
            "{}",
            d[1].message
        );
    }

    #[test]
    fn async_thrift_cycle_is_a_cycle_but_not_a_wait_cycle() {
        // Event-driven tiers over a multiplexing protocol hold nothing
        // across the call: the loop is a design smell (DSB001) but it
        // cannot deadlock — exactly the DSB001/DSB014 delta.
        let mut a = svc("a", vec![Step::call(ep(1), 64.0)]);
        let mut b = svc("b", vec![Step::call(ep(0), 64.0)]);
        a.concurrency = Concurrency::Async;
        b.concurrency = Concurrency::Async;
        let spec = AppSpec {
            name: "loop".into(),
            services: vec![a, b],
        };
        assert_eq!(codes(&analyze(&spec)), vec![Code::CallCycle]);
    }

    #[test]
    fn conn_pool_only_cycle_still_deadlocks() {
        // The case the old all-tiers-block note missed: event-driven
        // tiers whose *protocol* holds one connection per outstanding
        // request form a circular wait through the connection pools.
        let mut a = svc("a", vec![Step::call(ep(1), 64.0)]);
        let mut b = svc("b", vec![Step::call(ep(0), 64.0)]);
        for s in [&mut a, &mut b] {
            s.concurrency = Concurrency::Async;
            s.protocol = Protocol::Http1;
        }
        let spec = AppSpec {
            name: "loop".into(),
            services: vec![a, b],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::CallCycle, Code::WaitCycle]);
        assert!(
            d[1].message.contains("holds a connection slot"),
            "{}",
            d[1].message
        );
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let spec = AppSpec {
            name: "self".into(),
            services: vec![svc("a", vec![Step::call(ep(0), 64.0)])],
        };
        assert_eq!(
            codes(&analyze(&spec)),
            vec![Code::CallCycle, Code::WaitCycle]
        );
    }

    #[test]
    fn blocking_backpressure_flags_small_pool() {
        let mut callee = svc("memcached", vec![Step::work_us(5.0)]);
        callee.protocol = Protocol::Http1;
        callee.conn_limit = 2;
        let mut caller = svc("nginx", vec![Step::call(ep(0), 64.0)]);
        caller.workers = WorkerPolicy::Fixed(64);
        let spec = AppSpec {
            name: "twotier".into(),
            services: vec![callee, caller],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::BlockingBackpressure]);
        assert_eq!(d[0].service_name, "nginx");
        assert!(d[0].message.contains("Fig. 17"), "{}", d[0].message);

        // An event-driven caller releases its worker: no finding.
        let mut spec2 = spec.clone();
        spec2.services[1].concurrency = Concurrency::Async;
        assert!(analyze(&spec2).is_empty());

        // A pool at least as large as the worker count: no finding.
        let mut spec3 = spec;
        spec3.services[0].conn_limit = 64;
        assert!(analyze(&spec3).is_empty());
    }

    #[test]
    fn fanout_oversubscription_flags_wide_fan() {
        let callee = svc("timeline", vec![Step::work_us(5.0)]);
        let caller = svc(
            "compose",
            vec![Step::FanCall {
                target: ep(0),
                req_bytes: Dist::constant(64.0),
                n: Dist::constant(100.0),
            }],
        );
        let spec = AppSpec {
            name: "fan".into(),
            services: vec![callee, caller],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::FanoutOversubscription]);
        assert_eq!(d[0].endpoint.as_deref(), Some("run"));

        // Fan within the pool: clean.
        let mut spec2 = spec;
        spec2.services[0].workers = WorkerPolicy::Fixed(128);
        assert!(analyze(&spec2).is_empty());
    }

    #[test]
    fn unreachable_service_flagged_with_explicit_entry() {
        let spec = AppSpec {
            name: "island".into(),
            services: vec![
                svc("front", vec![Step::work_us(1.0)]),
                svc("orphan", vec![Step::work_us(1.0)]),
            ],
        };
        // Without entries both are in-degree-0 roots: clean.
        assert!(analyze(&spec).is_empty());
        // With an explicit front-end, the orphan is dead weight.
        let d = Analyzer::new(&spec).entry(ServiceId(0)).run();
        assert_eq!(codes(&d), vec![Code::UnreachableService]);
        assert_eq!(d[0].service_name, "orphan");
    }

    #[test]
    fn dangling_endpoint_is_an_error() {
        let spec = AppSpec {
            name: "dangle".into(),
            services: vec![svc(
                "front",
                vec![Step::call(
                    EndpointRef {
                        service: ServiceId(9),
                        endpoint: 0,
                    },
                    64.0,
                )],
            )],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::DanglingEndpoint]);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn parallel_fanout_to_blocking_protocol_is_an_error() {
        let mut callee = svc("php", vec![Step::work_us(5.0)]);
        callee.protocol = Protocol::Fcgi;
        let caller = svc(
            "front",
            vec![Step::ParCall {
                calls: vec![(ep(0), Dist::constant(64.0))],
            }],
        );
        let spec = AppSpec {
            name: "par".into(),
            services: vec![callee, caller],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::ParallelToBlocking]);
        assert_eq!(d[0].severity, Severity::Error);
    }

    #[test]
    fn ipc_across_zones_flagged() {
        let mut callee = svc("sensor", vec![Step::work_us(1.0)]);
        callee.protocol = Protocol::Ipc;
        callee.zone_pref = Some(dsb_net::Zone::Edge);
        let caller = svc("planner", vec![Step::call(ep(0), 64.0)]); // datacenter
        let spec = AppSpec {
            name: "zones".into(),
            services: vec![callee, caller],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::IpcCrossZone]);

        // Same zone on both ends: clean.
        let mut spec2 = spec;
        spec2.services[1].zone_pref = Some(dsb_net::Zone::Edge);
        assert!(analyze(&spec2).is_empty());
    }

    #[test]
    fn partition_over_one_instance_flagged() {
        let mut shard = svc("mongo", vec![Step::work_us(1.0)]);
        shard.lb = LbPolicy::Partition;
        let spec = AppSpec {
            name: "shard".into(),
            services: vec![shard, svc("front", vec![Step::call(ep(0), 64.0)])],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::PartitionDegenerate]);

        let mut spec2 = spec;
        spec2.services[0].initial_instances = 4;
        assert!(analyze(&spec2).is_empty());
    }

    #[test]
    fn unused_endpoint_flagged_only_on_called_services() {
        let mut store = svc("store", vec![Step::work_us(1.0)]);
        store.endpoints.push(dsb_core::EndpointSpec {
            name: "never".to_string(),
            resp_bytes: Dist::constant(1.0),
            script: Arc::new(vec![]),
        });
        let spec = AppSpec {
            name: "dead".into(),
            services: vec![store, svc("front", vec![Step::call(ep(0), 64.0)])],
        };
        let d = analyze(&spec);
        assert_eq!(codes(&d), vec![Code::UnusedEndpoint]);
        assert_eq!(d[0].endpoint.as_deref(), Some("never"));
    }

    #[test]
    fn overload_fires_only_with_offered_load() {
        // 8 workers x 1 instance; 10ms of local demand per request.
        let leaf = svc(
            "db",
            vec![Step::Io {
                ns: Dist::constant(10_000_000.0),
            }],
        );
        let spec = AppSpec {
            name: "cap".into(),
            services: vec![leaf, svc("front", vec![Step::call(ep(0), 64.0)])],
        };
        assert!(analyze(&spec).is_empty());

        // 2000 qps x 10 ms = 20 busy workers > 8: error.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 2000.0)
            .run();
        assert_eq!(codes(&d), vec![Code::TierOverload]);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].service_name, "db");

        // 700 qps x 10 ms = 7 busy workers: near saturation, warning.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 700.0)
            .run();
        assert_eq!(codes(&d), vec![Code::TierOverload]);
        assert_eq!(d[0].severity, Severity::Warning);

        // 100 qps: clean.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 100.0)
            .run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn branch_weights_scale_offered_load() {
        // Only 10% of front requests hit the db: 1000 qps -> 100 qps there.
        let leaf = svc(
            "db",
            vec![Step::Io {
                ns: Dist::constant(10_000_000.0),
            }],
        );
        let front = svc(
            "front",
            vec![Step::Branch {
                p: 0.1,
                then: Arc::new(vec![Step::call(ep(0), 64.0)]),
                els: Arc::new(vec![]),
            }],
        );
        let spec = AppSpec {
            name: "branchy".into(),
            services: vec![leaf, front],
        };
        // 1000 qps x 0.1 x 10ms = 1 busy worker out of 8: clean.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 1000.0)
            .run();
        assert!(d.is_empty(), "{d:?}");
        // 10x the load pushes the db over its pool.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 10_000.0)
            .run();
        assert_eq!(codes(&d), vec![Code::TierOverload]);
    }

    #[test]
    fn erlang_c_matches_known_values() {
        // M/M/1: C equals the utilization.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-9);
        // Known table value: k=2, a=1 erlang -> C = 1/3.
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-9);
        // At or past saturation: certain wait.
        assert_eq!(erlang_c(4, 4.0), 1.0);
        assert_eq!(erlang_c(4, 5.0), 1.0);
    }

    #[test]
    fn small_pool_queueing_flagged_below_raw_threshold() {
        // A single-worker tier at 40% raw utilization: M/M/1 expected
        // wait is rho/(1-rho) = 0.67 service times, flagged well before
        // the 75% raw-utilization threshold.
        let mut leaf = svc(
            "queue",
            vec![Step::Io {
                ns: Dist::constant(10_000_000.0),
            }],
        );
        leaf.workers = WorkerPolicy::Fixed(1);
        let spec = AppSpec {
            name: "mm1".into(),
            services: vec![leaf, svc("front", vec![Step::call(ep(0), 64.0)])],
        };
        // 40 qps x 10 ms = 0.4 erlangs over 1 worker.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 40.0)
            .run();
        assert_eq!(codes(&d), vec![Code::TierOverload]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("M/M/1"), "{}", d[0].message);

        // 25 qps -> rho = 0.25, wait = 1/3 of a service time: clean.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 25.0)
            .run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn large_pool_absorbs_the_same_utilization() {
        // 70% utilization is a problem for one worker but fine across
        // 64: the pool absorbs arrival bursts (economy of scale).
        let mut leaf = svc(
            "db",
            vec![Step::Io {
                ns: Dist::constant(10_000_000.0),
            }],
        );
        leaf.workers = WorkerPolicy::Fixed(64);
        let spec = AppSpec {
            name: "mmk".into(),
            services: vec![leaf, svc("front", vec![Step::call(ep(0), 64.0)])],
        };
        // 4480 qps x 10 ms = 44.8 erlangs over 64 workers.
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 4480.0)
            .run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_deduped() {
        // Two defects on different services: order must be by service id.
        let mut callee = svc("z-callee", vec![Step::work_us(1.0)]);
        callee.protocol = Protocol::Http1;
        callee.conn_limit = 1;
        callee.lb = LbPolicy::Partition;
        let mut caller = svc("a-caller", vec![Step::call(ep(0), 64.0)]);
        caller.workers = WorkerPolicy::Fixed(16);
        let spec = AppSpec {
            name: "multi".into(),
            services: vec![callee, caller],
        };
        let d = analyze(&spec);
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].service, Some(ServiceId(0)));
        assert_eq!(d[0].code, Code::PartitionDegenerate);
        assert_eq!(d[1].service, Some(ServiceId(1)));
        assert_eq!(d[1].code, Code::BlockingBackpressure);
    }

    /// Two tiers, each ~0.6 erlangs of compute at 100 qps — comfortably
    /// inside its own worker pool — sharing a single-core machine.
    fn colocated_hot_tiers() -> AppSpec {
        let leaf = svc("leaf", vec![Step::work_us(6_000.0)]);
        let mut front = svc(
            "front",
            vec![Step::work_us(6_000.0), Step::call(ep(0), 64.0)],
        );
        front.workers = WorkerPolicy::Fixed(64);
        AppSpec {
            name: "hot".into(),
            services: vec![leaf, front],
        }
    }

    #[test]
    fn machine_budget_flags_colocation_that_dsb009_misses() {
        let mut cluster = ClusterSpec::xeon_cluster(1, 1);
        cluster.machines[0].cores = 1;
        let spec = colocated_hot_tiers();
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 100.0)
            .cluster(&cluster)
            .run();
        // Each pool passes DSB009 on its own; together they demand
        // ~1.2 cores of a 1-core machine.
        assert_eq!(codes(&d), vec![Code::MachineOvercommit]);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].service, None, "machine findings are app-wide");
        assert!(d[0].message.contains("machine 0"), "{}", d[0].message);
        assert!(d[0].message.contains("`front`"), "{}", d[0].message);

        // Enough cores: clean again.
        let roomy = ClusterSpec::xeon_cluster(1, 1);
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 100.0)
            .cluster(&roomy)
            .run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn machine_budget_needs_a_cluster_and_a_feasible_placement() {
        let mut cluster = ClusterSpec::xeon_cluster(1, 1);
        cluster.machines[0].cores = 1;
        // No cluster given: the pass cannot run.
        let mut spec = colocated_hot_tiers();
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 100.0)
            .run();
        assert!(d.is_empty(), "{d:?}");
        // A zone preference no machine satisfies: placement-dependent
        // passes are skipped rather than guessing (or panicking).
        spec.services[0].zone_pref = Some(Zone::Edge);
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .offered(ep(1), 100.0)
            .cluster(&cluster)
            .run();
        assert!(d.is_empty(), "{d:?}");
    }

    /// One Xeon plus `edge` edge devices, for lookahead tests.
    fn edge_cluster(edge: usize) -> ClusterSpec {
        let mut cluster = ClusterSpec::xeon_cluster(1, 1);
        for _ in 0..edge {
            cluster.machines.push(dsb_core::MachineSpec::edge_device());
        }
        cluster
    }

    #[test]
    fn edge_to_edge_gossip_certifies_sub_loopback_lookahead() {
        // Two edge-zone services, two instances each, spread over edge
        // devices: the Edge<->Edge link floor (0.2 x 2 us = 400 ns) is
        // below the 2 us loopback epoch floor.
        let mut b = svc("gossip-peer", vec![Step::work_us(5.0)]);
        let mut a = svc("gossip", vec![Step::call(ep(0), 64.0)]);
        for s in [&mut a, &mut b] {
            s.zone_pref = Some(Zone::Edge);
            s.workers = WorkerPolicy::Fixed(1);
            s.initial_instances = 2;
        }
        let spec = AppSpec {
            name: "gossip".into(),
            services: vec![b, a],
        };
        // Without cluster context the pass cannot run.
        assert!(analyze(&spec).is_empty(), "{:?}", analyze(&spec));
        let cluster = edge_cluster(4);
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .cluster(&cluster)
            .run();
        assert_eq!(codes(&d), vec![Code::ZeroLookahead]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].service_name, "gossip");
        assert!(d[0].message.contains("400 ns"), "{}", d[0].message);

        // The same app on datacenter machines clears the floor: the
        // intra-rack minimum (5 us) exceeds loopback (2 us).
        let mut dc = spec.clone();
        for s in &mut dc.services {
            s.zone_pref = None;
        }
        let racks = ClusterSpec::xeon_cluster(2, 1);
        let d = Analyzer::new(&dc).entry(ServiceId(1)).cluster(&racks).run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn ipc_spanning_machines_has_zero_lookahead() {
        // An IPC callee the round-robin balancer spreads over two
        // machines: no zone preference conflict (so no DSB007), but the
        // delay bound a parallel engine could certify is zero.
        let mut callee = svc("sidecar", vec![Step::work_us(1.0)]);
        callee.protocol = Protocol::Ipc;
        callee.initial_instances = 2;
        callee.workers = WorkerPolicy::Fixed(1);
        let mut caller = svc("app", vec![Step::call(ep(0), 64.0)]);
        caller.initial_instances = 2;
        caller.workers = WorkerPolicy::Fixed(1);
        let spec = AppSpec {
            name: "ipc".into(),
            services: vec![callee, caller],
        };
        let cluster = ClusterSpec::xeon_cluster(2, 1);
        let d = Analyzer::new(&spec)
            .entry(ServiceId(1))
            .cluster(&cluster)
            .run();
        assert_eq!(codes(&d), vec![Code::ZeroLookahead]);
        let zl = &d[0];
        assert!(zl.message.contains("zero-lookahead"), "{}", zl.message);
        assert!(zl.message.contains("round-robin"), "{}", zl.message);
    }

    /// A cache-aside pair: partition-routed `cache` (get/set) over
    /// partition-routed `db` (find/insert), with a read endpoint that
    /// consults the cache first and a write endpoint whose store order
    /// is given by `write_script`.
    fn cache_aside(write_first_cache: bool) -> AppSpec {
        let mk_store = |name: &str, eps: [&str; 2]| {
            let mut s = svc(name, vec![Step::work_us(2.0)]);
            s.lb = LbPolicy::Partition;
            s.initial_instances = 2;
            s.concurrency = Concurrency::Async;
            s.endpoints[0].name = eps[0].to_string();
            s.endpoints.push(dsb_core::EndpointSpec {
                name: eps[1].to_string(),
                resp_bytes: Dist::constant(16.0),
                script: Arc::new(vec![Step::work_us(2.0)]),
            });
            s
        };
        let cache = mk_store("cache", ["get", "set"]);
        let db = mk_store("db", ["find", "insert"]);
        let cache_get = ep(0);
        let cache_set = EndpointRef {
            service: ServiceId(0),
            endpoint: 1,
        };
        let db_find = ep(1);
        let db_insert = EndpointRef {
            service: ServiceId(1),
            endpoint: 1,
        };
        let read = Step::Branch {
            p: 0.9,
            then: Arc::new(vec![Step::call(cache_get, 16.0)]),
            els: Arc::new(vec![
                Step::call(cache_get, 16.0),
                Step::call(db_find, 16.0),
                Step::call(cache_set, 64.0),
            ]),
        };
        let write = if write_first_cache {
            vec![Step::call(cache_set, 64.0), Step::call(db_insert, 64.0)]
        } else {
            vec![Step::call(db_insert, 64.0), Step::call(cache_set, 64.0)]
        };
        let mut front = svc("front", vec![read]);
        front.concurrency = Concurrency::Async;
        front.endpoints.push(dsb_core::EndpointSpec {
            name: "write".to_string(),
            resp_bytes: Dist::constant(16.0),
            script: Arc::new(write),
        });
        AppSpec {
            name: "aside".into(),
            services: vec![cache, db, front],
        }
    }

    #[test]
    fn write_visibility_race_fires_only_on_certain_inversion() {
        // Durable-store-first ordering: clean.
        let good = cache_aside(false);
        let d = Analyzer::new(&good).entry(ServiceId(2)).run();
        assert!(d.is_empty(), "{d:?}");

        // Cache-first ordering inverts the cache-aside protocol.
        let bad = cache_aside(true);
        let d = Analyzer::new(&bad).entry(ServiceId(2)).run();
        assert_eq!(codes(&d), vec![Code::WriteVisibilityRace]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].service_name, "front");
        assert_eq!(d[0].endpoint.as_deref(), Some("write"));
        assert!(d[0].message.contains("`cache`"), "{}", d[0].message);

        // A probabilistic flush (write-behind) is exempt: the durable
        // write is not *certain*, so the order proves nothing.
        let mut behind = cache_aside(true);
        let write = vec![
            Step::call(
                EndpointRef {
                    service: ServiceId(0),
                    endpoint: 1,
                },
                64.0,
            ),
            Step::Branch {
                p: 0.1,
                then: Arc::new(vec![Step::call(
                    EndpointRef {
                        service: ServiceId(1),
                        endpoint: 1,
                    },
                    64.0,
                )]),
                els: Arc::new(vec![]),
            },
        ];
        behind.services[2].endpoints[1].script = Arc::new(write);
        let d = Analyzer::new(&behind).entry(ServiceId(2)).run();
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn critical_path_queueing_needs_the_calibration_window() {
        // front --FanCall 16--> mid (16 workers) --> leaf (4 workers,
        // 2 ms I/O). The fan-out synchronizes 16 arrivals over 4 leaf
        // workers; at 5 qps every static check is comfortable.
        let mut leaf = svc(
            "leaf",
            vec![Step::Io {
                ns: Dist::constant(2_000_000.0),
            }],
        );
        leaf.workers = WorkerPolicy::Fixed(4);
        let mut mid = svc("mid", vec![Step::call(ep(0), 64.0)]);
        mid.workers = WorkerPolicy::Fixed(16);
        let front = svc(
            "front",
            vec![Step::FanCall {
                target: ep(1),
                req_bytes: Dist::constant(64.0),
                n: Dist::constant(16.0),
            }],
        );
        let spec = AppSpec {
            name: "burst".into(),
            services: vec![leaf, mid, front],
        };
        let cluster = ClusterSpec::xeon_cluster(2, 1);
        let run = |calibration: f64| {
            Analyzer::new(&spec)
                .entry(ServiceId(2))
                .offered(ep(2), 5.0)
                .cluster(&cluster)
                .calibration(calibration)
                .run()
        };
        // Without a calibration window the queueing is invisible.
        assert!(run(0.0).is_empty(), "{:?}", run(0.0));
        let d = run(2.0);
        assert_eq!(codes(&d), vec![Code::CriticalPathQueueing]);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].service_name, "leaf");
        assert!(
            d[0].message.contains("`front` -> `mid`"),
            "{}",
            d[0].message
        );
        // Byte-identical on a re-run: the calibration seed is fixed.
        assert_eq!(d, run(2.0));
    }
}
