//! Determinism source lint.
//!
//! The golden traces from PR 1 are only meaningful if a simulation is a
//! pure function of `(spec, seed)`. Three things quietly break that
//! contract: iterating hash containers (order depends on hasher state),
//! reading wall clocks, and drawing unseeded randomness. This pass scans
//! `crates/*/src` for those tokens and reports each occurrence unless an
//! allowlist entry vouches for it.
//!
//! The scan is deliberately lexical — no parsing, no type resolution —
//! so it over-approximates: *mentioning* `HashMap` is flagged even where
//! only keyed access happens. That is intentional; the fix (`BTreeMap`)
//! is cheap, and the allowlist documents the few legitimate uses (e.g.
//! wall-clock progress reporting in a CLI) right next to the reason.
//!
//! Allowlist format, one entry per line:
//!
//! ```text
//! # comment
//! crates/testkit/src/bench.rs Instant   # benchmarking needs a wall clock
//! crates/analyzer/src/srclint.rs *      # the lint's own token table
//! ```
//!
//! An entry is `path-suffix token` where `token` is one of the hazard
//! tokens or `*` for all; entries that match nothing are themselves
//! reported so the allowlist cannot rot.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Tokens whose presence in sim-visible source indicates a determinism
/// hazard. Matched on identifier boundaries.
const HAZARD_TOKENS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order depends on hasher state; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order depends on hasher state; use BTreeSet",
    ),
    (
        "SystemTime",
        "wall clock; derive time from the simulator clock",
    ),
    (
        "Instant",
        "wall clock; derive time from the simulator clock",
    ),
    ("thread_rng", "unseeded randomness; use the seeded sim RNG"),
    ("RandomState", "randomized hasher state"),
    ("DefaultHasher", "randomized hasher state"),
];

/// One hazard occurrence the lint could not excuse.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFinding {
    /// Path of the file, relative to the scan root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The hazard token found.
    pub token: String,
    /// Why the token is a hazard.
    pub why: String,
}

impl fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: determinism hazard `{}` ({})",
            self.path, self.line, self.token, self.why
        )
    }
}

/// Parsed allowlist; tracks which entries actually matched so stale
/// entries can be reported.
#[derive(Debug, Clone)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug, Clone)]
struct AllowEntry {
    path_suffix: String,
    token: String, // "*" allows every token
    used: bool,
}

impl Allowlist {
    /// An allowlist that excuses nothing.
    pub fn empty() -> Self {
        Allowlist {
            entries: Vec::new(),
        }
    }

    /// Parses the `path-suffix token # comment` format. Unknown tokens
    /// are accepted (they simply never match and surface as unused).
    pub fn parse(text: &str) -> Self {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(path_suffix), Some(token)) = (parts.next(), parts.next()) else {
                continue;
            };
            entries.push(AllowEntry {
                path_suffix: path_suffix.to_string(),
                token: token.to_string(),
                used: false,
            });
        }
        Allowlist { entries }
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> io::Result<Self> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(e),
        }
    }

    fn allows(&mut self, path: &str, token: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if path.ends_with(&e.path_suffix) && (e.token == "*" || e.token == token) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding — stale excuses to delete.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| format!("{} {}", e.path_suffix, e.token))
            .collect()
    }
}

/// Lints every `.rs` file under `root` (recursively), excusing findings
/// via `allow`. Paths in findings are relative to `root`. Directories
/// named `tests`, `benches`, or `examples` are skipped, as is everything
/// in a file after a `#[cfg(test)]` marker — test code may use wall
/// clocks and hash containers freely.
pub fn lint_sources(root: &Path, allow: &mut Allowlist) -> io::Result<Vec<SourceFinding>> {
    let mut findings = Vec::new();
    walk(root, root, allow, &mut findings)?;
    findings.sort();
    Ok(findings)
}

fn walk(
    root: &Path,
    dir: &Path,
    allow: &mut Allowlist,
    out: &mut Vec<SourceFinding>,
) -> io::Result<()> {
    let mut names: Vec<_> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.file_name()))
        .collect::<io::Result<_>>()?;
    names.sort(); // deterministic scan order regardless of readdir order
    for name in names {
        let path = dir.join(&name);
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.')
                || matches!(name.as_ref(), "tests" | "benches" | "examples" | "target")
            {
                continue;
            }
            walk(root, &path, allow, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            scan_text(&rel, &text, allow, out);
        }
    }
    Ok(())
}

/// Scans one file's text. Public within the crate so unit tests can lint
/// synthetic sources without touching the filesystem.
fn scan_text(rel_path: &str, text: &str, allow: &mut Allowlist, out: &mut Vec<SourceFinding>) {
    for (idx, line) in text.lines().enumerate() {
        // Everything after the test-module marker is test code; the
        // repo convention keeps `#[cfg(test)]` modules at end of file.
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue; // comments (incl. doc comments) may name hazards
        }
        for &(token, why) in HAZARD_TOKENS {
            if contains_ident(line, token) && !allow.allows(rel_path, token) {
                out.push(SourceFinding {
                    path: rel_path.to_string(),
                    line: idx + 1,
                    token: token.to_string(),
                    why: why.to_string(),
                });
            }
        }
    }
}

/// Whether `line` contains `token` as a standalone identifier (not as a
/// substring of a longer identifier).
fn contains_ident(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(token) {
        let start = from + pos;
        let end = start + token.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, text: &str, allow: &mut Allowlist) -> Vec<SourceFinding> {
        let mut out = Vec::new();
        scan_text(path, text, allow, &mut out);
        out
    }

    #[test]
    fn flags_hazards_with_line_numbers() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let f = scan("crates/x/src/lib.rs", src, &mut Allowlist::empty());
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[0].token.as_str()), (1, "HashMap"));
        assert_eq!((f[1].line, f[1].token.as_str()), (2, "Instant"));
        assert!(f[0].to_string().contains("crates/x/src/lib.rs:1"));
    }

    #[test]
    fn matches_identifier_boundaries_only() {
        assert!(contains_ident("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!contains_ident("let m = MyHashMapLike::new();", "HashMap"));
        assert!(!contains_ident("let instant_rate = 3;", "Instant"));
        assert!(contains_ident("foo(Instant::now())", "Instant"));
    }

    #[test]
    fn skips_comments_and_test_modules() {
        let src = "\
// HashMap in a comment is fine\n\
/// Doc: uses SystemTime conceptually\n\
fn ok() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashSet;\n\
}\n";
        let f = scan("crates/x/src/lib.rs", src, &mut Allowlist::empty());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allowlist_excuses_and_tracks_usage() {
        let mut allow = Allowlist::parse(
            "# reasons inline\n\
             crates/x/src/lib.rs Instant  # wall-clock progress\n\
             crates/y/src/lib.rs *\n\
             crates/z/src/lib.rs HashMap\n",
        );
        let f = scan(
            "crates/x/src/lib.rs",
            "let t = Instant::now();\nuse std::collections::HashMap;\n",
            &mut allow,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "HashMap");
        let f = scan("crates/y/src/lib.rs", "let s: HashSet<u8>;", &mut allow);
        assert!(f.is_empty());
        assert_eq!(allow.unused(), vec!["crates/z/src/lib.rs HashMap"]);
    }

    #[test]
    fn findings_sort_stably() {
        let mut v = vec![
            SourceFinding {
                path: "b.rs".into(),
                line: 3,
                token: "Instant".into(),
                why: String::new(),
            },
            SourceFinding {
                path: "a.rs".into(),
                line: 9,
                token: "HashMap".into(),
                why: String::new(),
            },
        ];
        v.sort();
        assert_eq!(v[0].path, "a.rs");
    }
}
