//! Determinism + parallel-safety source lint (v2, lexer-based).
//!
//! The golden traces from PR 1 are only meaningful if a simulation is a
//! pure function of `(spec, seed)`, and the planned parallel engine
//! (ROADMAP) additionally requires that no source construct smuggles
//! scheduler- or thread-order dependence into sim state. This pass scans
//! `crates/*/src` for such constructs and reports each occurrence unless
//! an allowlist entry vouches for it.
//!
//! Unlike the v1 token-grep, the scan runs a real (lightweight) Rust
//! lexer: line comments, nested block comments, string literals, raw and
//! byte strings, and char literals are tokenized and *skipped*, so a
//! `HashMap` mentioned in a doc comment or error message is never a
//! finding. `#[cfg(test)]` items are skipped with balanced-brace
//! tracking (only the annotated item, not the rest of the file) — test
//! code may use wall clocks, hash containers, and threads freely.
//!
//! Hazard classes:
//!
//! - **hash-order**: `HashMap`/`HashSet`/`RandomState`/`DefaultHasher` —
//!   iteration order depends on hasher state.
//! - **wall-clock**: `SystemTime`/`Instant` — real time leaking into
//!   simulated state.
//! - **unseeded-rng**: `thread_rng`.
//! - **interior-mutability**: `RefCell`/`Cell`/`UnsafeCell`/`static mut`
//!   — writes the borrow checker cannot see; sim state must be
//!   single-owner so shard hand-off is explicit.
//! - **threading**: `thread::spawn` / `thread::scope` / `mpsc` —
//!   threads and channels have scheduler-dependent orderings; only the
//!   certified epoch driver may own thread spawn/join order, and it must
//!   say so in the allowlist.
//! - **float-accum**: `+=` of a float quantity inside a `for` loop over
//!   `.keys()`/`.values()` — rounding accumulates in iteration order,
//!   and a sharded engine merges partial sums in a different order.
//!
//! Allowlist format, one entry per line:
//!
//! ```text
//! # comment
//! crates/testkit/src/bench.rs Instant   # benchmarking needs a wall clock
//! ```
//!
//! An entry is `path-suffix token` where `token` is one of the hazard
//! tokens or `*` for all. The path may be *module-granular*: a suffix of
//! the form `file.rs::mod::path` excuses the token only inside that
//! `mod` (and its nested modules) of that file —
//!
//! ```text
//! crates/simcore/src/epoch.rs::pool thread::scope  # the certified epoch driver
//! ```
//!
//! so an exemption granted to one certified module cannot silently leak
//! to the rest of the file. Entries that match nothing are reported so
//! the allowlist cannot rot; duplicate entries and entries shadowed by a
//! same-path `*` wildcard are hard parse errors.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Identifier tokens whose presence in sim-visible source indicates a
/// hazard. Matched on lexed identifiers, never inside comments/strings.
const HAZARD_IDENTS: &[(&str, &str)] = &[
    (
        "HashMap",
        "iteration order depends on hasher state; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order depends on hasher state; use BTreeSet",
    ),
    (
        "SystemTime",
        "wall clock; derive time from the simulator clock",
    ),
    (
        "Instant",
        "wall clock; derive time from the simulator clock",
    ),
    ("thread_rng", "unseeded randomness; use the seeded sim RNG"),
    ("RandomState", "randomized hasher state"),
    ("DefaultHasher", "randomized hasher state"),
    (
        "RefCell",
        "interior mutability; sim state must be single-owner for shard hand-off",
    ),
    (
        "Cell",
        "interior mutability; sim state must be single-owner for shard hand-off",
    ),
    (
        "UnsafeCell",
        "interior mutability; sim state must be single-owner for shard hand-off",
    ),
    (
        "mpsc",
        "channel recv order across threads is scheduler-dependent",
    ),
];

/// Why for the `static mut` two-token hazard.
const WHY_STATIC_MUT: &str = "mutable global state; racy and replay-hostile";
/// Why for the `thread::spawn` sequence hazard.
const WHY_THREAD_SPAWN: &str =
    "unmanaged thread; the parallel engine must own all spawn/join order";
/// Why for the `thread::scope` sequence hazard.
const WHY_THREAD_SCOPE: &str = "scoped threads interleave nondeterministically; only the \
     certified epoch driver may use them (allowlist its module)";
/// Why for float accumulation in keyed-iteration loops.
const WHY_FLOAT_ACCUM: &str = "float `+=` over keyed iteration accumulates rounding in \
     iteration order; a sharded engine merges in a different order";

/// One hazard occurrence the lint could not excuse.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFinding {
    /// Path of the file, relative to the scan root, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The hazard token found (e.g. `HashMap`, `static mut`, `float-accum`).
    pub token: String,
    /// Why the token is a hazard.
    pub why: String,
}

impl fmt::Display for SourceFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: determinism hazard `{}` ({})",
            self.path, self.line, self.token, self.why
        )
    }
}

/// Error from [`Allowlist::parse`] / [`Allowlist::load`]. The allowlist
/// is itself policed: duplicate entries and entries made dead by a
/// same-path `*` wildcard are configuration rot and fail hard.
#[derive(Debug)]
pub enum AllowlistError {
    /// Underlying file read failed.
    Io(io::Error),
    /// The same `path token` pair appears twice (lines are 1-based).
    Duplicate {
        /// 1-based line of the second occurrence.
        line: usize,
        /// The repeated `path token` entry.
        entry: String,
    },
    /// A specific-token entry is shadowed by a `*` wildcard on the same
    /// path suffix, so it can never be the excusing entry.
    Shadowed {
        /// 1-based line of the shadowed (specific) entry.
        line: usize,
        /// The specific `path token` entry that can never match first.
        entry: String,
        /// The `path *` wildcard that swallows it.
        wildcard: String,
    },
}

impl fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllowlistError::Io(e) => write!(f, "allowlist read failed: {e}"),
            AllowlistError::Duplicate { line, entry } => {
                write!(f, "allowlist line {line}: duplicate entry `{entry}`")
            }
            AllowlistError::Shadowed {
                line,
                entry,
                wildcard,
            } => write!(
                f,
                "allowlist line {line}: entry `{entry}` is shadowed by wildcard `{wildcard}`"
            ),
        }
    }
}

impl std::error::Error for AllowlistError {}

/// Parsed allowlist; tracks which entries actually matched so stale
/// entries can be reported.
#[derive(Debug, Clone)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

#[derive(Debug, Clone)]
struct AllowEntry {
    /// File-path suffix (the part before any `::`-module qualifier).
    path_suffix: String,
    /// `Some("a::b")` restricts the entry to module `a::b` (and its
    /// nested modules) of the file; `None` covers the whole file.
    mod_path: Option<String>,
    token: String, // "*" allows every token
    used: bool,
}

impl AllowEntry {
    /// The entry as written: `file.rs[::mod::path]`.
    fn display_path(&self) -> String {
        match &self.mod_path {
            Some(m) => format!("{}::{m}", self.path_suffix),
            None => self.path_suffix.clone(),
        }
    }

    /// Whether this entry covers a finding of `token` in module
    /// `mod_path` of file `path`. Module entries match the named module
    /// and everything nested inside it.
    fn covers(&self, path: &str, mod_path: &str, token: &str) -> bool {
        if !path.ends_with(&self.path_suffix) || (self.token != "*" && self.token != token) {
            return false;
        }
        match &self.mod_path {
            None => true,
            Some(m) => {
                mod_path == m
                    || mod_path
                        .strip_prefix(m.as_str())
                        .is_some_and(|r| r.starts_with("::"))
            }
        }
    }
}

impl Allowlist {
    /// An allowlist that excuses nothing.
    pub fn empty() -> Self {
        Allowlist {
            entries: Vec::new(),
        }
    }

    /// Parses the `path-suffix token # comment` format. Unknown tokens
    /// are accepted (they simply never match and surface as unused), but
    /// duplicate entries and specific entries shadowed by a same-path
    /// `*` wildcard are hard errors.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries: Vec<(usize, AllowEntry)> = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(path_field), Some(token)) = (parts.next(), parts.next()) else {
                continue;
            };
            // `file.rs::mod::path` → module-granular entry. Split on the
            // first `.rs::` so module names containing `.rs` cannot
            // confuse the parse.
            let (path_suffix, mod_path) = match path_field.split_once(".rs::") {
                Some((file, m)) if !m.is_empty() => (format!("{file}.rs"), Some(m.to_string())),
                _ => (path_field.to_string(), None),
            };
            if entries.iter().any(|(_, e)| {
                e.path_suffix == path_suffix && e.mod_path == mod_path && e.token == token
            }) {
                return Err(AllowlistError::Duplicate {
                    line: idx + 1,
                    entry: format!("{path_field} {token}"),
                });
            }
            entries.push((
                idx + 1,
                AllowEntry {
                    path_suffix,
                    mod_path,
                    token: token.to_string(),
                    used: false,
                },
            ));
        }
        // A `path *` wildcard makes every specific entry it covers dead
        // weight, regardless of which line came first: a whole-file
        // wildcard swallows that file's module-granular entries too.
        for (line, e) in &entries {
            if e.token == "*" {
                continue;
            }
            let covered_mod = |w: &AllowEntry| match (&w.mod_path, &e.mod_path) {
                (None, _) => true,
                (Some(wm), Some(em)) => {
                    em == wm
                        || em
                            .strip_prefix(wm.as_str())
                            .is_some_and(|r| r.starts_with("::"))
                }
                (Some(_), None) => false,
            };
            if let Some((_, w)) = entries
                .iter()
                .find(|(_, w)| w.token == "*" && w.path_suffix == e.path_suffix && covered_mod(w))
            {
                return Err(AllowlistError::Shadowed {
                    line: *line,
                    entry: format!("{} {}", e.display_path(), e.token),
                    wildcard: format!("{} *", w.display_path()),
                });
            }
        }
        Ok(Allowlist {
            entries: entries.into_iter().map(|(_, e)| e).collect(),
        })
    }

    /// Loads an allowlist file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Self, AllowlistError> {
        match fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Self::empty()),
            Err(e) => Err(AllowlistError::Io(e)),
        }
    }

    fn allows(&mut self, path: &str, mod_path: &str, token: &str) -> bool {
        let mut hit = false;
        for e in &mut self.entries {
            if e.covers(path, mod_path, token) {
                e.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Entries that never matched a finding — stale excuses to delete.
    /// A module-granular entry goes stale both when the hazard
    /// disappears and when the code moves to a different module, so
    /// exemptions track the code they were granted for.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !e.used)
            .map(|e| format!("{} {}", e.display_path(), e.token))
            .collect()
    }
}

/// Lints every `.rs` file under `root` (recursively), excusing findings
/// via `allow`. Paths in findings are relative to `root`. Directories
/// named `tests`, `benches`, or `examples` are skipped, as is every
/// `#[cfg(test)]`-annotated item.
pub fn lint_sources(root: &Path, allow: &mut Allowlist) -> io::Result<Vec<SourceFinding>> {
    let mut findings = Vec::new();
    walk(root, root, allow, &mut findings)?;
    findings.sort();
    Ok(findings)
}

fn walk(
    root: &Path,
    dir: &Path,
    allow: &mut Allowlist,
    out: &mut Vec<SourceFinding>,
) -> io::Result<()> {
    let mut names: Vec<_> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.file_name()))
        .collect::<io::Result<_>>()?;
    names.sort(); // deterministic scan order regardless of readdir order
    for name in names {
        let path = dir.join(&name);
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.')
                || matches!(name.as_ref(), "tests" | "benches" | "examples" | "target")
            {
                continue;
            }
            walk(root, &path, allow, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            scan_text(&rel, &text, allow, out);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// One lexed token. Comments, whitespace, string/char literal *contents*
/// and lifetimes produce no tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok<'a> {
    /// Identifier or keyword.
    Ident(&'a str, usize),
    /// Single punctuation character.
    Punct(char, usize),
    /// Compound `+=` operator.
    PlusEq(usize),
    /// Numeric literal; `float` when it lexes as f32/f64.
    Num { float: bool, line: usize },
    /// A string/char/byte literal (contents dropped).
    Lit(usize),
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `text` into a token stream, skipping everything that cannot
/// carry a hazard: whitespace, comments (line + nested block), string
/// and char literal contents (plain, raw, byte), and lifetimes.
fn lex(text: &str) -> Vec<Tok<'_>> {
    let b = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                toks.push(Tok::Lit(start_line));
            }
            b'\'' => {
                let start_line = line;
                i += 1;
                if i < b.len() && b[i] == b'\\' {
                    // Escaped char literal: skip escape + closing quote.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    toks.push(Tok::Lit(start_line));
                } else if i < b.len() && is_ident_start(b[i]) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&b'\'') {
                        i = j + 1; // char literal like 'a'
                        toks.push(Tok::Lit(start_line));
                    } else {
                        i = j; // lifetime like 'a — no token
                    }
                } else {
                    // Non-ident char literal like '%' or '\n' raw byte.
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    toks.push(Tok::Lit(start_line));
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut float = false;
                if c == b'0' && matches!(b.get(i + 1), Some(b'x' | b'o' | b'b')) {
                    i += 2;
                    while i < b.len() && (is_ident_continue(b[i])) {
                        i += 1;
                    }
                } else {
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                    if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                        float = true;
                        i += 1;
                        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                            i += 1;
                        }
                    }
                    if matches!(b.get(i), Some(b'e' | b'E'))
                        && b.get(i + 1)
                            .is_some_and(|d| d.is_ascii_digit() || *d == b'+' || *d == b'-')
                    {
                        float = true;
                        i += 2;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                    // Type suffix (1f64, 3u32, …).
                    let sfx = i;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    if text[sfx..i].starts_with('f') {
                        float = true;
                    }
                }
                let _ = start;
                toks.push(Tok::Num { float, line });
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident = &text[start..i];
                // Raw strings / byte strings / raw identifiers.
                match ident {
                    "r" | "br" | "b" if matches!(b.get(i), Some(b'"' | b'#')) => {
                        if ident == "b" && b.get(i) == Some(&b'"') {
                            let start_line = line;
                            i = skip_string(b, i + 1, &mut line);
                            toks.push(Tok::Lit(start_line));
                        } else {
                            // Count hashes, then a quote starts a raw string.
                            let mut hashes = 0;
                            let mut j = i;
                            while b.get(j) == Some(&b'#') {
                                hashes += 1;
                                j += 1;
                            }
                            if b.get(j) == Some(&b'"') {
                                let start_line = line;
                                i = skip_raw_string(b, j + 1, hashes, &mut line);
                                toks.push(Tok::Lit(start_line));
                            } else if ident == "r"
                                && hashes == 1
                                && b.get(j).is_some_and(|d| is_ident_start(*d))
                            {
                                // Raw identifier r#foo.
                                let rs = j;
                                let mut k = j + 1;
                                while k < b.len() && is_ident_continue(b[k]) {
                                    k += 1;
                                }
                                toks.push(Tok::Ident(&text[rs..k], line));
                                i = k;
                            } else {
                                toks.push(Tok::Ident(ident, line));
                            }
                        }
                    }
                    _ => toks.push(Tok::Ident(ident, line)),
                }
            }
            b'+' if b.get(i + 1) == Some(&b'=') => {
                toks.push(Tok::PlusEq(line));
                i += 2;
            }
            _ => {
                if c.is_ascii() {
                    toks.push(Tok::Punct(c as char, line));
                }
                i += 1;
            }
        }
    }
    toks
}

/// Skips a plain (escape-aware) string body starting just after the
/// opening quote; returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body (`hashes` trailing `#`s close it); returns
/// the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, hashes: usize, line: &mut usize) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if b.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Removes every `#[cfg(test)]`-annotated item from the token stream:
/// the attribute, any further attributes, and the item through its
/// balanced `{…}` body (or trailing `;`, whichever comes first).
fn strip_cfg_test<'a>(toks: &[Tok<'a>]) -> Vec<Tok<'a>> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_at(toks, i) {
            i += 7; // consume `# [ cfg ( test ) ]`
                    // Skip any further attributes on the same item.
            while matches!(toks.get(i), Some(Tok::Punct('#', _)))
                && matches!(toks.get(i + 1), Some(Tok::Punct('[', _)))
            {
                let mut depth = 0;
                i += 1;
                loop {
                    match toks.get(i) {
                        Some(Tok::Punct('[', _)) => depth += 1,
                        Some(Tok::Punct(']', _)) => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        None => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Skip the item: to a `;` before any brace, or through the
            // balanced `{…}` body.
            let mut depth = 0usize;
            while i < toks.len() {
                match toks[i] {
                    Tok::Punct(';', _) if depth == 0 => {
                        i += 1;
                        break;
                    }
                    Tok::Punct('{', _) => depth += 1,
                    Tok::Punct('}', _) => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

fn is_cfg_test_at(toks: &[Tok<'_>], i: usize) -> bool {
    matches!(toks.get(i), Some(Tok::Punct('#', _)))
        && matches!(toks.get(i + 1), Some(Tok::Punct('[', _)))
        && matches!(toks.get(i + 2), Some(Tok::Ident("cfg", _)))
        && matches!(toks.get(i + 3), Some(Tok::Punct('(', _)))
        && matches!(toks.get(i + 4), Some(Tok::Ident("test", _)))
        && matches!(toks.get(i + 5), Some(Tok::Punct(')', _)))
        && matches!(toks.get(i + 6), Some(Tok::Punct(']', _)))
}

/// For each token, the `::`-joined path of inline `mod` items enclosing
/// it (`""` at file root). Tracks `mod name { … }` via balanced braces;
/// `mod name;` declarations contribute nothing. Returns the interned
/// path table plus a per-token index into it.
fn module_paths(toks: &[Tok<'_>]) -> (Vec<String>, Vec<usize>) {
    let mut paths: Vec<String> = vec![String::new()];
    let mut per_tok = Vec::with_capacity(toks.len());
    // (index into `paths`, brace depth the module body opened at).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut cur = 0usize;
    let mut depth = 0usize;
    let mut pending_mod: Option<&str> = None;
    for (i, t) in toks.iter().enumerate() {
        per_tok.push(cur);
        match t {
            Tok::Ident("mod", _) => {
                if let Some(Tok::Ident(name, _)) = toks.get(i + 1) {
                    pending_mod = Some(name);
                }
            }
            Tok::Punct('{', _) => {
                depth += 1;
                if let Some(name) = pending_mod.take() {
                    let p = if paths[cur].is_empty() {
                        name.to_string()
                    } else {
                        format!("{}::{name}", paths[cur])
                    };
                    cur = match paths.iter().position(|x| *x == p) {
                        Some(i) => i,
                        None => {
                            paths.push(p);
                            paths.len() - 1
                        }
                    };
                    stack.push((cur, depth));
                }
            }
            Tok::Punct(';', _) => pending_mod = None,
            Tok::Punct('}', _) => {
                if stack.last().is_some_and(|&(_, d)| d == depth) {
                    stack.pop();
                    cur = stack.last().map_or(0, |&(p, _)| p);
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
    }
    (paths, per_tok)
}

/// Scans one file's text. Crate-visible so unit tests can lint synthetic
/// sources without touching the filesystem.
fn scan_text(rel_path: &str, text: &str, allow: &mut Allowlist, out: &mut Vec<SourceFinding>) {
    let toks = lex(text);
    let toks = strip_cfg_test(&toks);
    let (mod_paths, mods) = module_paths(&toks);
    let mut push = |i: usize, line: usize, token: &str, why: &str, allow: &mut Allowlist| {
        if !allow.allows(rel_path, &mod_paths[mods[i]], token) {
            out.push(SourceFinding {
                path: rel_path.to_string(),
                line,
                token: token.to_string(),
                why: why.to_string(),
            });
        }
    };
    for (i, t) in toks.iter().enumerate() {
        if let Tok::Ident(name, line) = *t {
            // `static mut` two-token hazard.
            if name == "static" && matches!(toks.get(i + 1), Some(Tok::Ident("mut", _))) {
                push(i, line, "static mut", WHY_STATIC_MUT, allow);
                continue;
            }
            // `thread::spawn` / `thread::scope` call paths.
            if name == "thread"
                && matches!(toks.get(i + 1), Some(Tok::Punct(':', _)))
                && matches!(toks.get(i + 2), Some(Tok::Punct(':', _)))
            {
                match toks.get(i + 3) {
                    Some(Tok::Ident("spawn", _)) => {
                        push(i, line, "thread::spawn", WHY_THREAD_SPAWN, allow);
                        continue;
                    }
                    Some(Tok::Ident("scope", _)) => {
                        push(i, line, "thread::scope", WHY_THREAD_SCOPE, allow);
                        continue;
                    }
                    _ => {}
                }
            }
            for &(token, why) in HAZARD_IDENTS {
                if name == token {
                    push(i, line, token, why, allow);
                }
            }
        }
    }
    scan_float_accum(&toks, &mod_paths, &mods, rel_path, allow, out);
}

/// Flags `+=` of a float quantity inside a `for` loop whose iterator
/// expression contains `.keys()` or `.values()`. The float quantity is
/// recognized lexically: the `+=` statement contains a float literal or
/// an `f32`/`f64` token.
fn scan_float_accum(
    toks: &[Tok<'_>],
    mod_paths: &[String],
    mods: &[usize],
    rel_path: &str,
    allow: &mut Allowlist,
    out: &mut Vec<SourceFinding>,
) {
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident("for", _) = t else { continue };
        // Loop header runs to the first `{` outside parens/brackets.
        let mut j = i + 1;
        let mut nest = 0i32;
        let mut keyed = false;
        while j < toks.len() {
            match &toks[j] {
                Tok::Punct('(' | '[', _) => nest += 1,
                Tok::Punct(')' | ']', _) => nest -= 1,
                Tok::Punct('{', _) if nest == 0 => break,
                Tok::Punct('.', _) => {
                    if let Some(Tok::Ident(m, _)) = toks.get(j + 1) {
                        if (*m == "keys" || *m == "values")
                            && matches!(toks.get(j + 2), Some(Tok::Punct('(', _)))
                        {
                            keyed = true;
                        }
                    }
                }
                Tok::Punct(';', _) if nest == 0 => break, // not a loop header
                _ => {}
            }
            j += 1;
        }
        if !keyed || j >= toks.len() {
            continue;
        }
        // Body: balanced braces from `j`.
        let body_start = j;
        let mut depth = 0i32;
        let mut end = j;
        while end < toks.len() {
            match &toks[end] {
                Tok::Punct('{', _) => depth += 1,
                Tok::Punct('}', _) => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        // Each `+=` in the body: examine its statement for a float token.
        for k in body_start..end {
            let Tok::PlusEq(line) = toks[k] else { continue };
            let stmt_start = (body_start..k)
                .rev()
                .find(|&s| matches!(toks[s], Tok::Punct(';' | '{' | '}', _)))
                .map_or(body_start, |s| s + 1);
            let stmt_end = (k..end)
                .find(|&s| matches!(toks[s], Tok::Punct(';', _)))
                .unwrap_or(end);
            let floaty = toks[stmt_start..stmt_end].iter().any(|t| {
                matches!(t, Tok::Num { float: true, .. })
                    || matches!(t, Tok::Ident("f32" | "f64", _))
            });
            if floaty && !allow.allows(rel_path, &mod_paths[mods[k]], "float-accum") {
                out.push(SourceFinding {
                    path: rel_path.to_string(),
                    line,
                    token: "float-accum".to_string(),
                    why: WHY_FLOAT_ACCUM.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, text: &str, allow: &mut Allowlist) -> Vec<SourceFinding> {
        let mut out = Vec::new();
        scan_text(path, text, allow, &mut out);
        out.sort();
        out
    }

    fn tokens(src: &str) -> Vec<String> {
        scan("crates/x/src/lib.rs", src, &mut Allowlist::empty())
            .into_iter()
            .map(|f| f.token)
            .collect()
    }

    #[test]
    fn flags_hazards_with_line_numbers() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\n";
        let f = scan("crates/x/src/lib.rs", src, &mut Allowlist::empty());
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].line, f[0].token.as_str()), (1, "HashMap"));
        assert_eq!((f[1].line, f[1].token.as_str()), (2, "Instant"));
        assert!(f[0].to_string().contains("crates/x/src/lib.rs:1"));
    }

    #[test]
    fn matches_identifier_boundaries_only() {
        assert!(tokens("let m: HashMap<u32, u32> = x;").contains(&"HashMap".to_string()));
        assert!(tokens("let m = MyHashMapLike::new();").is_empty());
        assert!(tokens("let instant_rate = 3;").is_empty());
        assert!(tokens("foo(Instant::now())") == vec!["Instant"]);
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "\
// HashMap in a line comment is fine\n\
/// Doc: uses SystemTime conceptually\n\
/* block Instant comment /* nested thread_rng */ still RefCell comment */\n\
fn ok() {}\n";
        assert!(tokens(src).is_empty());
    }

    #[test]
    fn skips_string_and_char_literals() {
        let src = r#"
fn ok() {
    let a = "HashMap inside a string";
    let b = "escaped \" quote then Instant";
    let c = 'I';
    let d = b"byte SystemTime string";
    println!("uses {} DefaultHasher", a);
}
"#;
        assert!(tokens(src).is_empty(), "{:?}", tokens(src));
    }

    #[test]
    fn skips_raw_string_literals() {
        let src = "\
fn ok() {\n\
    let a = r\"raw HashMap\";\n\
    let b = r#\"hash # RefCell \"quoted\" thread_rng\"#;\n\
    let c = br##\"byte raw Cell\"##;\n\
    let lt: &'static str = a;\n\
}\n";
        assert!(tokens(src).is_empty(), "{:?}", tokens(src));
    }

    #[test]
    fn hazard_after_string_on_same_line_is_still_found() {
        let src = "let x = (\"label\", Instant::now());\n";
        assert_eq!(tokens(src), vec!["Instant"]);
    }

    #[test]
    fn cfg_test_skips_only_the_annotated_item() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashSet;\n\
    fn t() { let _ = Instant::now(); }\n\
}\n\
fn after_tests() { let m: HashMap<u8, u8> = make(); }\n";
        // v1 skipped the rest of the file; v2 resumes after the item.
        assert_eq!(tokens(src), vec!["HashMap"]);
    }

    #[test]
    fn cfg_test_with_extra_attributes_and_semicolon_items() {
        let src = "\
#[cfg(test)]\n\
#[allow(dead_code)]\n\
fn helper() { thread_rng(); }\n\
#[cfg(test)]\n\
mod tests;\n\
fn live() { let c = RefCell::new(0); }\n";
        assert_eq!(tokens(src), vec!["RefCell"]);
    }

    #[test]
    fn flags_interior_mutability_and_threading() {
        assert_eq!(tokens("let c = RefCell::new(0);"), vec!["RefCell"]);
        assert_eq!(tokens("let c = Cell::new(0);"), vec!["Cell"]);
        assert_eq!(tokens("struct S(UnsafeCell<u32>);"), vec!["UnsafeCell"]);
        assert_eq!(tokens("static mut COUNTER: u32 = 0;"), vec!["static mut"]);
        assert_eq!(
            tokens("let h = thread::spawn(move || {});"),
            vec!["thread::spawn"]
        );
        assert_eq!(tokens("use std::sync::mpsc;"), vec!["mpsc"]);
        // `static` without `mut` is fine; `spawn` without `thread::` too.
        assert!(tokens("static OK: u32 = 0;").is_empty());
        assert!(tokens("pool.spawn(job);").is_empty());
    }

    #[test]
    fn flags_float_accumulation_in_keyed_loops() {
        let bad = "\
fn sum(m: &BTreeMap<u32, f64>) -> f64 {\n\
    let mut total = 0.0;\n\
    for v in m.values() {\n\
        total += v * 2.0;\n\
    }\n\
    total\n\
}\n";
        let f = scan("crates/x/src/lib.rs", bad, &mut Allowlist::empty());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].token.as_str(), f[0].line), ("float-accum", 4));

        // Integer accumulation over values() is fine.
        let ok_int = "\
fn sum(m: &BTreeMap<u32, u64>) -> u64 {\n\
    let mut total = 0;\n\
    for v in m.values() {\n\
        total += v + 1;\n\
    }\n\
    total\n\
}\n";
        assert!(tokens(ok_int).is_empty());

        // Float accumulation over a Vec (positional order) is fine.
        let ok_vec = "\
fn sum(v: &[f64]) -> f64 {\n\
    let mut total = 0.0;\n\
    for x in v.iter() {\n\
        total += x * 2.0;\n\
    }\n\
    total\n\
}\n";
        assert!(tokens(ok_vec).is_empty());
    }

    #[test]
    fn allowlist_excuses_and_tracks_usage() {
        let mut allow = Allowlist::parse(
            "# reasons inline\n\
             crates/x/src/lib.rs Instant  # wall-clock progress\n\
             crates/y/src/lib.rs *\n\
             crates/z/src/lib.rs HashMap\n",
        )
        .unwrap();
        let f = scan(
            "crates/x/src/lib.rs",
            "let t = Instant::now();\nuse std::collections::HashMap;\n",
            &mut allow,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "HashMap");
        let f = scan("crates/y/src/lib.rs", "let s: HashSet<u8> = x;", &mut allow);
        assert!(f.is_empty());
        assert_eq!(allow.unused(), vec!["crates/z/src/lib.rs HashMap"]);
    }

    #[test]
    fn allowlist_rejects_duplicates_and_shadowed_entries() {
        let err = Allowlist::parse(
            "crates/x/src/lib.rs Instant\n\
             crates/x/src/lib.rs Instant\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, AllowlistError::Duplicate { line: 2, .. }),
            "{err}"
        );

        let err = Allowlist::parse(
            "crates/x/src/lib.rs *\n\
             crates/x/src/lib.rs HashMap\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, AllowlistError::Shadowed { line: 2, .. }),
            "{err}"
        );
        // Shadowing is order-independent.
        let err = Allowlist::parse(
            "crates/x/src/lib.rs HashMap\n\
             crates/x/src/lib.rs *\n",
        )
        .unwrap_err();
        assert!(matches!(err, AllowlistError::Shadowed { line: 1, .. }));

        // Distinct paths do not shadow each other.
        assert!(Allowlist::parse(
            "crates/x/src/lib.rs *\n\
             crates/y/src/lib.rs HashMap\n",
        )
        .is_ok());
    }

    #[test]
    fn findings_sort_stably() {
        let mut v = vec![
            SourceFinding {
                path: "b.rs".into(),
                line: 3,
                token: "Instant".into(),
                why: String::new(),
            },
            SourceFinding {
                path: "a.rs".into(),
                line: 9,
                token: "HashMap".into(),
                why: String::new(),
            },
        ];
        v.sort();
        assert_eq!(v[0].path, "a.rs");
    }

    #[test]
    fn flags_thread_scope() {
        assert_eq!(
            tokens("std::thread::scope(|s| { s.spawn(|| {}); });"),
            vec!["thread::scope"]
        );
        // `scope` alone (e.g. a rayon scope variable) is not the hazard.
        assert!(tokens("let scope = tracker.scope();").is_empty());
    }

    #[test]
    fn module_entry_excuses_only_its_module() {
        let src = "\
fn outer() { thread::scope(|s| {}); }\n\
mod pool {\n\
    fn run() { thread::scope(|s| {}); }\n\
    mod inner {\n\
        fn deep() { thread::scope(|s| {}); }\n\
    }\n\
}\n\
mod other {\n\
    fn run() { thread::scope(|s| {}); }\n\
}\n";
        let mut allow =
            Allowlist::parse("crates/x/src/lib.rs::pool thread::scope  # certified driver\n")
                .unwrap();
        let f = scan("crates/x/src/lib.rs", src, &mut allow);
        // The file-root use and `mod other` are flagged; `mod pool` and
        // its nested `mod inner` are excused.
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!((f[0].line, f[0].token.as_str()), (1, "thread::scope"));
        assert_eq!((f[1].line, f[1].token.as_str()), (9, "thread::scope"));
        assert!(allow.unused().is_empty());
    }

    #[test]
    fn module_entry_does_not_match_prefix_named_sibling() {
        // `mod pooling` must not be covered by an entry for `pool`.
        let src = "mod pooling { fn run() { thread::scope(|s| {}); } }\n";
        let mut allow = Allowlist::parse("crates/x/src/lib.rs::pool thread::scope\n").unwrap();
        let f = scan("crates/x/src/lib.rs", src, &mut allow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(
            allow.unused(),
            vec!["crates/x/src/lib.rs::pool thread::scope"]
        );
    }

    #[test]
    fn stale_module_entry_surfaces_as_unused() {
        // The hazard moved out of the named module: the entry no longer
        // covers anything and must be reported so it gets deleted.
        let src = "mod elsewhere { fn run() { thread::scope(|s| {}); } }\n";
        let mut allow = Allowlist::parse("crates/x/src/lib.rs::pool thread::scope\n").unwrap();
        let f = scan("crates/x/src/lib.rs", src, &mut allow);
        assert_eq!(f.len(), 1);
        assert_eq!(
            allow.unused(),
            vec!["crates/x/src/lib.rs::pool thread::scope"]
        );
    }

    #[test]
    fn module_entries_duplicate_and_shadow_rules() {
        // Same file+module+token twice is a duplicate.
        let err = Allowlist::parse(
            "crates/x/src/lib.rs::pool thread::scope\n\
             crates/x/src/lib.rs::pool thread::scope\n",
        )
        .unwrap_err();
        assert!(matches!(err, AllowlistError::Duplicate { line: 2, .. }));

        // A whole-file wildcard shadows a module-scoped entry.
        let err = Allowlist::parse(
            "crates/x/src/lib.rs *\n\
             crates/x/src/lib.rs::pool thread::scope\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, AllowlistError::Shadowed { line: 2, .. }),
            "{err}"
        );

        // A parent-module wildcard shadows a child-module entry.
        let err = Allowlist::parse(
            "crates/x/src/lib.rs::pool *\n\
             crates/x/src/lib.rs::pool::inner thread::scope\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, AllowlistError::Shadowed { line: 2, .. }),
            "{err}"
        );

        // Sibling modules coexist; a module wildcard does not shadow a
        // whole-file entry for a different token.
        assert!(Allowlist::parse(
            "crates/x/src/lib.rs::pool thread::scope\n\
                 crates/x/src/lib.rs::metrics thread::scope\n\
                 crates/x/src/lib.rs Instant\n",
        )
        .is_ok());
    }

    #[test]
    fn module_tracking_handles_mod_declarations_and_braces() {
        // `mod name;` opens nothing; unrelated braces do not end a module.
        let src = "\
mod decl_only;\n\
mod pool {\n\
    fn a() { if x { y(); } thread::scope(|s| {}); }\n\
}\n\
fn after() { thread::scope(|s| {}); }\n";
        let mut allow = Allowlist::parse("crates/x/src/lib.rs::pool thread::scope\n").unwrap();
        let f = scan("crates/x/src/lib.rs", src, &mut allow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }
}
