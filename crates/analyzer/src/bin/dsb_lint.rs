//! `dsb-lint`: the repo's static correctness gate.
//!
//! Two passes, both wired into `ci.sh`:
//!
//! 1. **Spec pass** — runs [`dsb_analyzer::Analyzer`] over the eight
//!    built-in application variants, with each app's front-end as the
//!    entry point, the golden-fixture load as the offered load, the
//!    golden-fixture cluster as the placement target, and each app's
//!    p99 QoS target as the SLO (so the DSB011 machine-budget and the
//!    DSB012/DSB013 calibration passes run too). Every
//!    diagnostic must appear in the annotated [`EXPECTED`] table below;
//!    anything unexpected (and any stale annotation) fails the gate.
//!    Each app also prints its DSB015 lookahead certificate — the
//!    minimum safe epoch a conservative parallel engine could use.
//! 2. **Source pass** — runs the determinism lint over `crates/*/src`
//!    against the `determinism_allow.txt` allowlist at the repo root.
//!    Any unallowed hazard, or any allowlist entry that no longer
//!    matches, fails the gate.

use std::path::Path;
use std::process::ExitCode;

use dsb_analyzer::{lint_sources, lookahead_certificate, Allowlist, Analyzer, Severity};
use dsb_core::{ClusterSpec, MachineSpec};

/// The reference cluster of `tests/common/mod.rs::fixed_cluster()`: 8
/// Xeon servers on 2 racks plus 24 edge devices. Placement-dependent
/// diagnostics are judged against the same machines the golden traces
/// run on.
fn fixture_cluster() -> ClusterSpec {
    let mut cluster = ClusterSpec::xeon_cluster(8, 2);
    for _ in 0..24 {
        cluster.machines.push(MachineSpec::edge_device());
    }
    cluster.trace_sample_prob = 0.0;
    cluster
}

/// Diagnostics the eight shipped apps are *expected* to produce, each
/// with the reason it is accepted rather than fixed:
/// `(app, code, service, reason)`; `"*"` matches every service. The
/// exact per-service list is pinned by `tests/goldens/analyzer_report.txt`,
/// so wildcards here cannot mask new findings.
///
/// Currently empty: the single-shard (DSB008) and one-sided endpoint
/// pair (DSB010) defects this table used to accept were fixed for real
/// — every sharded store now runs >= 2 shards and every cache/DB
/// endpoint pair is exercised from both sides.
const EXPECTED: &[(&str, &str, &str, &str)] = &[];

fn main() -> ExitCode {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut failed = false;

    println!("== dsb-lint: spec pass (8 built-in apps) ==");
    let cluster = fixture_cluster();
    let mut seen_expected = vec![false; EXPECTED.len()];
    for (name, qps, app) in dsb_apps::all_builtin() {
        let mut an = Analyzer::new(&app.spec)
            .entry(app.frontend)
            .cluster(&cluster)
            .calibration(1.0)
            .slo(app.qos_p99);
        let total_weight: f64 = app.mix.entries().iter().map(|e| e.weight).sum();
        for e in app.mix.entries() {
            an = an.offered(e.entry, qps * e.weight / total_weight);
        }
        let diags = an.run();
        let mut unexpected = 0;
        for d in &diags {
            let hit = EXPECTED.iter().position(|&(a, c, s, _)| {
                a == name && c == d.code.as_str() && (s == "*" || s == d.service_name)
            });
            match hit {
                Some(i) => seen_expected[i] = true,
                None => {
                    unexpected += 1;
                    if d.severity >= Severity::Error {
                        failed = true;
                    }
                    println!("  {name}: {d}");
                }
            }
        }
        if unexpected == 0 {
            let note = if diags.len() > unexpected {
                " (expected diagnostics annotated)"
            } else {
                ""
            };
            println!("  {name}: clean{note}");
        } else {
            failed = true; // unexpected warnings also fail: annotate or fix
        }
        // The DSB015 certificate: how far a conservative parallel
        // engine could advance each shard between synchronizations.
        // The exact per-app lines are pinned by tests/goldens/lookahead.txt.
        match lookahead_certificate(&app.spec, &cluster) {
            Some(cert) => {
                println!(
                    "  {name}: {}",
                    cert.render(|s| app.spec.service(s).name.clone())
                );
            }
            None => {
                println!("  {name}: no feasible placement, lookahead certificate unavailable");
                failed = true;
            }
        }
    }
    for (i, &(app, code, svc, reason)) in EXPECTED.iter().enumerate() {
        if !seen_expected[i] {
            println!("  stale expectation: {app} {code} {svc} ({reason}) no longer fires");
            failed = true;
        }
    }

    println!("== dsb-lint: source pass (determinism hazards) ==");
    let allow_path = repo_root.join("determinism_allow.txt");
    let mut allow = match Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(e) => {
            println!("  cannot load {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
    };
    match lint_sources(&repo_root, &mut allow) {
        Ok(findings) => {
            for f in &findings {
                println!("  {f}");
                failed = true;
            }
            for stale in allow.unused() {
                println!("  stale allowlist entry (delete it): {stale}");
                failed = true;
            }
            if findings.is_empty() {
                println!("  clean");
            }
        }
        Err(e) => {
            println!("  scan failed: {e}");
            failed = true;
        }
    }

    if failed {
        println!("dsb-lint: FAILED");
        ExitCode::FAILURE
    } else {
        println!("dsb-lint: ok");
        ExitCode::SUCCESS
    }
}
