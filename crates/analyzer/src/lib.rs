//! # dsb-analyzer — static validation of application & cluster specs
//!
//! The paper's hardest-to-debug behaviours — backpressure through
//! blocking connection pools (Fig. 17), cascading QoS violations
//! (Figs. 19–20), and skew concentrating load on sharded back-ends
//! (Fig. 22b) — all originate in *statically knowable* properties of the
//! service dependency graph. This crate checks those properties before a
//! single event is simulated and reports structured [`Diagnostic`]s:
//!
//! | Code | Check | Severity |
//! |---|---|---|
//! | DSB001 | call-graph cycle | error |
//! | DSB002 | blocking pool backpressure potential (Fig. 17 case B) | warning |
//! | DSB003 | fan-out degree oversubscribes the callee's worker pool | warning |
//! | DSB004 | service unreachable from any entry point | warning |
//! | DSB005 | dangling [`EndpointRef`](dsb_core::EndpointRef) | error |
//! | DSB006 | parallel fan-out toward a blocking-connection protocol | error |
//! | DSB007 | same-host IPC edge crossing zones | warning |
//! | DSB008 | partition load-balancing over a single instance | warning |
//! | DSB009 | offered load vs aggregate tier capacity | warning/error |
//! | DSB010 | endpoint never called by any script | warning |
//! | DSB011 | placement overcommits a machine's core budget | warning/error |
//! | DSB012 | critical-path queueing beyond per-tier Erlang-C (calibration sim) | warning |
//! | DSB013 | SLO burn's runtime culprit differs from the spec-predicted bottleneck | warning |
//! | DSB014 | circular wait across blocking worker/connection pools (deadlock) | error |
//! | DSB015 | zero/sub-loopback lookahead edge blocks parallel sharding | warning |
//! | DSB016 | cross-shard write-visibility window (cache set before durable write) | warning |
//! | DSB017 | sole cache tier with replication factor 1 (no fault tolerance) | warning |
//!
//! Entry points: [`analyze`] for pure spec checks, [`Analyzer`] to add
//! entry-point and offered-load context, [`model::lookahead_certificate`]
//! for the per-app parallel-lookahead certificate DSB015 is built on,
//! and [`srclint`] for the determinism source lint that protects the
//! golden-trace contract (no `HashMap` iteration, wall clocks, unseeded
//! randomness, interior mutability, or stray threads in sim-visible
//! code). The `dsb-lint` binary runs both passes over the eight built-in
//! applications and `crates/*/src`.

#![warn(missing_docs)]

pub mod checks;
pub mod model;
pub mod srclint;

pub use checks::{analyze, Analyzer};
pub use model::{lookahead_certificate, CapacityModel, LookaheadCertificate};
pub use srclint::{lint_sources, Allowlist, AllowlistError, SourceFinding};

use std::fmt;

use dsb_core::ServiceId;

/// How bad a diagnostic is.
///
/// `dsb-lint` (and the CI gate) fail only on [`Severity::Error`];
/// warnings are reported and pinned by golden fixtures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but simulatable; the shape the paper warns about.
    Warning,
    /// The spec is wrong: it cannot mean what its author intended.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable identifier of one diagnostic class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// DSB001: cycle in the service call graph.
    CallCycle,
    /// DSB002: a blocking tier's fixed pool can exhaust while holding
    /// callers' connections (the Fig. 17 backpressure shape).
    BlockingBackpressure,
    /// DSB003: expected fan-out degree exceeds the callee's total workers.
    FanoutOversubscription,
    /// DSB004: service unreachable from every entry point.
    UnreachableService,
    /// DSB005: call target names a service/endpoint that does not exist.
    DanglingEndpoint,
    /// DSB006: `ParCall`/`FanCall` toward a blocking-connection protocol.
    ParallelToBlocking,
    /// DSB007: same-host IPC edge whose two ends prefer different zones.
    IpcCrossZone,
    /// DSB008: partition load-balancing with a single instance.
    PartitionDegenerate,
    /// DSB009: offered load exceeds (or nears) a tier's worker capacity.
    TierOverload,
    /// DSB010: endpoint that no behaviour script ever calls.
    UnusedEndpoint,
    /// DSB011: resident tiers' compute demand overcommits one machine's
    /// core budget under the deterministic placement plan.
    MachineOvercommit,
    /// DSB012: a calibration simulation measured queueing on a blocking
    /// fan-out chain far beyond what per-tier Erlang-C admits.
    CriticalPathQueueing,
    /// DSB013: a calibration simulation burned the SLO and the telemetry
    /// root-cause engine named a culprit tier *different* from the tier
    /// static capacity analysis predicts as the bottleneck — the
    /// Fig. 17/18 divergence between where latency is billed and what
    /// causes it.
    QosCulpritMismatch,
    /// DSB014: a cycle in the *resource-holding* call graph — every edge
    /// on it holds a finite pool slot (blocking worker or blocking
    /// connection) across its downstream call, so the loop can deadlock
    /// once all pools drain. The static dual of Fig. 17 backpressure.
    WaitCycle,
    /// DSB015: a cross-machine edge whose guaranteed minimum network
    /// delay is zero (same-host-only protocol spanning shards) or below
    /// the loopback epoch floor — it would force a conservative parallel
    /// engine into lock-step.
    ZeroLookahead,
    /// DSB016: a write path that updates a cache shard before the
    /// durable store backing it (established by read paths that consult
    /// the cache first), opening a window in which a remote reader can
    /// refill the cache from pre-write state.
    WriteVisibilityRace,
    /// DSB017: a spec's *only* cache tier (the target of some
    /// `CacheLookup` step) runs a single instance. Losing that one
    /// replica — a `ChaosPlan` cache-loss or machine crash — forces
    /// every lookup in the app onto the miss path at once, the
    /// thundering-herd refill the paper's failure studies warn about.
    SingleReplicaCache,
}

impl Code {
    /// The stable `DSBnnn` code string.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::CallCycle => "DSB001",
            Code::BlockingBackpressure => "DSB002",
            Code::FanoutOversubscription => "DSB003",
            Code::UnreachableService => "DSB004",
            Code::DanglingEndpoint => "DSB005",
            Code::ParallelToBlocking => "DSB006",
            Code::IpcCrossZone => "DSB007",
            Code::PartitionDegenerate => "DSB008",
            Code::TierOverload => "DSB009",
            Code::UnusedEndpoint => "DSB010",
            Code::MachineOvercommit => "DSB011",
            Code::CriticalPathQueueing => "DSB012",
            Code::QosCulpritMismatch => "DSB013",
            Code::WaitCycle => "DSB014",
            Code::ZeroLookahead => "DSB015",
            Code::WriteVisibilityRace => "DSB016",
            Code::SingleReplicaCache => "DSB017",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The diagnostic class.
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// The service the finding is anchored to (`None`: app-wide).
    pub service: Option<ServiceId>,
    /// Name of that service (empty when app-wide).
    pub service_name: String,
    /// The endpoint involved, if the finding is endpoint-scoped.
    pub endpoint: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Sort key: service id first, then code — the stable order required
    /// for golden-testable reports (ties broken by endpoint and message).
    fn key(&self) -> (u32, Code, &str, &str) {
        (
            self.service.map_or(u32::MAX, |s| s.0),
            self.code,
            self.endpoint.as_deref().unwrap_or(""),
            &self.message,
        )
    }
}

impl PartialOrd for Diagnostic {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Diagnostic {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] ", self.severity, self.code)?;
        if !self.service_name.is_empty() {
            write!(f, "{}", self.service_name)?;
            if let Some(ep) = &self.endpoint {
                write!(f, "/{ep}")?;
            }
            write!(f, ": ")?;
        }
        f.write_str(&self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, sev: Severity, svc: Option<u32>, msg: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: sev,
            service: svc.map(ServiceId),
            service_name: svc.map_or(String::new(), |s| format!("svc{s}")),
            endpoint: None,
            message: msg.to_string(),
        }
    }

    #[test]
    fn display_is_stable() {
        let d = diag(Code::CallCycle, Severity::Error, Some(3), "a -> b -> a");
        assert_eq!(d.to_string(), "error[DSB001] svc3: a -> b -> a");
        let d = diag(Code::TierOverload, Severity::Warning, None, "app-wide");
        assert_eq!(d.to_string(), "warning[DSB009] app-wide");
    }

    #[test]
    fn ordering_is_service_then_code() {
        let mut v = vec![
            diag(Code::UnusedEndpoint, Severity::Warning, Some(2), "z"),
            diag(Code::CallCycle, Severity::Error, Some(2), "a"),
            diag(Code::DanglingEndpoint, Severity::Error, Some(1), "b"),
            diag(Code::CallCycle, Severity::Error, None, "app-wide"),
        ];
        v.sort();
        assert_eq!(v[0].service, Some(ServiceId(1)));
        assert_eq!(v[1].code, Code::CallCycle);
        assert_eq!(v[1].service, Some(ServiceId(2)));
        assert_eq!(v[2].code, Code::UnusedEndpoint);
        assert_eq!(v[3].service, None, "app-wide findings sort last");
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            Code::CallCycle,
            Code::BlockingBackpressure,
            Code::FanoutOversubscription,
            Code::UnreachableService,
            Code::DanglingEndpoint,
            Code::ParallelToBlocking,
            Code::IpcCrossZone,
            Code::PartitionDegenerate,
            Code::TierOverload,
            Code::UnusedEndpoint,
            Code::MachineOvercommit,
            Code::CriticalPathQueueing,
            Code::QosCulpritMismatch,
            Code::WaitCycle,
            Code::ZeroLookahead,
            Code::WriteVisibilityRace,
            Code::SingleReplicaCache,
        ];
        let strs: Vec<_> = all.iter().map(|c| c.as_str()).collect();
        let unique: std::collections::BTreeSet<_> = strs.iter().collect();
        assert_eq!(unique.len(), all.len());
        assert!(strs.iter().all(|s| s.starts_with("DSB") && s.len() == 6));
    }
}
