//! Mutation properties: take a randomized *valid* layered application,
//! verify it analyzes clean, then inject exactly one defect class —
//! a back-edge, a dropped edge, an undersized blocking pool, a dangling
//! call — and assert the analyzer reports exactly that class.

use std::sync::Arc;

use dsb_analyzer::{Analyzer, Code};
use dsb_core::{
    AppSpec, ClusterSpec, Concurrency, EndpointRef, EndpointSpec, LbPolicy, ServiceId, ServiceSpec,
    Step, WorkerPolicy,
};
use dsb_net::{Protocol, Zone};
use dsb_simcore::{Dist, Rng};
use dsb_testkit::{gen, prop, Shrink};

/// A layered DAG topology: `widths[0]` is always 1 (the front-end);
/// edges between adjacent layers are a pure function of `edge_seed`.
#[derive(Debug, Clone, PartialEq)]
struct Topo {
    widths: Vec<u8>,
    edge_seed: u64,
}

impl Shrink for Topo {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.widths.len() > 2 {
            out.push(Topo {
                widths: self.widths[..self.widths.len() - 1].to_vec(),
                ..self.clone()
            });
        }
        for (i, &w) in self.widths.iter().enumerate().skip(1) {
            if w > 1 {
                let mut t = self.clone();
                t.widths[i] = w - 1;
                out.push(t);
            }
        }
        for cand in self.edge_seed.shrink() {
            out.push(Topo {
                edge_seed: cand,
                ..self.clone()
            });
        }
        out
    }
}

fn arb_topo(rng: &mut Rng) -> Topo {
    let mut widths = vec![1u8];
    let layers = gen::usize_in(rng, 1, 3);
    for _ in 0..layers {
        widths.push(gen::u8_in(rng, 1, 3));
    }
    Topo {
        widths,
        edge_seed: gen::u64_in(rng, 0, 1 << 30),
    }
}

/// Builds a clean spec from the topology: every service blocking with 8
/// Thrift workers (conn limits ample), every adjacent-layer service
/// covered by at least one edge in each direction, one endpoint each.
fn build(topo: &Topo) -> AppSpec {
    let mut rng = Rng::new(topo.edge_seed);

    // Service index ranges per layer.
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    for &w in &topo.widths {
        layers.push((next..next + w as usize).collect());
        next += w as usize;
    }

    // Edges: every child gets one parent; every parent gets one child;
    // plus a few extra random edges for fan-out variety.
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); next];
    for pair in layers.windows(2) {
        let (parents, children) = (&pair[0], &pair[1]);
        for &c in children {
            let p = *gen::choice(&mut rng, parents);
            calls[p].push(c);
        }
        for &p in parents {
            if calls[p].iter().all(|c| !children.contains(c)) {
                calls[p].push(*gen::choice(&mut rng, children));
            }
            for _ in 0..gen::usize_in(&mut rng, 0, 2) {
                let c = *gen::choice(&mut rng, children);
                if !calls[p].contains(&c) {
                    calls[p].push(c);
                }
            }
        }
    }

    let services = (0..next)
        .map(|i| {
            let mut script = vec![Step::work_us(5.0)];
            for &c in &calls[i] {
                script.push(Step::call(
                    EndpointRef {
                        service: ServiceId(c as u32),
                        endpoint: 0,
                    },
                    64.0,
                ));
            }
            ServiceSpec {
                name: format!("svc{i}"),
                profile: dsb_uarch::UarchProfile::microservice_default(),
                concurrency: Concurrency::Blocking,
                workers: WorkerPolicy::Fixed(8),
                protocol: Protocol::ThriftRpc,
                lb: LbPolicy::RoundRobin,
                initial_instances: 1,
                conn_limit: 128,
                zone_pref: None,
                placement: dsb_core::PlacementHint::Spread,
                endpoints: vec![EndpointSpec {
                    name: "run".to_string(),
                    resp_bytes: Dist::constant(64.0),
                    script: Arc::new(script),
                }],
            }
        })
        .collect();
    AppSpec {
        name: "prop-app".to_string(),
        services,
    }
}

fn codes(spec: &AppSpec) -> Vec<Code> {
    let mut v: Vec<Code> = Analyzer::new(spec)
        .entry(ServiceId(0))
        .run()
        .iter()
        .map(|d| d.code)
        .collect();
    v.dedup();
    v
}

fn append_step(spec: &mut AppSpec, service: usize, step: Step) {
    let ep = &mut spec.services[service].endpoints[0];
    let mut script = (*ep.script).clone();
    script.push(step);
    ep.script = Arc::new(script);
}

/// Codes for a placement-aware run: offered load at the front-end plus a
/// cluster (and optionally a DSB012 calibration window).
fn placed_codes(spec: &AppSpec, cluster: &ClusterSpec, qps: f64, calibration: f64) -> Vec<Code> {
    let front = EndpointRef {
        service: ServiceId(0),
        endpoint: 0,
    };
    let mut v: Vec<Code> = Analyzer::new(spec)
        .entry(ServiceId(0))
        .offered(front, qps)
        .cluster(cluster)
        .calibration(calibration)
        .run()
        .iter()
        .map(|d| d.code)
        .collect();
    v.dedup();
    v
}

#[test]
fn valid_layered_apps_analyze_clean() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let spec = build(t);
        let diags = Analyzer::new(&spec).entry(ServiceId(0)).run();
        if diags.is_empty() {
            Ok(())
        } else {
            Err(format!("clean app produced {diags:?}"))
        }
    });
}

#[test]
fn back_edge_reports_exactly_a_cycle() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // A leaf calling the front-end closes a cycle through every
        // layer on that path.
        let leaf = spec.services.len() - 1;
        append_step(
            &mut spec,
            leaf,
            Step::call(
                EndpointRef {
                    service: ServiceId(0),
                    endpoint: 0,
                },
                64.0,
            ),
        );
        let got = codes(&spec);
        // Every tier is blocking Thrift with a fixed pool, so the same
        // back-edge also closes a resource-holding loop: DSB001 names
        // the cycle, DSB014 certifies it can deadlock.
        if got == vec![Code::CallCycle, Code::WaitCycle] {
            Ok(())
        } else {
            Err(format!("expected [CallCycle, WaitCycle], got {got:?}"))
        }
    });
}

#[test]
fn async_back_edge_is_a_cycle_but_never_a_wait_cycle() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // Same back-edge, but no tier holds a pool slot across its
        // calls: async workers, non-blocking Thrift connections. The
        // cycle is still a spec error; the deadlock certificate must
        // NOT fire — that one-bit delta is exactly what DSB014 adds.
        for svc in &mut spec.services {
            svc.concurrency = Concurrency::Async;
        }
        let leaf = spec.services.len() - 1;
        append_step(
            &mut spec,
            leaf,
            Step::call(
                EndpointRef {
                    service: ServiceId(0),
                    endpoint: 0,
                },
                64.0,
            ),
        );
        let got = codes(&spec);
        if got == vec![Code::CallCycle] {
            Ok(())
        } else {
            Err(format!("expected [CallCycle], got {got:?}"))
        }
    });
}

#[test]
fn dropped_edges_report_exactly_unreachable() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // Sever every call into the last service: it becomes an island.
        let victim = ServiceId((spec.services.len() - 1) as u32);
        for svc in &mut spec.services {
            let ep = &mut svc.endpoints[0];
            let script: Vec<Step> = ep
                .script
                .iter()
                .filter(|s| !matches!(s, Step::Call { target, .. } if target.service == victim))
                .cloned()
                .collect();
            ep.script = Arc::new(script);
        }
        let got = codes(&spec);
        if got == vec![Code::UnreachableService] {
            Ok(())
        } else {
            Err(format!("expected [UnreachableService], got {got:?}"))
        }
    });
}

#[test]
fn shrunk_blocking_pool_reports_exactly_backpressure() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // Turn the front-end's first callee into an HTTP tier whose
        // connection budget is far below its callers' worker pools.
        let target = spec.services[0].endpoints[0]
            .script
            .iter()
            .find_map(|s| match s {
                Step::Call { target, .. } => Some(target.service),
                _ => None,
            })
            .expect("front-end always has a callee");
        let callee = &mut spec.services[target.0 as usize];
        callee.protocol = Protocol::Http1;
        callee.conn_limit = 2;
        let got = codes(&spec);
        // Every blocking caller of the shrunk tier reports the shape;
        // no other class may appear.
        if got == vec![Code::BlockingBackpressure] {
            Ok(())
        } else {
            Err(format!("expected [BlockingBackpressure], got {got:?}"))
        }
    });
}

#[test]
fn dangling_call_reports_exactly_dangling() {
    prop!(cases = 64, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        append_step(
            &mut spec,
            0,
            Step::call(
                EndpointRef {
                    service: ServiceId(250),
                    endpoint: 7,
                },
                64.0,
            ),
        );
        let got = codes(&spec);
        if got == vec![Code::DanglingEndpoint] {
            Ok(())
        } else {
            Err(format!("expected [DanglingEndpoint], got {got:?}"))
        }
    });
}

#[test]
fn overcommitted_machine_reports_exactly_machine_overcommit() {
    prop!(cases = 32, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // One single-core machine hosting every tier: clean while the
        // handlers are microsecond-sized...
        let mut cluster = ClusterSpec::xeon_cluster(1, 1);
        cluster.machines[0].cores = 1;
        let base = placed_codes(&spec, &cluster, 150.0, 0.0);
        if !base.is_empty() {
            return Err(format!("clean placed app produced {base:?}"));
        }
        // ...then the front-end grows a 10 ms compute phase: 1.5 erlangs
        // against a 1-core budget. Its own 8-worker pool is still far
        // from saturation, so DSB009 must stay quiet — only the machine
        // check can see this.
        append_step(&mut spec, 0, Step::work_us(10_000.0));
        let got = placed_codes(&spec, &cluster, 150.0, 0.0);
        if got == vec![Code::MachineOvercommit] {
            Ok(())
        } else {
            Err(format!("expected [MachineOvercommit], got {got:?}"))
        }
    });
}

#[test]
fn injected_fanout_chain_reports_exactly_critical_path_queueing() {
    prop!(cases = 16, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        let cluster = ClusterSpec::xeon_cluster(2, 1);
        let base = placed_codes(&spec, &cluster, 5.0, 2.0);
        if !base.is_empty() {
            return Err(format!("clean placed app produced {base:?}"));
        }
        // Graft a blocking fan-out chain onto the front-end: 16 parallel
        // calls into `burst` (16 workers — DSB003 quiet), each of which
        // calls `slowleaf` (4 workers, 2 ms I/O — 0.16 erlangs offered,
        // DSB009 quiet). The fan-out synchronizes 16 arrivals over 4
        // workers, so only the calibration run can see the queueing.
        let slowleaf = spec.services.len();
        spec.services.push(chain_svc(
            "slowleaf",
            4,
            vec![Step::Io {
                ns: Dist::constant(2_000_000.0),
            }],
        ));
        let burst = spec.services.len();
        spec.services.push(chain_svc(
            "burst",
            16,
            vec![Step::call(
                EndpointRef {
                    service: ServiceId(slowleaf as u32),
                    endpoint: 0,
                },
                64.0,
            )],
        ));
        append_step(
            &mut spec,
            0,
            Step::FanCall {
                target: EndpointRef {
                    service: ServiceId(burst as u32),
                    endpoint: 0,
                },
                req_bytes: Dist::constant(64.0),
                n: Dist::constant(16.0),
            },
        );
        let got = placed_codes(&spec, &cluster, 5.0, 2.0);
        if got == vec![Code::CriticalPathQueueing] {
            Ok(())
        } else {
            Err(format!("expected [CriticalPathQueueing], got {got:?}"))
        }
    });
}

#[test]
fn edge_gossip_pair_reports_exactly_zero_lookahead() {
    prop!(cases = 32, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        let mut cluster = ClusterSpec::xeon_cluster(2, 1);
        for _ in 0..4 {
            cluster.machines.push(dsb_core::MachineSpec::edge_device());
        }
        let base = placed_codes(&spec, &cluster, 5.0, 0.0);
        if !base.is_empty() {
            return Err(format!("clean placed app produced {base:?}"));
        }
        // Graft a two-service edge-zone gossip pair under the
        // front-end: two instances each, spread over the drones. The
        // Edge<->Edge link floor (400 ns) is below the loopback epoch
        // floor (2 us), so only the lookahead certificate complains.
        let peer = spec.services.len();
        let mut svc = chain_svc("gossip-peer", 1, vec![Step::work_us(5.0)]);
        svc.zone_pref = Some(Zone::Edge);
        svc.initial_instances = 2;
        spec.services.push(svc);
        let gossip = spec.services.len();
        let mut svc = chain_svc(
            "gossip",
            1,
            vec![Step::call(
                EndpointRef {
                    service: ServiceId(peer as u32),
                    endpoint: 0,
                },
                64.0,
            )],
        );
        svc.zone_pref = Some(Zone::Edge);
        svc.initial_instances = 2;
        spec.services.push(svc);
        append_step(
            &mut spec,
            0,
            Step::call(
                EndpointRef {
                    service: ServiceId(gossip as u32),
                    endpoint: 0,
                },
                64.0,
            ),
        );
        let got = placed_codes(&spec, &cluster, 5.0, 0.0);
        if got == vec![Code::ZeroLookahead] {
            Ok(())
        } else {
            Err(format!("expected [ZeroLookahead], got {got:?}"))
        }
    });
}

#[test]
fn inverted_cache_write_reports_exactly_write_visibility_race() {
    prop!(cases = 32, arb_topo, |t: &Topo| {
        let mut spec = build(t);
        // Graft a partition-routed cache-aside pair: a read path on the
        // front-end that consults the cache before the durable store,
        // and a write path ordered store-first — clean.
        let cache = spec.services.len();
        spec.services.push(store_svc("cache", ["get", "set"]));
        let db = spec.services.len();
        spec.services.push(store_svc("db", ["find", "insert"]));
        let eref = |s: usize, e: usize| EndpointRef {
            service: ServiceId(s as u32),
            endpoint: e as u32,
        };
        append_step(&mut spec, 0, Step::call(eref(cache, 0), 16.0));
        append_step(&mut spec, 0, Step::call(eref(db, 0), 16.0));
        let write_ep = |steps: Vec<Step>| EndpointSpec {
            name: "write".to_string(),
            resp_bytes: Dist::constant(16.0),
            script: Arc::new(steps),
        };
        spec.services[0].endpoints.push(write_ep(vec![
            Step::call(eref(db, 1), 64.0),
            Step::call(eref(cache, 1), 64.0),
        ]));
        let base = codes(&spec);
        if !base.is_empty() {
            return Err(format!("clean cache-aside app produced {base:?}"));
        }
        // Swap the two writes: cache updated before the durable store.
        spec.services[0].endpoints[1] = write_ep(vec![
            Step::call(eref(cache, 1), 64.0),
            Step::call(eref(db, 1), 64.0),
        ]);
        let got = codes(&spec);
        if got == vec![Code::WriteVisibilityRace] {
            Ok(())
        } else {
            Err(format!("expected [WriteVisibilityRace], got {got:?}"))
        }
    });
}

/// A partition-routed async store tier with two endpoints (read, write).
fn store_svc(name: &str, eps: [&str; 2]) -> ServiceSpec {
    let mut svc = chain_svc(name, 8, vec![Step::work_us(2.0)]);
    svc.concurrency = Concurrency::Async;
    svc.lb = LbPolicy::Partition;
    svc.initial_instances = 2;
    svc.endpoints[0].name = eps[0].to_string();
    svc.endpoints.push(EndpointSpec {
        name: eps[1].to_string(),
        resp_bytes: Dist::constant(16.0),
        script: Arc::new(vec![Step::work_us(2.0)]),
    });
    svc
}

/// A Thrift tier for the DSB012 chain: `workers` blocking workers, one
/// instance, one `run` endpoint executing `script`.
fn chain_svc(name: &str, workers: u32, script: Vec<Step>) -> ServiceSpec {
    ServiceSpec {
        name: name.to_string(),
        profile: dsb_uarch::UarchProfile::microservice_default(),
        concurrency: Concurrency::Blocking,
        workers: WorkerPolicy::Fixed(workers),
        protocol: Protocol::ThriftRpc,
        lb: LbPolicy::RoundRobin,
        initial_instances: 1,
        conn_limit: 128,
        zone_pref: None,
        placement: dsb_core::PlacementHint::Spread,
        endpoints: vec![EndpointSpec {
            name: "run".to_string(),
            resp_bytes: Dist::constant(64.0),
            script: Arc::new(script),
        }],
    }
}
