//! Golden-trace fixtures: checked-in text snapshots of simulation
//! summaries.
//!
//! A golden test renders a deterministic summary (request counts,
//! latency percentiles at a fixed seed) to text and compares it against
//! a fixture committed to the repository. Any behavioural drift — a
//! changed service demand, a different sampling order, a scheduler tie
//! broken differently — shows up as a readable line diff. When the
//! change is intentional, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Returns `true` when `UPDATE_GOLDENS` is set to something other than
/// `0`/empty, i.e. fixtures should be rewritten instead of checked.
pub fn updating() -> bool {
    std::env::var("UPDATE_GOLDENS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Compares `actual` against the fixture at `path`.
///
/// * Fixture matches: returns.
/// * Fixture differs or is missing, and [`updating`]: (re)writes it.
/// * Otherwise: panics with a line diff and the regeneration command.
///
/// Trailing-newline differences are ignored; everything else is exact.
/// Call with an absolute path, e.g.
/// `concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/social.txt")`.
pub fn check(path: impl AsRef<Path>, actual: &str) {
    let path = path.as_ref();
    let actual = normalized(actual);
    let expected = fs::read_to_string(path).ok().map(|s| normalized(&s));
    if expected.as_deref() == Some(actual.as_str()) {
        return;
    }
    if updating() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
        fs::write(path, actual.as_bytes())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("golden: wrote {}", path.display());
        return;
    }
    match expected {
        None => panic!(
            "golden fixture {} does not exist.\n\
             Generate it with: UPDATE_GOLDENS=1 cargo test",
            path.display()
        ),
        Some(expected) => panic!(
            "golden mismatch for {}:\n{}\n\
             If this change is intentional, regenerate with: UPDATE_GOLDENS=1 cargo test",
            path.display(),
            diff(&expected, &actual)
        ),
    }
}

fn normalized(s: &str) -> String {
    let mut out = s.trim_end_matches('\n').to_string();
    out.push('\n');
    out
}

/// Maximum differing lines shown before the diff is elided.
const DIFF_LINE_CAP: usize = 20;

fn diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0;
    for i in 0..exp.len().max(act.len()) {
        let (e, a) = (exp.get(i), act.get(i));
        if e == a {
            continue;
        }
        if shown == DIFF_LINE_CAP {
            let _ = writeln!(out, "  … further differences elided …");
            break;
        }
        shown += 1;
        match (e, a) {
            (Some(e), Some(a)) => {
                let _ = writeln!(out, "  line {}:\n    - {e}\n    + {a}", i + 1);
            }
            (Some(e), None) => {
                let _ = writeln!(out, "  line {} only in fixture:\n    - {e}", i + 1);
            }
            (None, Some(a)) => {
                let _ = writeln!(out, "  line {} only in actual:\n    + {a}", i + 1);
            }
            (None, None) => unreachable!(),
        }
    }
    let _ = write!(
        out,
        "  ({} fixture line(s), {} actual line(s))",
        exp.len(),
        act.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dsb-testkit-golden-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn matching_fixture_passes() {
        let p = tmp("match.txt");
        fs::write(&p, "a\nb\n").unwrap();
        check(&p, "a\nb");
        check(&p, "a\nb\n"); // trailing newline is normalized
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn mismatch_panics_with_diff() {
        if updating() {
            return; // under UPDATE_GOLDENS=1 check() rewrites instead
        }
        let p = tmp("mismatch.txt");
        fs::write(&p, "a\nb\n").unwrap();
        let err =
            std::panic::catch_unwind(|| check(&p, "a\nc\n")).expect_err("must panic on mismatch");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("- b") && msg.contains("+ c"), "{msg}");
        assert!(msg.contains("UPDATE_GOLDENS=1"), "{msg}");
        let _ = fs::remove_file(&p);
    }

    #[test]
    fn missing_fixture_panics_with_instructions() {
        if updating() {
            return;
        }
        let p = tmp("missing.txt");
        let _ = fs::remove_file(&p);
        let err = std::panic::catch_unwind(|| check(&p, "x\n"))
            .expect_err("must panic when fixture is absent");
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("does not exist"), "{msg}");
    }

    #[test]
    fn diff_is_line_precise() {
        let d = diff("one\ntwo\n", "one\n2\nthree\n");
        assert!(d.contains("line 2"));
        assert!(d.contains("- two") && d.contains("+ 2"));
        assert!(d.contains("only in actual"));
    }
}
