//! Type-directed shrinking.
//!
//! A failing input is minimized by repeatedly asking it for *smaller
//! candidates* and keeping the first candidate that still fails the
//! property. Integers halve toward zero, vectors drop halves and then
//! single elements before shrinking element-wise, tuples shrink one
//! coordinate at a time. Custom test-input types implement [`Shrink`]
//! by composing these.

/// Produces strictly-smaller candidate values for counterexample
/// minimization.
///
/// `shrink` returns candidates in preference order (most aggressive
/// first); it must eventually return an empty list so shrinking
/// terminates. Types with no useful notion of "smaller" can return
/// `Vec::new()`.
pub trait Shrink: Sized {
    /// Candidate smaller values, most aggressive first.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                if v > 1 {
                    out.push(v - 1);
                }
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}

impl_shrink_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2, v - v.signum()];
                if v < 0 {
                    // Positive values of the same magnitude are "simpler".
                    out.push(-v);
                }
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}

impl_shrink_int!(i8, i16, i32, i64, isize);

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0, v / 2.0, v.trunc()];
        if v < 0.0 {
            out.push(-v);
        }
        out.retain(|&c| c != v);
        out.dedup();
        out
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Option<T> {
    fn shrink(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink().into_iter().map(Some));
                out
            }
        }
    }
}

/// How many positions we try for single-element removal / element-wise
/// shrinking before giving up; keeps candidate lists small on big vecs
/// (the halving steps have usually shortened them long before this
/// matters).
const VEC_POSITION_CAP: usize = 24;

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Structural shrinks first: shorter inputs beat smaller elements.
        if n > 1 {
            out.push(self[n / 2..].to_vec()); // drop the first half
            out.push(self[..n / 2].to_vec()); // drop the second half
        } else {
            out.push(Vec::new());
        }
        for i in 0..n.min(VEC_POSITION_CAP) {
            let mut shorter = self.clone();
            shorter.remove(i);
            out.push(shorter);
        }
        // Element-wise: replace one element with its first few shrinks.
        for i in 0..n.min(VEC_POSITION_CAP) {
            for cand in self[i].shrink().into_iter().take(3) {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

impl_shrink_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_shrinks_toward_zero() {
        assert!(0u64.shrink().is_empty());
        let c = 100u64.shrink();
        assert!(c.contains(&0) && c.contains(&50) && c.contains(&99));
        assert!(!c.contains(&100));
    }

    #[test]
    fn int_shrinks_negatives_via_abs() {
        let c = (-8i64).shrink();
        assert!(c.contains(&0) && c.contains(&8));
    }

    #[test]
    fn vec_shrinks_structure_first() {
        let v = vec![5u32, 6, 7, 8];
        let c = v.shrink();
        assert_eq!(c[0], vec![7, 8]);
        assert_eq!(c[1], vec![5, 6]);
        assert!(c.iter().any(|s| s.len() == 3));
        assert!(c.iter().any(|s| *s == vec![0, 6, 7, 8]));
    }

    #[test]
    fn tuple_shrinks_one_coordinate() {
        let c = (4u32, true).shrink();
        assert!(c.contains(&(0, true)));
        assert!(c.contains(&(4, false)));
    }
}
