//! Deterministic value generators.
//!
//! Generators are plain functions over [`Rng`]: a test's generator is
//! any `Fn(&mut Rng) -> T` closure, and these helpers are the building
//! blocks. Because the runner seeds a fresh `Rng` per case from a
//! recorded seed, a generator alone is enough to replay any case — no
//! choice-recording machinery is needed.

use dsb_simcore::Rng;

/// Uniform `u64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn u64_in(rng: &mut Rng, lo: u64, hi: u64) -> u64 {
    assert!(lo < hi, "u64_in: empty range {lo}..{hi}");
    lo + rng.below(hi - lo)
}

/// Uniform `u32` in `[lo, hi)`.
pub fn u32_in(rng: &mut Rng, lo: u32, hi: u32) -> u32 {
    u64_in(rng, lo as u64, hi as u64) as u32
}

/// Uniform `u16` in `[lo, hi)`.
pub fn u16_in(rng: &mut Rng, lo: u16, hi: u16) -> u16 {
    u64_in(rng, lo as u64, hi as u64) as u16
}

/// Uniform `u8` in `[lo, hi)`.
pub fn u8_in(rng: &mut Rng, lo: u8, hi: u8) -> u8 {
    u64_in(rng, lo as u64, hi as u64) as u8
}

/// Uniform `usize` in `[lo, hi)`.
pub fn usize_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    u64_in(rng, lo as u64, hi as u64) as usize
}

/// Uniform `i64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn i64_in(rng: &mut Rng, lo: i64, hi: i64) -> i64 {
    assert!(lo < hi, "i64_in: empty range {lo}..{hi}");
    lo.wrapping_add(rng.below(lo.abs_diff(hi)) as i64)
}

/// Uniform `f64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
pub fn f64_in(rng: &mut Rng, lo: f64, hi: f64) -> f64 {
    assert!(
        lo < hi && lo.is_finite() && hi.is_finite(),
        "f64_in: bad range {lo}..{hi}"
    );
    lo + rng.f64() * (hi - lo)
}

/// A fair coin.
pub fn bool_(rng: &mut Rng) -> bool {
    rng.next_u64() & 1 == 1
}

/// A vector of `len ∈ [min_len, max_len]` elements drawn from `elem`.
pub fn vec_with<T>(
    rng: &mut Rng,
    min_len: usize,
    max_len: usize,
    mut elem: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let len = usize_in(rng, min_len, max_len + 1);
    (0..len).map(|_| elem(rng)).collect()
}

/// A uniformly chosen element of `items`.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choice<'a, T>(rng: &mut Rng, items: &'a [T]) -> &'a T {
    &items[rng.index(items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected() {
        let mut rng = Rng::new(1);
        for _ in 0..2_000 {
            assert!((3..17).contains(&u64_in(&mut rng, 3, 17)));
            assert!((-5..5).contains(&i64_in(&mut rng, -5, 5)));
            let f = f64_in(&mut rng, 0.5, 2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn i64_full_width_ranges_do_not_overflow() {
        let mut rng = Rng::new(2);
        for _ in 0..500 {
            let v = i64_in(&mut rng, i64::MIN, i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn vec_len_bounds_inclusive() {
        let mut rng = Rng::new(3);
        let mut seen_min = false;
        let mut seen_max = false;
        for _ in 0..500 {
            let v = vec_with(&mut rng, 2, 4, |r| r.next_u64());
            assert!((2..=4).contains(&v.len()));
            seen_min |= v.len() == 2;
            seen_max |= v.len() == 4;
        }
        assert!(seen_min && seen_max);
    }

    #[test]
    fn choice_covers_all_items() {
        let mut rng = Rng::new(4);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*choice(&mut rng, &items) - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
