//! # dsb-testkit — hermetic verification substrate
//!
//! The workspace's test and benchmark tooling, built entirely on
//! [`dsb_simcore::Rng`] and the standard library so the whole suite
//! builds and runs with no network access and no crates-io
//! dependencies. Three pieces:
//!
//! * [`runner`] + [`gen`] + [`shrink`] — a minimal property-testing
//!   engine: deterministic generators seeded from SplitMix-derived
//!   per-case seeds, the [`prop!`] macro with configurable case counts,
//!   and integrated greedy shrinking that reports the *minimized*
//!   counterexample together with the seed that replays it.
//! * [`golden`] — checked-in text fixtures ("golden traces") with an
//!   `UPDATE_GOLDENS=1` regeneration path, used to pin simulation
//!   summaries (request counts, latency percentiles at fixed seeds).
//! * [`mod@bench`] — a no-harness microbenchmark runner (warmup + fixed
//!   iteration count, median/MAD reporting) for `[[bench]]` targets with
//!   `harness = false`.
//!
//! # Property tests in one minute
//!
//! ```
//! use dsb_testkit::{gen, prop, prop_assert};
//!
//! // Inside a #[test] fn:
//! prop!(
//!     cases = 64,
//!     |rng| gen::vec_with(rng, 0, 20, |r| gen::u64_in(r, 0, 1000)),
//!     |xs: &Vec<u64>| {
//!         let mut sorted = xs.clone();
//!         sorted.sort_unstable();
//!         prop_assert!(sorted.len() == xs.len(), "sorting must not lose elements");
//!         Ok(())
//!     }
//! );
//! ```
//!
//! On failure the engine shrinks the input (halving integers toward
//! zero, truncating vectors, then element-wise) and panics with the
//! minimized value plus a `DSB_PROP_SEED=<seed>` line; exporting that
//! variable makes the failing case the *only* case on the next run.
//!
//! Environment knobs: `DSB_PROP_CASES` overrides every test's case
//! count, `DSB_PROP_SEED` replays one specific case, `UPDATE_GOLDENS=1`
//! rewrites golden fixtures, `DSB_BENCH_ITERS` sets benchmark
//! iterations.

#![warn(missing_docs)]

pub mod bench;
pub mod gen;
pub mod golden;
pub mod runner;
pub mod shrink;

pub use bench::{Bench, BenchConfig};
pub use runner::{Config, Counterexample, PropResult};
pub use shrink::Shrink;

/// The RNG all generators take, re-exported so test code can name the
/// type in helper-generator signatures. This matters inside crates that
/// `dsb-testkit` itself depends on (e.g. `dsb-simcore`'s unit tests):
/// there, `crate::Rng` and the `Rng` testkit links against are distinct
/// types, and this re-export is the only spellable name for the latter.
pub use dsb_simcore::Rng;
