//! A no-harness microbenchmark runner.
//!
//! Replaces Criterion for the workspace's `[[bench]]` targets (which
//! set `harness = false`): each benchmark runs a warmup phase and then
//! a fixed number of timed iterations, and the suite reports the
//! per-iteration **median** and **MAD** (median absolute deviation) —
//! robust statistics that ignore the occasional preempted iteration.
//!
//! Cargo runs bench targets in two modes, and the runner adapts:
//!
//! * `cargo bench` passes `--bench`: full iteration counts.
//! * `cargo test` runs the same binary with no `--bench` flag: a
//!   single-iteration smoke pass, so the tier-1 gate exercises every
//!   kernel without paying measurement-grade repetition.
//!
//! `DSB_BENCH_ITERS=<n>` forces full mode with `n` timed iterations.

use std::time::Instant;

pub use std::hint::black_box;

/// Iteration counts for one suite run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Untimed warmup iterations per benchmark.
    pub warmup: u32,
    /// Timed iterations per benchmark.
    pub iters: u32,
}

impl BenchConfig {
    /// Measurement-grade defaults (used under `cargo bench`).
    pub fn full() -> Self {
        BenchConfig {
            warmup: 3,
            iters: 15,
        }
    }

    /// One untimed-free iteration, for smoke runs under `cargo test`.
    pub fn smoke() -> Self {
        BenchConfig {
            warmup: 0,
            iters: 1,
        }
    }

    /// Picks a mode from the process arguments and environment as
    /// described in the module docs.
    pub fn from_env_and_args() -> Self {
        if let Ok(raw) = std::env::var("DSB_BENCH_ITERS") {
            let iters: u32 = raw
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("DSB_BENCH_ITERS must be a u32, got {raw:?}"));
            return BenchConfig {
                warmup: 3,
                iters: iters.max(1),
            };
        }
        if std::env::args().any(|a| a == "--bench") {
            BenchConfig::full()
        } else {
            BenchConfig::smoke()
        }
    }
}

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Median absolute deviation of the iteration times, ns.
    pub mad_ns: f64,
    /// Timed iterations measured.
    pub iters: u32,
}

/// A benchmark suite: register kernels with [`Bench::bench`], then
/// print the table with [`Bench::finish`].
///
/// ```no_run
/// use dsb_testkit::bench::{black_box, Bench};
///
/// let mut b = Bench::new("engine");
/// b.bench("sum_1k", || black_box((0u64..1000).sum::<u64>()));
/// b.finish();
/// ```
pub struct Bench {
    suite: String,
    cfg: BenchConfig,
    results: Vec<Sample>,
}

impl Bench {
    /// Creates a suite, picking smoke vs full mode via
    /// [`BenchConfig::from_env_and_args`].
    pub fn new(suite: &str) -> Self {
        Bench::with_config(suite, BenchConfig::from_env_and_args())
    }

    /// Creates a suite with explicit iteration counts.
    pub fn with_config(suite: &str, cfg: BenchConfig) -> Self {
        println!(
            "# bench suite `{suite}` ({} warmup + {} timed iterations per case)",
            cfg.warmup, cfg.iters
        );
        Bench {
            suite: suite.to_string(),
            cfg,
            results: Vec::new(),
        }
    }

    /// Times `f`, recording one [`Sample`]. The closure's return value
    /// is passed through [`black_box`] so the work cannot be optimized
    /// away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        for _ in 0..self.cfg.warmup {
            black_box(f());
        }
        let mut times = Vec::with_capacity(self.cfg.iters as usize);
        for _ in 0..self.cfg.iters {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        let sample = Sample {
            name: name.to_string(),
            median_ns: median(&mut times.clone()),
            mad_ns: mad(&times),
            iters: self.cfg.iters,
        };
        println!(
            "{:<44} {:>12}  ± {:>10}  x{}",
            sample.name,
            fmt_ns(sample.median_ns),
            fmt_ns(sample.mad_ns),
            sample.iters
        );
        self.results.push(sample);
    }

    /// The samples measured so far.
    pub fn results(&self) -> &[Sample] {
        &self.results
    }

    /// Prints the suite footer. Call last (consumes the suite).
    pub fn finish(self) {
        println!(
            "# bench suite `{}` done: {} case(s)",
            self.suite,
            self.results.len()
        );
    }
}

fn median(times: &mut [f64]) -> f64 {
    assert!(!times.is_empty());
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    let n = times.len();
    if n % 2 == 1 {
        times[n / 2]
    } else {
        (times[n / 2 - 1] + times[n / 2]) / 2.0
    }
}

fn mad(times: &[f64]) -> f64 {
    let m = median(&mut times.to_vec());
    let mut dev: Vec<f64> = times.iter().map(|t| (t - m).abs()).collect();
    median(&mut dev)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        let mut xs = vec![10.0, 11.0, 9.0, 10.0, 1000.0];
        assert_eq!(median(&mut xs), 10.0);
        assert_eq!(mad(&[10.0, 11.0, 9.0, 10.0, 1000.0]), 1.0);
        let mut even = vec![1.0, 3.0];
        assert_eq!(median(&mut even), 2.0);
    }

    #[test]
    fn bench_records_samples() {
        let mut b = Bench::with_config(
            "t",
            BenchConfig {
                warmup: 1,
                iters: 5,
            },
        );
        let mut calls = 0u32;
        b.bench("noop", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6, "warmup + timed iterations");
        assert_eq!(b.results().len(), 1);
        let s = &b.results()[0];
        assert_eq!(s.iters, 5);
        assert!(s.median_ns >= 0.0 && s.mad_ns >= 0.0);
        b.finish();
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert!(fmt_ns(2_500.0).ends_with("µs"));
        assert!(fmt_ns(2_500_000.0).ends_with("ms"));
        assert!(fmt_ns(2.5e9).ends_with(" s"));
    }
}
