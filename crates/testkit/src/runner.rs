//! The property-test runner: case generation, failure shrinking, and
//! seed replay.
//!
//! Each case gets its own 64-bit seed, derived deterministically from
//! the base seed, and the input value is a pure function of that seed
//! (`gen(&mut Rng::new(case_seed))`). A failure report therefore only
//! needs the case seed: `DSB_PROP_SEED=<seed> cargo test <name>` reruns
//! exactly the failing input (and then shrinks it again, so the
//! minimized value is also reproduced).

use std::fmt;

use dsb_simcore::Rng;

use crate::shrink::Shrink;

/// A property either holds (`Ok`) or fails with a message.
pub type PropResult = Result<(), String>;

/// Runner configuration, usually built by [`Config::from_env`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Base seed; per-case seeds derive from it.
    pub seed: u64,
    /// Cap on accepted shrink steps (each step is a strictly smaller
    /// failing input).
    pub max_shrink_steps: u32,
    /// Replay exactly one case with this seed instead of running the
    /// sweep (set via `DSB_PROP_SEED`).
    pub replay: Option<u64>,
    /// `true` when `DSB_PROP_CASES` was set, in which case `prop!`'s
    /// per-test `cases = N` is ignored.
    cases_from_env: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            seed: 0xD5B_BE9C4,
            max_shrink_steps: 2_000,
            replay: None,
            cases_from_env: false,
        }
    }
}

impl Config {
    /// Reads `DSB_PROP_CASES` and `DSB_PROP_SEED` on top of the
    /// defaults (64 cases, fixed base seed).
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(cases) = env_u64("DSB_PROP_CASES") {
            cfg.cases = cases.clamp(1, u32::MAX as u64) as u32;
            cfg.cases_from_env = true;
        }
        cfg.replay = env_u64("DSB_PROP_SEED");
        cfg
    }

    /// Sets the case count unless `DSB_PROP_CASES` already fixed it.
    pub fn with_cases(mut self, cases: u32) -> Self {
        if !self.cases_from_env {
            self.cases = cases.max(1);
        }
        self
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64, got {raw:?}"),
    }
}

/// A minimized failing input, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Counterexample<T> {
    /// The minimized failing value.
    pub value: T,
    /// Seed that regenerates the *original* failing case.
    pub case_seed: u64,
    /// Index of the failing case within the sweep.
    pub case: u32,
    /// Accepted shrink steps between the original and `value`.
    pub shrink_steps: u32,
    /// The property's failure message for `value`.
    pub message: String,
}

impl<T: fmt::Debug> Counterexample<T> {
    /// A multi-line report naming the test, the minimized input, and
    /// the replay seed.
    pub fn report(&self, name: &str) -> String {
        format!(
            "property `{name}` failed (case {case}): {msg}\n\
             minimized after {steps} shrink step(s):\n  {value:?}\n\
             replay with: DSB_PROP_SEED={seed} cargo test {short}",
            case = self.case,
            msg = self.message,
            steps = self.shrink_steps,
            value = self.value,
            seed = self.case_seed,
            short = name.rsplit("::").next().unwrap_or(name),
        )
    }
}

/// Runs `prop` over `cfg.cases` generated inputs; on failure, shrinks
/// greedily and returns the minimized counterexample.
///
/// This is the non-panicking core — tests normally go through [`run`]
/// or the [`prop!`](crate::prop) macro, which panic with
/// [`Counterexample::report`]. It is public so the engine itself can be
/// tested (and so harnesses can collect failures without unwinding).
pub fn check<T, G, P>(cfg: &Config, gen: G, prop: P) -> Result<(), Counterexample<T>>
where
    T: Shrink + Clone + fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    let mut seeder = Rng::new(cfg.seed);
    let (first, total) = match cfg.replay {
        Some(seed) => (Some(seed), 1),
        None => (None, cfg.cases),
    };
    for case in 0..total {
        let case_seed = first.unwrap_or_else(|| seeder.next_u64());
        let value = gen(&mut Rng::new(case_seed));
        if let Err(message) = prop(&value) {
            return Err(minimize(cfg, case, case_seed, value, message, &prop));
        }
    }
    Ok(())
}

fn minimize<T, P>(
    cfg: &Config,
    case: u32,
    case_seed: u64,
    value: T,
    message: String,
    prop: &P,
) -> Counterexample<T>
where
    T: Shrink + Clone + fmt::Debug,
    P: Fn(&T) -> PropResult,
{
    let mut cur = value;
    let mut cur_msg = message;
    let mut steps = 0;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in cur.shrink() {
            if let Err(m) = prop(&cand) {
                cur = cand;
                cur_msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break; // local minimum: every candidate passes
    }
    Counterexample {
        value: cur,
        case_seed,
        case,
        shrink_steps: steps,
        message: cur_msg,
    }
}

/// [`check`] that panics with a replayable report — the function the
/// [`prop!`](crate::prop) macro expands to.
pub fn run<T, G, P>(cfg: &Config, name: &str, gen: G, prop: P)
where
    T: Shrink + Clone + fmt::Debug,
    G: Fn(&mut Rng) -> T,
    P: Fn(&T) -> PropResult,
{
    if let Err(ce) = check(cfg, gen, prop) {
        panic!("{}", ce.report(name));
    }
}

/// Runs a property over generated inputs, shrinking failures.
///
/// ```text
/// prop!(|rng| <T>, |v: &T| -> PropResult);
/// prop!(cases = N, |rng| <T>, |v: &T| -> PropResult);
/// ```
///
/// `T` must implement [`Shrink`](crate::Shrink) + `Clone` + `Debug`.
/// Inside the property body, use [`prop_assert!`](crate::prop_assert) /
/// [`prop_assert_eq!`](crate::prop_assert_eq) and finish with `Ok(())`.
#[macro_export]
macro_rules! prop {
    (cases = $cases:expr, $gen:expr, $prop:expr $(,)?) => {
        $crate::runner::run(
            &$crate::runner::Config::from_env().with_cases($cases),
            module_path!(),
            $gen,
            $prop,
        )
    };
    ($gen:expr, $prop:expr $(,)?) => {
        $crate::runner::run(
            &$crate::runner::Config::from_env(),
            module_path!(),
            $gen,
            $prop,
        )
    };
}

/// Asserts a condition inside a property body, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property body; the failure message shows
/// both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!(
                "{} != {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if __a != __b {
            return Err(format!("{}: {:?} vs {:?}", format!($($fmt)+), __a, __b));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn cfg(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut cfg = cfg(64);
        cfg.replay = None;
        let r: Result<(), Counterexample<u64>> = check(
            &cfg,
            |rng| gen::u64_in(rng, 0, 100),
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err("out of range".into())
                }
            },
        );
        assert!(r.is_ok());
    }

    /// The acceptance check for the engine itself: a deliberately broken
    /// invariant must produce the *minimal* counterexample and a seed
    /// that replays the same original failing input.
    #[test]
    fn broken_invariant_shrinks_to_boundary() {
        let ce = check(
            &cfg(200),
            |rng| gen::u64_in(rng, 0, 10_000),
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(format!("{v} >= 100"))
                }
            },
        )
        .expect_err("property must fail");
        assert_eq!(ce.value, 100, "greedy shrink must reach the boundary");
        assert!(ce.shrink_steps > 0);
        // The recorded seed regenerates the original failing input …
        let replayed = gen::u64_in(&mut Rng::new(ce.case_seed), 0, 10_000);
        assert!(replayed >= 100);
        // … and a replay run converges on the same minimum.
        let mut replay_cfg = cfg(200);
        replay_cfg.replay = Some(ce.case_seed);
        let ce2 = check(
            &replay_cfg,
            |rng| gen::u64_in(rng, 0, 10_000),
            |&v| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(format!("{v} >= 100"))
                }
            },
        )
        .expect_err("replay must fail too");
        assert_eq!(ce2.value, 100);
        assert_eq!(ce2.case, 0, "replay runs exactly one case");
    }

    #[test]
    fn vec_counterexample_is_minimal() {
        let ce = check(
            &cfg(100),
            |rng| gen::vec_with(rng, 0, 30, |r| gen::u32_in(r, 0, 1000)),
            |xs: &Vec<u32>| {
                prop_assert!(xs.iter().all(|&x| x < 500), "element >= 500");
                Ok(())
            },
        )
        .expect_err("property must fail");
        assert_eq!(ce.value.len(), 1, "shrink must drop unrelated elements");
        assert_eq!(ce.value[0], 500, "shrink must minimize the element");
    }

    #[test]
    fn sweep_is_deterministic() {
        let run_once = || {
            check(
                &cfg(50),
                |rng| gen::u64_in(rng, 0, 1_000_000),
                |&v| {
                    if v % 7 != 0 {
                        Ok(())
                    } else {
                        Err("divisible".into())
                    }
                },
            )
            .expect_err("hits a multiple of 7")
        };
        let (a, b) = (run_once(), run_once());
        assert_eq!(a.case_seed, b.case_seed);
        assert_eq!(a.case, b.case);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn report_contains_replay_seed() {
        let ce = Counterexample {
            value: 42u64,
            case_seed: 777,
            case: 3,
            shrink_steps: 5,
            message: "boom".into(),
        };
        let r = ce.report("my::mod::test_name");
        assert!(r.contains("DSB_PROP_SEED=777"));
        assert!(r.contains("42"));
        assert!(r.contains("boom"));
        assert!(r.contains("test_name"));
    }

    #[test]
    fn prop_macro_compiles_and_passes() {
        prop!(
            cases = 16,
            |rng| (gen::u64_in(rng, 1, 50), gen::u64_in(rng, 1, 50)),
            |&(a, b): &(u64, u64)| {
                prop_assert_eq!(a + b, b + a);
                prop_assert!(a * b >= a.max(b), "{a} * {b}");
                Ok(())
            }
        );
    }
}
