//! Validity properties of the generator: every sampled spec must build,
//! lint clean of *structural* diagnostics, replay byte-identically from
//! its seed, and keep those guarantees under shrinking.

use dsb_analyzer::{Analyzer, Code};
use dsb_gen::{run_summary, GenSpec};
use dsb_testkit::shrink::Shrink;

/// Structural diagnostics the generator must never produce: these mean
/// the generated graph itself is malformed, not that it is loaded.
const STRUCTURAL: &[Code] = &[
    Code::CallCycle,
    Code::UnreachableService,
    Code::DanglingEndpoint,
    Code::ParallelToBlocking,
    Code::IpcCrossZone,
    Code::PartitionDegenerate,
    Code::UnusedEndpoint,
    Code::WaitCycle,
    Code::ZeroLookahead,
    Code::WriteVisibilityRace,
];

/// Every sampled spec builds (the builder's internal assertions run in
/// test profile) and carries no structural diagnostics — load-dependent
/// codes (DSB002/003/009/011/012) are legitimate outputs of a generator
/// that deliberately samples past saturation.
#[test]
fn sampled_specs_build_and_lint_structurally_clean() {
    for seed in 0..200u64 {
        let g = GenSpec::sample(seed);
        let app = g.build();
        let entry = app.mix.entries()[0].entry;
        let cluster = g.cluster();
        let diags = Analyzer::new(&app.spec)
            .entry(app.frontend)
            .offered(entry, g.qps())
            .cluster(&cluster)
            .run();
        for d in &diags {
            assert!(
                !STRUCTURAL.contains(&d.code),
                "seed {seed}: structural diagnostic {d} from {g:?}"
            );
        }
    }
}

/// The generator is a pure function of its seed.
#[test]
fn sampling_replays_identically_from_the_seed() {
    for seed in [0, 1, 17, 0xDEAD_BEEF, u64::MAX] {
        assert_eq!(GenSpec::sample(seed), GenSpec::sample(seed));
    }
}

/// Every shrink candidate of a sampled spec still builds: the clamped
/// accessors make the whole field space valid, so the shrinker can never
/// step outside it.
#[test]
fn shrink_candidates_stay_buildable() {
    for seed in [2, 3, 5, 8] {
        let g = GenSpec::sample(seed);
        for cand in g.shrink() {
            let app = cand.build();
            assert!(!app.spec.services.is_empty());
        }
    }
}

/// The differential run itself is deterministic: same spec, same seed,
/// byte-identical per-service summary. This is what makes every sweep
/// failure replayable from the printed seed alone.
#[test]
fn differential_runs_replay_byte_identically() {
    for seed in [4, 99] {
        let g = GenSpec::sample(seed);
        assert_eq!(run_summary(&g), run_summary(&g), "seed {seed}");
    }
}
