//! The static-vs-simulation differential oracle.
//!
//! [`check_spec`] takes one [`GenSpec`], computes the analyzer's static
//! predictions ([`CapacityModel`] plus the DSB009/DSB011 verdicts built
//! on it), runs a fixed-seed deterministic simulation of the same spec,
//! and asserts the two agree within stated tolerances. Every failure
//! message is prefixed with an oracle tag (`call-rate:`, `compute:`,
//! `saturation:`, `shards:`, `verdict:`) so sweep failures cluster into
//! disagreement *classes*, and the whole check is a plain
//! `Fn(&GenSpec) -> Result<(), String>` so the testkit shrinker can
//! minimize any disagreement to the smallest spec that still exhibits it.
//!
//! # Tolerances (the documented approximation gap)
//!
//! * **Call rates** — branch-weighted static rates vs completed
//!   invocation counts. Deterministic fan-out is exact; the cache-miss
//!   branch is binomial, so the bound is `0.25·E + 4·√E + 4` around the
//!   expectation `E`.
//! * **Compute conservation** — user-domain busy nanoseconds vs
//!   (measured invocations × per-invocation demand × machine speed
//!   factor), within 5% + 100 µs. Valid even past saturation because the
//!   run drains to idle.
//! * **Saturation** — static bottleneck utilization ≤ 0.8 must drain
//!   near the injection horizon; ≥ 1.25 must overrun it. The band
//!   (0.8, 1.25) is a *tolerated gray zone*: near ρ = 1 queueing noise
//!   dominates and neither verdict is reliable at this run length.
//!   Utilization here is the max of two bounds the first sweeps of this
//!   harness forced into existence: the *network-inclusive* machine
//!   bound (`max_machine_utilization_with_net` — the simulator charges
//!   per-message kernel/library processing to machine cores, so the
//!   compute-only model wildly underpredicts saturation for chatty
//!   low-compute apps) and the *hold-aware* tier bound
//!   (`max_tier_utilization_with_hold` — a blocking mid-tier holds its
//!   worker across downstream round-trips, so a 1-worker tier with a
//!   600 µs callee saturates near 1.6 kqps however small its local
//!   demand). Each verdict uses the bound that is conservative for it:
//!   calm needs the wait-inclusive *upper* bound everywhere ≤ 0.8,
//!   overload needs the no-wait service-path *floor* somewhere ≥ 1.25 —
//!   the M/M/k wait term diverges near a callee's ρ = 1 while a finite
//!   smooth-traffic run never sees that steady state, so wait-inflated
//!   utilizations must never certify overload. DSB009/DSB011
//!   deliberately still report the simpler local-demand / compute-only
//!   budgets.
//! * **Shard balance** — partition tiers fed golden-ratio-spread keys
//!   must split load across shards within 4× of each other.

use dsb_analyzer::{Analyzer, CapacityModel, Code, Severity};
use dsb_core::{RequestType, ServiceId, Simulation};
use dsb_simcore::SimTime;
use dsb_uarch::ExecDomain;

use crate::spec::GenSpec;

/// Seed of every differential simulation: arbitrary but fixed, so a
/// disagreement replays from the `GenSpec` alone.
pub const DIFF_SEED: u64 = 0xD1FF_0001;

/// Simulated seconds of offered load per spec.
const DIFF_SECS: f64 = 2.0;

/// Hard cap on injected requests per spec, so a high-qps spec cannot
/// blow up the sweep's wall-clock.
const MAX_REQS: u64 = 2_000;

/// One finished differential run: the simulation, what was injected,
/// and the static model it must agree with.
struct DiffRun {
    sim: Simulation,
    model: CapacityModel,
    /// Requests injected.
    n: u64,
    /// Injection horizon in seconds (`n / qps`).
    horizon_s: f64,
}

fn run(g: &GenSpec) -> Result<DiffRun, String> {
    let app = g.build();
    let entry = app.mix.entries()[0].entry;
    let qps = g.qps();
    let offered = vec![(entry, qps)];
    let cluster = g.cluster();
    let model = CapacityModel::compute(&app.spec, &offered, Some(&cluster))
        .ok_or("model: generated graph reported as cyclic")?;

    let mut sim_cluster = cluster;
    sim_cluster.trace_sample_prob = 0.0;
    let mut sim = Simulation::new(app.spec.clone(), sim_cluster, DIFF_SEED);
    let n = ((qps * DIFF_SECS).ceil() as u64).clamp(1, MAX_REQS);
    for j in 0..n {
        let at = SimTime::from_nanos((j as f64 * 1e9 / qps) as u64);
        let key = (j + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sim.inject(at, entry, RequestType(0), 256, key);
    }
    sim.run_until_idle();
    Ok(DiffRun {
        sim,
        model,
        n,
        horizon_s: n as f64 / qps,
    })
}

/// Runs every oracle against one generated spec. `Err` carries the
/// tagged disagreement.
pub fn check_spec(g: &GenSpec) -> Result<(), String> {
    let r = run(g)?;
    check_completion(&r)?;
    check_call_rates(g, &r)?;
    check_compute_conservation(g, &r)?;
    check_saturation(&r)?;
    check_shard_split(g, &r)?;
    check_verdicts(g, &r)?;
    Ok(())
}

/// Sanity: a drained simulation completes everything it issued.
fn check_completion(r: &DiffRun) -> Result<(), String> {
    let st = r
        .sim
        .request_stats(RequestType(0))
        .ok_or("completion: no request stats recorded")?;
    if st.issued != r.n || st.completed != st.issued {
        return Err(format!(
            "completion: injected {} but issued {} / completed {}",
            r.n, st.issued, st.completed
        ));
    }
    Ok(())
}

/// Static branch-weighted endpoint rates vs completed invocation counts.
fn check_call_rates(g: &GenSpec, r: &DiffRun) -> Result<(), String> {
    let app = r.sim.app();
    let per_req = r.n as f64 / g.qps(); // seconds of load actually injected
    for (i, svc) in app.services.iter().enumerate() {
        let st = r.sim.service_stats(ServiceId(i as u32));
        for e in 0..svc.endpoints.len() {
            let expected = r.model.rates[i][e] * per_req;
            let measured = st.endpoint_count(e) as f64;
            let tol = 0.25 * expected + 4.0 * expected.sqrt() + 4.0;
            if (measured - expected).abs() > tol {
                return Err(format!(
                    "call-rate: `{}`/{} expected ~{expected:.1} invocations, measured \
                     {measured:.0} (tolerance {tol:.1})",
                    svc.name, app.services[i].endpoints[e].name,
                ));
            }
        }
    }
    Ok(())
}

/// User-domain busy time vs measured invocations × static demand.
fn check_compute_conservation(g: &GenSpec, r: &DiffRun) -> Result<(), String> {
    let app = r.sim.app();
    let cluster = g.cluster();
    for (i, svc) in app.services.iter().enumerate() {
        let st = r.sim.service_stats(ServiceId(i as u32));
        // Homogeneous cluster: every instance sees the same speed factor.
        let sf = cluster.machines[0].core.speed_factor(&svc.profile);
        let expected: f64 = svc
            .endpoints
            .iter()
            .enumerate()
            .map(|(e, ep)| st.endpoint_count(e) as f64 * user_demand_ns(&ep.script) * sf)
            .sum();
        let measured = st.time_ns[ExecDomain::User.index()];
        let tol = 0.05 * expected + 100_000.0;
        if (measured - expected).abs() > tol {
            return Err(format!(
                "compute: `{}` user-domain busy {measured:.0} ns vs predicted \
                 {expected:.0} ns (tolerance {tol:.0})",
                svc.name,
            ));
        }
    }
    Ok(())
}

/// Mean user-domain compute nanoseconds per invocation, branch-weighted.
fn user_demand_ns(steps: &[dsb_core::Step]) -> f64 {
    use dsb_core::Step;
    let mut total = 0.0;
    for s in steps {
        match s {
            Step::Compute { ns, domain } if *domain == ExecDomain::User => total += ns.mean(),
            Step::Branch { p, then, els } => {
                total += p * user_demand_ns(then) + (1.0 - p) * user_demand_ns(els);
            }
            Step::CacheLookup { hit, then, els, .. } => {
                total += hit * user_demand_ns(then) + (1.0 - hit) * user_demand_ns(els);
            }
            _ => {}
        }
    }
    total
}

/// Static bottleneck utilization vs how long the run took to drain,
/// judged with two one-sided bounds so each verdict only uses the bound
/// that is conservative for it:
///
/// * **calm** — the *upper* bound (wait-inclusive hold + net-inclusive
///   machine load) is ≤ 0.8 everywhere ⇒ the makespan must stay near
///   the injection horizon;
/// * **overload** — the *lower* bound (no-wait service-path hold floor,
///   or the machine load, which has no wait term) is ≥ 1.25 somewhere ⇒
///   the drain must overrun the horizon, by work conservation;
/// * anything in between is the documented gray zone — no assertion.
///
/// The split matters because the differential workload is smooth
/// (evenly spaced arrivals, near-constant service times): real queueing
/// sits far below the M/M/k estimate, so a wait-inflated ρ of 1.3 can
/// drain cleanly, while a service-path floor of 1.3 cannot.
fn check_saturation(r: &DiffRun) -> Result<(), String> {
    let rho_m = r.model.max_machine_utilization_with_net();
    let upper = rho_m.max(r.model.max_tier_utilization_with_hold());
    let lower = rho_m.max(r.model.max_tier_utilization_hold_floor());
    let makespan_s = r.sim.now().as_nanos() as f64 / 1e9;
    if upper <= 0.8 && makespan_s > r.horizon_s * 1.3 + 0.5 {
        return Err(format!(
            "saturation: static bottleneck utilization {upper:.2} predicts a clean \
             drain, but the run took {makespan_s:.2}s against a {:.2}s horizon",
            r.horizon_s
        ));
    }
    if lower >= 1.25 && makespan_s < r.horizon_s * 1.05 {
        return Err(format!(
            "saturation: static bottleneck floor utilization {lower:.2} predicts \
             overload, but the run drained in {makespan_s:.2}s within the {:.2}s \
             horizon",
            r.horizon_s
        ));
    }
    Ok(())
}

/// Partition tiers fed well-spread keys must split load across shards.
fn check_shard_split(g: &GenSpec, r: &DiffRun) -> Result<(), String> {
    let app = r.sim.app().clone();
    for (i, svc) in app.services.iter().enumerate() {
        if svc.lb != dsb_core::LbPolicy::Partition {
            continue;
        }
        let counts: Vec<u64> = r
            .sim
            .instances_of(ServiceId(i as u32))
            .into_iter()
            .map(|inst| r.sim.instance_served(inst))
            .collect();
        let total: u64 = counts.iter().sum();
        let shards = counts.len() as u64;
        if shards < 2 || total < 32 * shards {
            continue; // too few requests to judge the split
        }
        let mean = total as f64 / shards as f64;
        let max = *counts.iter().max().expect("non-empty") as f64;
        let min = *counts.iter().min().expect("non-empty") as f64;
        if max > 2.0 * mean || min < mean / 4.0 {
            return Err(format!(
                "shards: `{}` served {counts:?} across {shards} shards under \
                 golden-ratio keys (mean {mean:.0}); the partition router is skewed \
                 (spec {g:?})",
                svc.name,
            ));
        }
    }
    Ok(())
}

/// The DSB009/DSB011 verdicts must be consistent with the public
/// [`CapacityModel`] the diagnostics are documented to be built on —
/// this pins the checks-to-model extraction against drift.
fn check_verdicts(g: &GenSpec, r: &DiffRun) -> Result<(), String> {
    let app = g.build();
    let entry = app.mix.entries()[0].entry;
    let cluster = g.cluster();
    let diags = Analyzer::new(&app.spec)
        .entry(app.frontend)
        .offered(entry, g.qps())
        .cluster(&cluster)
        .run();
    let tier_error = diags
        .iter()
        .any(|d| d.code == Code::TierOverload && d.severity == Severity::Error);
    let model_tier_error = r.model.max_tier_utilization() >= 1.0;
    if tier_error != model_tier_error {
        return Err(format!(
            "verdict: DSB009 error={tier_error} but model max tier utilization \
             {:.3} says {model_tier_error}",
            r.model.max_tier_utilization()
        ));
    }
    let machine_error = diags
        .iter()
        .any(|d| d.code == Code::MachineOvercommit && d.severity == Severity::Error);
    let model_machine_error = r.model.max_machine_utilization() >= 1.0;
    if machine_error != model_machine_error {
        return Err(format!(
            "verdict: DSB011 error={machine_error} but model max machine \
             utilization {:.3} says {model_machine_error}",
            r.model.max_machine_utilization()
        ));
    }
    // Parallel-safety oracles: a generated spec must never carry a
    // circular wait (DSB014), a sub-loopback lookahead edge (DSB015),
    // or an inverted cache-aside write order (DSB016) — the generator
    // only emits layered DAGs, single-rack clusters, and read-only
    // load, so any hit means a check (or the generator) regressed.
    for d in &diags {
        if matches!(
            d.code,
            Code::WaitCycle | Code::ZeroLookahead | Code::WriteVisibilityRace
        ) {
            return Err(format!("verdict: generated spec tripped {d} (spec {g:?})"));
        }
    }
    Ok(())
}

/// A deterministic one-line-per-service summary of the differential run,
/// used by the seed-replay property: two runs of the same spec must
/// produce byte-identical summaries.
pub fn run_summary(g: &GenSpec) -> String {
    let r = match run(g) {
        Ok(r) => r,
        Err(e) => return format!("error: {e}"),
    };
    let app = r.sim.app();
    let mut out = String::new();
    for (i, svc) in app.services.iter().enumerate() {
        let st = r.sim.service_stats(ServiceId(i as u32));
        out.push_str(&format!(
            "{}: inv={} user_ns={:.0}\n",
            svc.name,
            st.invocations,
            st.time_ns[ExecDomain::User.index()]
        ));
    }
    let completed = r
        .sim
        .request_stats(RequestType(0))
        .map_or(0, |st| st.completed);
    out.push_str(&format!(
        "events={} completed={} makespan_ns={}\n",
        r.sim.events_processed(),
        completed,
        r.sim.now().as_nanos()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_passes_every_oracle() {
        check_spec(&GenSpec::default()).expect("default spec must agree");
    }

    #[test]
    fn summary_is_deterministic() {
        let g = GenSpec::sample(11);
        assert_eq!(run_summary(&g), run_summary(&g));
    }

    #[test]
    fn saturated_spec_overruns_the_horizon() {
        // Heavy handlers on a single-core machine, so 1.5x utilization
        // is reachable inside the clamped qps range.
        let mut g = GenSpec {
            work_us: 300.0,
            machines: 1,
            cores: 1,
            ..GenSpec::default()
        };
        g.qps = g.qps_for_utilization(1.5);
        let r = run(&g).expect("runs");
        let util = r
            .model
            .max_tier_utilization_hold_floor()
            .max(r.model.max_machine_utilization_with_net());
        assert!(util >= 1.25, "calibration should overload: {util}");
        check_spec(&g).expect("oracles must hold under saturation too");
    }
}
