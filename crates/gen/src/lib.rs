//! # dsb-gen — seeded app synthesis + differential static-vs-sim testing
//!
//! Coverage beyond the eight hand-curated applications: a seeded
//! generator that emits arbitrary *valid* application graphs, and a
//! differential harness that holds the static analyzer's predictions
//! against a fixed-seed simulation of every generated spec.
//!
//! * [`GenSpec`] — a shrinkable, clamp-validated description of a
//!   synthetic app (tier depth/width/fan-out, per-tier compute,
//!   cache/DB shard counts, pool sizes) plus its cluster. Extends
//!   `dsb_apps::synthetic::LayeredSpec` (a `From` impl maps it over)
//!   with store tiers, cluster shape, and calibrated offered load.
//! * [`clone`] — Ditto-style fitting: measure a [`TierSignature`]
//!   (per-tier latency/fan-out) from spans and fit a spec to it.
//! * [`diff`] — the differential oracles: call-rate propagation,
//!   compute conservation, saturation verdicts, shard balance, and
//!   analyzer-verdict consistency, each with stated tolerances.
//!
//! The `dsb-diff` binary sweeps seeds (default 256, `DIFF_SEEDS=N` for
//! offline ≥1000-spec runs) and shrinks any disagreement to a minimal
//! reproducing spec via `dsb-testkit`, reported with its replay seed.

#![warn(missing_docs)]

pub mod clone;
pub mod diff;
pub mod spec;

pub use clone::TierSignature;
pub use diff::{check_spec, run_summary};
pub use spec::GenSpec;
