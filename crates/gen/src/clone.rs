//! Ditto-style application cloning: fit a [`GenSpec`] to the per-tier
//! signature of a measured trace.
//!
//! Ditto (PAPERS.md) argues a representative synthetic app only needs to
//! match the *per-tier profile* of the original — how much work each
//! tier does and how wide it fans out — not its exact code. Here the
//! signature is measured from Dapper-style spans: group a trace's spans
//! by tier depth (root = 0), record mean application-compute time and
//! mean child-span count per depth, and [`GenSpec::fit`] builds a
//! generator spec whose clamped knobs reproduce that shape.

use std::collections::BTreeMap;

use dsb_core::{RequestType, Simulation};
use dsb_simcore::SimTime;
use dsb_trace::{Span, SpanId};

use crate::spec::GenSpec;

/// Per-tier latency/fan-out profile of an application, root tier first.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSignature {
    /// Mean application-compute microseconds per span at each depth.
    pub work_us: Vec<f64>,
    /// Mean child-span count per span at each depth (the observed
    /// fan-out degree; the deepest tier's entry is 0).
    pub fanout: Vec<f64>,
}

impl TierSignature {
    /// Measures the signature of a set of traces (one `Vec<Span>` per
    /// end-to-end request). Traces without a root span are skipped.
    pub fn measure<'a>(traces: impl IntoIterator<Item = &'a Vec<Span>>) -> TierSignature {
        // Per-depth accumulators: (total app ns, spans, total children).
        let mut acc: BTreeMap<usize, (f64, u64, u64)> = BTreeMap::new();
        for spans in traces {
            let by_id: BTreeMap<SpanId, &Span> = spans.iter().map(|s| (s.id, s)).collect();
            let mut children: BTreeMap<SpanId, u64> = BTreeMap::new();
            for s in spans {
                if let Some(p) = s.parent {
                    *children.entry(p).or_insert(0) += 1;
                }
            }
            for s in spans {
                let mut depth = 0usize;
                let mut cur = s;
                while let Some(p) = cur.parent.and_then(|p| by_id.get(&p)) {
                    depth += 1;
                    cur = p;
                    if depth > 64 {
                        break; // defensive: malformed parent chain
                    }
                }
                let e = acc.entry(depth).or_insert((0.0, 0, 0));
                e.0 += s.app_time.as_nanos() as f64;
                e.1 += 1;
                e.2 += children.get(&s.id).copied().unwrap_or(0);
            }
        }
        let depths = acc.keys().max().map_or(0, |&d| d + 1);
        let mut work_us = vec![0.0; depths];
        let mut fanout = vec![0.0; depths];
        for (d, (ns, spans, kids)) in acc {
            if spans > 0 {
                work_us[d] = ns / spans as f64 / 1_000.0;
                fanout[d] = kids as f64 / spans as f64;
            }
        }
        TierSignature { work_us, fanout }
    }

    /// Number of tiers the signature observed.
    pub fn tiers(&self) -> usize {
        self.work_us.len()
    }
}

impl GenSpec {
    /// Fits a spec to a target signature (clone mode): tier count, width
    /// (the root's fan-out), inner fan-out, and per-tier compute come
    /// from the signature; pool/cluster knobs keep their defaults. The
    /// clamped ranges still apply, so a signature deeper or wider than
    /// the generator's envelope fits to the nearest expressible spec.
    pub fn fit(sig: &TierSignature) -> GenSpec {
        let tiers = sig.tiers().max(2);
        let inner: Vec<f64> = sig
            .fanout
            .iter()
            .skip(1)
            .take(tiers.saturating_sub(2))
            .copied()
            .collect();
        let inner_mean = if inner.is_empty() {
            1.0
        } else {
            inner.iter().sum::<f64>() / inner.len() as f64
        };
        GenSpec {
            depth: (tiers - 1) as u32,
            width: sig.fanout.first().copied().unwrap_or(1.0).round() as u32,
            fanout: inner_mean.round().max(1.0) as u32,
            tier_work_us: sig.work_us.clone(),
            ..GenSpec::default()
        }
    }
}

/// Simulates `g` with full trace sampling and measures its signature:
/// `n` requests injected at the spec's offered rate, fixed seed.
pub fn measure_spec(g: &GenSpec, n: u64, seed: u64) -> TierSignature {
    let app = g.build();
    let entry = app.mix.entries()[0].entry;
    let mut cluster = g.cluster();
    cluster.trace_sample_prob = 1.0;
    let mut sim = Simulation::new(app.spec.clone(), cluster, seed);
    let qps = g.qps();
    for j in 0..n {
        let at = SimTime::from_nanos((j as f64 * 1e9 / qps) as u64);
        let key = (j + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        sim.inject(at, entry, RequestType(0), 256, key);
    }
    sim.run_until_idle();
    let traces: Vec<&Vec<Span>> = sim.collector().sampled_traces().map(|(_, s)| s).collect();
    TierSignature::measure(traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Ditto acceptance check: measure a target app, fit a clone,
    /// and the clone's signature must match the target's tier for tier.
    #[test]
    fn clone_reproduces_the_tier_signature() {
        let target = GenSpec {
            depth: 3,
            width: 2,
            fanout: 2,
            work_us: 80.0,
            tier_work_us: vec![40.0, 120.0, 60.0, 30.0],
            qps: 50,
            ..GenSpec::default()
        };
        let sig = measure_spec(&target, 60, 1);
        assert_eq!(sig.tiers(), 4, "front + 3 logic tiers");

        let mut clone = GenSpec::fit(&sig);
        clone.qps = target.qps;
        assert_eq!(clone.depth(), target.depth());
        assert_eq!(clone.width(), target.width());
        assert_eq!(clone.fanout(), target.fanout());

        let clone_sig = measure_spec(&clone, 60, 2);
        assert_eq!(clone_sig.tiers(), sig.tiers());
        for d in 0..sig.tiers() {
            let (a, b) = (sig.work_us[d], clone_sig.work_us[d]);
            assert!(
                (a - b).abs() <= 0.25 * a.max(b) + 5.0,
                "tier {d} work diverged: target {a:.1}us clone {b:.1}us"
            );
            assert!(
                (sig.fanout[d] - clone_sig.fanout[d]).abs() <= 0.5,
                "tier {d} fanout diverged: {} vs {}",
                sig.fanout[d],
                clone_sig.fanout[d]
            );
        }
    }

    #[test]
    fn signature_of_empty_traces_is_empty() {
        let sig = TierSignature::measure(std::iter::empty());
        assert_eq!(sig.tiers(), 0);
        // Fitting a degenerate signature still yields a buildable spec.
        GenSpec::fit(&sig).build();
    }

    #[test]
    fn store_tiers_show_up_as_extra_depth() {
        let g = GenSpec {
            depth: 1,
            width: 1,
            cache_shards: 2,
            db_shards: 0,
            qps: 50,
            ..GenSpec::default()
        };
        let sig = measure_spec(&g, 40, 3);
        // front -> t1 -> cache: three observed tiers.
        assert_eq!(sig.tiers(), 3);
        assert!(sig.fanout[1] >= 0.99, "leaf calls the cache every time");
    }
}
