//! `dsb-diff` — the offline differential sweep.
//!
//! Generates `DIFF_SEEDS` random application specs (default 256) and
//! runs every static-vs-simulation oracle against each. On the first
//! disagreement the spec is shrunk to a minimal reproduction and
//! printed with the seed that replays it; the process exits non-zero.
//!
//! ```text
//! DIFF_SEEDS=1000 cargo run --release --bin dsb-diff
//! DSB_PROP_SEED=<seed> cargo run --release --bin dsb-diff   # replay one case
//! ```

use dsb_gen::{check_spec, GenSpec};
use dsb_testkit::runner::{check, Config};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {raw:?}")),
        Err(_) => default,
    }
}

fn main() {
    let seeds = env_u64("DIFF_SEEDS", 256);
    let mut cfg = Config::from_env();
    cfg.cases = seeds.clamp(1, u32::MAX as u64) as u32;
    let total = if cfg.replay.is_some() { 1 } else { cfg.cases };
    println!("dsb-diff: sweeping {total} generated spec(s)");
    match check(&cfg, |rng| GenSpec::sample(rng.next_u64()), check_spec) {
        Ok(()) => {
            println!("dsb-diff: {total} spec(s), zero static-vs-sim disagreements");
        }
        Err(ce) => {
            eprintln!("{}", ce.report("dsb-diff"));
            eprintln!(
                "replay this sweep case with: DSB_PROP_SEED={} cargo run --release --bin dsb-diff",
                ce.case_seed
            );
            std::process::exit(1);
        }
    }
}
