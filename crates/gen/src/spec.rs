//! [`GenSpec`]: the seeded, shrinkable description of a synthetic
//! application *and* the cluster it runs on.
//!
//! Every field is a plain scalar and every combination of field values
//! builds a valid app: [`GenSpec::build`] clamps each knob into the
//! range the paper's measurements span, so the testkit's greedy shrinker
//! can mutate fields freely without ever producing a spec the builder
//! rejects. [`GenSpec::sample`] draws a spec from a single `u64` seed —
//! the seed alone replays any generated application byte for byte.

use dsb_apps::BuiltApp;
use dsb_core::{AppBuilder, ClusterSpec, EndpointRef, RequestType, ServiceId, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, Rng, SimDuration};
use dsb_testkit::{gen, Shrink};
use dsb_uarch::{ExecDomain, UarchProfile};
use dsb_workload::QueryMix;

use dsb_apps::synthetic::LayeredSpec;

/// A generated application + cluster, as plain shrinkable scalars.
///
/// Raw fields may hold any value; the clamped accessors (`depth()`,
/// `width()`, …) define the value actually built. Ranges follow the
/// paper's measured envelope: tier depth 1–4, width 1–4, per-handler
/// compute 0.5–500 µs, worker pools 1–64, store tiers of 2–4 shards,
/// machines of 1–8 cores.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Logic tiers between the front-end and the stores (clamped 1–4).
    pub depth: u32,
    /// Services per logic tier (clamped 1–4).
    pub width: u32,
    /// Parallel calls each service makes into the tier below (clamped
    /// 1–6, tighter for deep graphs so a single request's fan-out tree
    /// stays bounded).
    pub fanout: u32,
    /// Compute per handler in reference-core microseconds (clamped
    /// 0.5–500).
    pub work_us: f64,
    /// Per-tier compute overrides for clone mode, indexed 0 = front-end,
    /// 1..=depth = logic tiers; missing entries fall back to `work_us`.
    pub tier_work_us: Vec<f64>,
    /// Workers per logic-service instance (clamped 1–64).
    pub workers: u32,
    /// Cache shard count; values below 2 mean "no cache tier" (cap 4).
    pub cache_shards: u32,
    /// Database shard count; values below 2 mean "no DB tier" (cap 4).
    pub db_shards: u32,
    /// Cache hit ratio in percent (clamped 0–100).
    pub hit_pct: u32,
    /// Machines in the cluster (clamped 1–3).
    pub machines: u32,
    /// Cores per machine (clamped 1–8).
    pub cores: u32,
    /// Offered load in requests per second (clamped 1–5000).
    pub qps: u32,
}

impl Default for GenSpec {
    fn default() -> Self {
        GenSpec {
            depth: 2,
            width: 2,
            fanout: 2,
            work_us: 50.0,
            tier_work_us: Vec::new(),
            workers: 16,
            cache_shards: 0,
            db_shards: 0,
            hit_pct: 90,
            machines: 2,
            cores: 4,
            qps: 100,
        }
    }
}

impl GenSpec {
    /// Clamped tier depth.
    pub fn depth(&self) -> u32 {
        self.depth.clamp(1, 4)
    }

    /// Clamped tier width.
    pub fn width(&self) -> u32 {
        self.width.clamp(1, 4)
    }

    /// Clamped fan-out. Deep graphs multiply fan-out per tier, so the
    /// cap shrinks with depth to bound one request's invocation tree
    /// (≤ width × fanout^depth invocations).
    pub fn fanout(&self) -> u32 {
        let cap = match self.depth() {
            1 => 6,
            2 => 4,
            _ => 2,
        };
        self.fanout.clamp(1, cap)
    }

    /// Clamped per-instance worker count.
    pub fn workers(&self) -> u32 {
        self.workers.clamp(1, 64)
    }

    /// Cache shard count; 0 means no cache tier.
    pub fn cache_shards(&self) -> u32 {
        if self.cache_shards < 2 {
            0
        } else {
            self.cache_shards.min(4)
        }
    }

    /// DB shard count; 0 means no DB tier.
    pub fn db_shards(&self) -> u32 {
        if self.db_shards < 2 {
            0
        } else {
            self.db_shards.min(4)
        }
    }

    /// Clamped cache hit ratio in [0, 1].
    pub fn hit_ratio(&self) -> f64 {
        self.hit_pct.min(100) as f64 / 100.0
    }

    /// Clamped machine count.
    pub fn machines(&self) -> u32 {
        self.machines.clamp(1, 3)
    }

    /// Clamped cores per machine.
    pub fn cores(&self) -> u32 {
        self.cores.clamp(1, 8)
    }

    /// Clamped offered load (req/s).
    pub fn qps(&self) -> f64 {
        self.qps.clamp(1, 5000) as f64
    }

    /// Compute for tier `t` (0 = front-end, 1..=depth = logic tiers) in
    /// microseconds, honouring clone-mode overrides.
    pub fn tier_work_us(&self, t: usize) -> f64 {
        self.tier_work_us
            .get(t)
            .copied()
            .unwrap_or(self.work_us)
            .clamp(0.5, 500.0)
    }

    /// Draws a random spec from `seed`. The spec is a pure function of
    /// the seed: the same seed always yields the same spec.
    ///
    /// Offered load is calibrated rather than sampled directly: a target
    /// bottleneck utilization is drawn from [0.05, 1.6] and converted to
    /// qps through the analyzer's [`CapacityModel`], so the sweep covers
    /// both clearly-underloaded and clearly-saturated specs instead of
    /// whatever a blind qps range happens to hit.
    ///
    /// [`CapacityModel`]: dsb_analyzer::CapacityModel
    pub fn sample(seed: u64) -> GenSpec {
        let mut rng = Rng::new(seed);
        let depth = gen::u32_in(&mut rng, 1, 5);
        let mut spec = GenSpec {
            depth,
            width: gen::u32_in(&mut rng, 1, 5),
            fanout: gen::u32_in(&mut rng, 1, 7),
            work_us: gen::f64_in(&mut rng, 5.0, 300.0),
            tier_work_us: Vec::new(),
            workers: *gen::choice(&mut rng, &[4, 8, 16, 32, 64]),
            cache_shards: gen::u32_in(&mut rng, 0, 5),
            db_shards: gen::u32_in(&mut rng, 0, 5),
            hit_pct: gen::u32_in(&mut rng, 50, 101),
            machines: gen::u32_in(&mut rng, 1, 4),
            cores: gen::u32_in(&mut rng, 2, 9),
            qps: 1,
        };
        let target_util = gen::f64_in(&mut rng, 0.05, 1.6);
        spec.qps = spec.qps_for_utilization(target_util);
        spec
    }

    /// The qps that drives the static bottleneck (worker pool —
    /// downstream hold time included for blocking tiers — or machine
    /// core budget — network-message processing included — whichever
    /// saturates first) to `target` utilization, clamped to the valid
    /// qps range. Computed at 1 qps and scaled, so the nonlinear
    /// queue-wait share of hold time is evaluated at light load: actual
    /// utilization lands at or slightly above `target`.
    pub fn qps_for_utilization(&self, target: f64) -> u32 {
        let app = self.build();
        let offered = vec![(app.mix.entries()[0].entry, 1.0)];
        let cluster = self.cluster();
        let util_per_qps =
            dsb_analyzer::CapacityModel::compute(&app.spec, &offered, Some(&cluster))
                .map(|m| {
                    m.max_tier_utilization_with_hold()
                        .max(m.max_machine_utilization_with_net())
                })
                .unwrap_or(0.0);
        if util_per_qps <= 0.0 {
            return 100;
        }
        (target / util_per_qps).clamp(1.0, 5000.0).round() as u32
    }

    /// The cluster this spec deploys on: `machines()` homogeneous Xeon
    /// servers trimmed to `cores()` cores each.
    pub fn cluster(&self) -> ClusterSpec {
        let mut cluster = ClusterSpec::xeon_cluster(self.machines(), 1);
        for m in &mut cluster.machines {
            m.cores = self.cores();
        }
        cluster
    }

    /// Builds the application graph.
    ///
    /// Topology: an event-driven front-end fans across the whole first
    /// logic tier; each logic service computes and issues `fanout()`
    /// parallel RPCs into the tier below (rotating over the tier so
    /// every service is reached); the deepest tier talks to the store
    /// tiers — a cache-aside lookup when both cache and DB exist, a
    /// direct call when only one does. All RPC is multiplexed Thrift,
    /// store tiers are partitioned by key across their shards.
    pub fn build(&self) -> BuiltApp {
        let mut app = AppBuilder::new("gen");

        // Store tiers first so leaves can reference them.
        let db = (self.db_shards() > 0).then(|| {
            let id = app
                .service("db")
                .profile(UarchProfile::mongodb())
                .blocking()
                .workers(16)
                .instances(self.db_shards())
                .protocol(Protocol::ThriftRpc)
                .lb(dsb_core::LbPolicy::Partition)
                .build();
            app.endpoint(
                id,
                "find",
                Dist::constant(2048.0),
                vec![
                    Step::Compute {
                        ns: Dist::constant(80_000.0),
                        domain: ExecDomain::User,
                    },
                    Step::Io {
                        ns: Dist::constant(400_000.0),
                    },
                ],
            )
        });
        let cache = (self.cache_shards() > 0).then(|| {
            let id = app
                .service("cache")
                .profile(UarchProfile::memcached())
                .event_driven()
                .workers(16)
                .instances(self.cache_shards())
                .protocol(Protocol::ThriftRpc)
                .lb(dsb_core::LbPolicy::Partition)
                .build();
            app.endpoint(
                id,
                "get",
                Dist::constant(1024.0),
                vec![Step::Compute {
                    ns: Dist::constant(8_000.0),
                    domain: ExecDomain::User,
                }],
            )
        });
        let store_steps: Vec<Step> = match (cache, db) {
            (Some(get), Some(find)) => vec![Step::cache_lookup(
                get,
                self.hit_ratio(),
                vec![Step::call(find, 128.0)],
            )],
            (Some(get), None) => vec![Step::call(get, 128.0)],
            (None, Some(find)) => vec![Step::call(find, 128.0)],
            (None, None) => Vec::new(),
        };

        // Logic tiers, leaves up (tier index depth..1, 0 is the front).
        let (depth, width, fanout) = (self.depth(), self.width(), self.fanout());
        let mut below: Vec<EndpointRef> = Vec::new();
        for tier in (1..=depth).rev() {
            let mut this_tier = Vec::new();
            for w in 0..width {
                let svc = app
                    .service(&format!("t{tier}-s{w}"))
                    .workers(self.workers())
                    .build();
                let work_ns = self.tier_work_us(tier as usize) * 1_000.0;
                let mut steps = vec![Step::Compute {
                    ns: Dist::constant(work_ns),
                    domain: ExecDomain::User,
                }];
                if below.is_empty() {
                    steps.extend(store_steps.iter().cloned());
                } else {
                    let calls: Vec<(EndpointRef, Dist)> = (0..fanout)
                        .map(|k| {
                            let idx = ((w + k) % below.len() as u32) as usize;
                            (below[idx], Dist::constant(256.0))
                        })
                        .collect();
                    steps.push(Step::ParCall { calls });
                }
                this_tier.push(app.endpoint(svc, "op", Dist::constant(1024.0), steps));
            }
            below = this_tier;
        }

        let front = app.service("front").event_driven().workers(64).build();
        let front_ns = self.tier_work_us(0) * 1_000.0;
        let calls: Vec<(EndpointRef, Dist)> =
            below.iter().map(|&e| (e, Dist::constant(256.0))).collect();
        let entry = app.endpoint(
            front,
            "root",
            Dist::constant(4096.0),
            vec![
                Step::Compute {
                    ns: Dist::constant(front_ns),
                    domain: ExecDomain::User,
                },
                Step::ParCall { calls },
            ],
        );

        let spec = app.build();
        let order: Vec<ServiceId> = (0..spec.service_count())
            .map(|i| ServiceId(i as u32))
            .collect();
        BuiltApp {
            mix: QueryMix::single(entry, RequestType(0), 256.0),
            qos_p99: SimDuration::from_millis(50),
            frontend: front,
            spec,
            order,
        }
    }
}

/// A [`LayeredSpec`] is the uniform-tier special case of a [`GenSpec`]:
/// same depth/width/fanout/work/workers, no store tiers, on the default
/// two-machine cluster.
impl From<LayeredSpec> for GenSpec {
    fn from(l: LayeredSpec) -> GenSpec {
        GenSpec {
            depth: l.depth,
            width: l.width,
            fanout: l.fanout,
            work_us: l.work_us,
            workers: l.workers,
            cache_shards: 0,
            db_shards: 0,
            ..GenSpec::default()
        }
    }
}

/// Field-wise shrinking: every candidate flips exactly one knob toward
/// its simplest value, so a minimized counterexample reads as "the
/// default spec except for the fields that matter".
impl Shrink for GenSpec {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        macro_rules! field {
            ($f:ident) => {
                for cand in self.$f.shrink().into_iter().take(3) {
                    let mut g = self.clone();
                    g.$f = cand;
                    out.push(g);
                }
            };
        }
        field!(depth);
        field!(width);
        field!(fanout);
        field!(cache_shards);
        field!(db_shards);
        field!(tier_work_us);
        field!(work_us);
        field!(workers);
        field!(hit_pct);
        field!(machines);
        field!(cores);
        field!(qps);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_builds_a_valid_app() {
        for seed in 0..50 {
            let g = GenSpec::sample(seed);
            let app = g.build(); // panics on an invalid graph
            let expected = 1
                + g.depth() * g.width()
                + u32::from(g.cache_shards() > 0)
                + u32::from(g.db_shards() > 0);
            assert_eq!(app.spec.service_count() as u32, expected, "seed {seed}");
        }
    }

    #[test]
    fn sample_is_a_pure_function_of_the_seed() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(GenSpec::sample(seed), GenSpec::sample(seed));
        }
    }

    #[test]
    fn clamps_make_every_field_value_valid() {
        // The all-zero and all-max corners both build.
        let zero = GenSpec {
            depth: 0,
            width: 0,
            fanout: 0,
            work_us: 0.0,
            tier_work_us: vec![0.0],
            workers: 0,
            cache_shards: 0,
            db_shards: 0,
            hit_pct: 0,
            machines: 0,
            cores: 0,
            qps: 0,
        };
        assert_eq!(zero.build().spec.service_count(), 2);
        assert_eq!(zero.qps(), 1.0);
        let max = GenSpec {
            depth: u32::MAX,
            width: u32::MAX,
            fanout: u32::MAX,
            work_us: f64::MAX,
            tier_work_us: vec![f64::MAX; 9],
            workers: u32::MAX,
            cache_shards: u32::MAX,
            db_shards: u32::MAX,
            hit_pct: u32::MAX,
            machines: u32::MAX,
            cores: u32::MAX,
            qps: u32::MAX,
        };
        let app = max.build();
        assert_eq!(app.spec.service_count() as u32, 1 + 4 * 4 + 2);
        assert_eq!(max.cluster().machines.len(), 3);
    }

    #[test]
    fn shrink_candidates_all_build() {
        let g = GenSpec::sample(7);
        for cand in g.shrink() {
            cand.build();
        }
    }

    #[test]
    fn qps_calibration_hits_the_target_band() {
        let mut g = GenSpec::sample(3);
        g.qps = g.qps_for_utilization(0.5);
        let app = g.build();
        let offered = vec![(app.mix.entries()[0].entry, g.qps())];
        let m = dsb_analyzer::CapacityModel::compute(&app.spec, &offered, Some(&g.cluster()))
            .expect("generated graphs are acyclic");
        let util = m
            .max_tier_utilization_with_hold()
            .max(m.max_machine_utilization_with_net());
        assert!(
            (0.3..0.7).contains(&util),
            "calibrated util {util} should be near 0.5"
        );
    }

    #[test]
    fn layered_spec_round_trips() {
        let l = LayeredSpec::default();
        let g = GenSpec::from(l);
        assert_eq!(g.depth(), l.depth);
        assert_eq!(g.width(), l.width);
        assert_eq!(g.build().spec.service_count() as u32, 1 + l.depth * l.width);
    }
}
