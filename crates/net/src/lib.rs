//! # dsb-net — network substrate
//!
//! Models the parts of the network stack the paper's findings hinge on:
//!
//! * **Protocol processing costs** ([`Protocol`], [`MsgCosts`]): every
//!   message charges kernel-domain CPU cycles at the sender and receiver
//!   (TCP processing, interrupts) plus library-domain cycles
//!   (de/serialization). This is how "microservices spend 36.3 % of time in
//!   network processing" (Fig. 3) and the kernel share of Fig. 14 emerge.
//! * **Propagation latency** ([`Fabric`], [`Zone`]): one-way delays between
//!   machines in the same rack, across racks, to clients, and over the
//!   cloud↔edge wireless link that dominates the Swarm service (Fig. 9).
//! * **NIC transmit queues** ([`Nic`]): a fluid FIFO with finite bandwidth;
//!   at high load queues build up and tails inflate (Fig. 15).
//! * **FPGA offload** ([`FpgaOffload`]): the bump-in-the-wire accelerator of
//!   Fig. 16 — kernel network-processing cycles are divided by a 10–68×
//!   factor and removed from the host cores.
//!
//! Costs are expressed in *reference-core nanoseconds* (Xeon at nominal
//! frequency); `dsb-core` rescales them by the executing core's speed
//! factor, so a wimpy core also processes packets more slowly, as the paper
//! observes.

#![warn(missing_docs)]

mod fabric;
mod nic;
mod protocol;

pub use fabric::{Fabric, FabricConfig, Zone};
pub use nic::Nic;
pub use protocol::{FpgaOffload, MsgCosts, Protocol};
