//! Communication protocols and their per-message processing costs.

/// The wire protocol used on a dependency edge between two services.
///
/// The paper's suite mixes Apache Thrift RPCs (Social Network, Media,
/// Banking, everything downstream of php-fpm), RESTful HTTP (E-commerce,
/// Swarm edge↔cloud), FastCGI (nginx → php-fpm), and raw IPC between
/// processes co-located on a drone. Each has a distinct cost profile, and
/// HTTP/1 additionally has blocking-connection semantics (modelled by the
/// connection pools in `dsb-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Apache-Thrift-style binary RPC: cheap framing, multiplexed
    /// connections.
    ThriftRpc,
    /// HTTP/1.x REST: text parsing, one outstanding request per connection.
    Http1,
    /// FastCGI between a web server and a php-fpm pool.
    Fcgi,
    /// Same-host inter-process communication (drone-local services).
    Ipc,
}

impl Protocol {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::ThriftRpc => "thrift-rpc",
            Protocol::Http1 => "http/1",
            Protocol::Fcgi => "fastcgi",
            Protocol::Ipc => "ipc",
        }
    }

    /// Whether callers must hold one connection per outstanding request
    /// (HTTP/1 head-of-line blocking; see Fig. 17 case B).
    pub fn blocking_connections(self) -> bool {
        matches!(self, Protocol::Http1 | Protocol::Fcgi)
    }

    /// Whether the protocol only works between co-located processes
    /// (raw IPC cannot span a network hop, let alone a zone boundary).
    pub fn same_host_only(self) -> bool {
        matches!(self, Protocol::Ipc)
    }

    /// Per-message processing costs for a payload of `bytes`, on the
    /// reference core, in nanoseconds.
    pub fn costs(self, bytes: u64) -> MsgCosts {
        let kb = bytes as f64 / 1024.0;
        match self {
            Protocol::ThriftRpc => MsgCosts {
                send_kernel_ns: 7_000.0 + 450.0 * kb,
                recv_kernel_ns: 8_000.0 + 550.0 * kb,
                send_libs_ns: 1_500.0 + 250.0 * kb,
                recv_libs_ns: 1_800.0 + 300.0 * kb,
            },
            Protocol::Http1 => MsgCosts {
                send_kernel_ns: 9_000.0 + 500.0 * kb,
                recv_kernel_ns: 10_000.0 + 600.0 * kb,
                send_libs_ns: 4_000.0 + 700.0 * kb,
                recv_libs_ns: 5_000.0 + 900.0 * kb,
            },
            Protocol::Fcgi => MsgCosts {
                send_kernel_ns: 8_000.0 + 480.0 * kb,
                recv_kernel_ns: 9_000.0 + 560.0 * kb,
                send_libs_ns: 2_500.0 + 400.0 * kb,
                recv_libs_ns: 3_000.0 + 450.0 * kb,
            },
            Protocol::Ipc => MsgCosts {
                send_kernel_ns: 1_200.0 + 120.0 * kb,
                recv_kernel_ns: 1_200.0 + 120.0 * kb,
                send_libs_ns: 300.0 + 60.0 * kb,
                recv_libs_ns: 300.0 + 60.0 * kb,
            },
        }
    }
}

/// CPU costs of moving one message, split by endpoint and execution
/// domain, in reference-core nanoseconds.
///
/// Kernel components model TCP/interrupt processing; library components
/// model de/serialization (Thrift/JSON). `dsb-core` charges each component
/// on the corresponding machine's cores, in the corresponding
/// `ExecDomain` bucket (see `dsb-uarch`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MsgCosts {
    /// Kernel-domain nanoseconds at the sender.
    pub send_kernel_ns: f64,
    /// Kernel-domain nanoseconds at the receiver.
    pub recv_kernel_ns: f64,
    /// Library-domain (serialization) nanoseconds at the sender.
    pub send_libs_ns: f64,
    /// Library-domain (deserialization) nanoseconds at the receiver.
    pub recv_libs_ns: f64,
}

impl MsgCosts {
    /// Total network-processing nanoseconds across both endpoints.
    pub fn total_ns(&self) -> f64 {
        self.send_kernel_ns + self.recv_kernel_ns + self.send_libs_ns + self.recv_libs_ns
    }

    /// Kernel-only nanoseconds (the part the FPGA can absorb).
    pub fn kernel_ns(&self) -> f64 {
        self.send_kernel_ns + self.recv_kernel_ns
    }
}

/// The Fig. 16 bump-in-the-wire FPGA: offloads the TCP stack.
///
/// With offload enabled, the kernel network-processing component of every
/// message no longer executes on host cores; it becomes a fixed-function
/// pipeline delay of `kernel_ns / speedup`. Library-domain serialization
/// stays on the host (the accelerator sits between NIC and ToR switch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaOffload {
    /// Whether the accelerator is present.
    pub enabled: bool,
    /// Network-processing speedup over native TCP (the paper measures
    /// 10–68×).
    pub speedup: f64,
}

impl Default for FpgaOffload {
    fn default() -> Self {
        FpgaOffload {
            enabled: false,
            speedup: 1.0,
        }
    }
}

impl FpgaOffload {
    /// No acceleration; kernel costs execute on host cores.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An accelerator with the given network-processing speedup.
    ///
    /// # Panics
    ///
    /// Panics if `speedup < 1.0`.
    pub fn with_speedup(speedup: f64) -> Self {
        assert!(speedup >= 1.0, "speedup must be >= 1");
        FpgaOffload {
            enabled: true,
            speedup,
        }
    }

    /// Splits a kernel cost into (host-core ns, fixed-pipeline-delay ns).
    pub fn apply(&self, kernel_ns: f64) -> (f64, f64) {
        if self.enabled {
            (0.0, kernel_ns / self.speedup)
        } else {
            (kernel_ns, 0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_cheaper_than_http() {
        for bytes in [128, 1024, 64 * 1024] {
            let rpc = Protocol::ThriftRpc.costs(bytes);
            let http = Protocol::Http1.costs(bytes);
            assert!(
                rpc.total_ns() < http.total_ns(),
                "RPC must be cheaper at {bytes}B"
            );
        }
    }

    #[test]
    fn ipc_is_cheapest() {
        let ipc = Protocol::Ipc.costs(1024);
        for p in [Protocol::ThriftRpc, Protocol::Http1, Protocol::Fcgi] {
            assert!(ipc.total_ns() < p.costs(1024).total_ns());
        }
    }

    #[test]
    fn costs_grow_with_size() {
        for p in [
            Protocol::ThriftRpc,
            Protocol::Http1,
            Protocol::Fcgi,
            Protocol::Ipc,
        ] {
            assert!(p.costs(1 << 20).total_ns() > p.costs(64).total_ns());
        }
    }

    #[test]
    fn blocking_semantics() {
        assert!(Protocol::Http1.blocking_connections());
        assert!(Protocol::Fcgi.blocking_connections());
        assert!(!Protocol::ThriftRpc.blocking_connections());
        assert!(!Protocol::Ipc.blocking_connections());
    }

    #[test]
    fn only_ipc_is_host_local() {
        assert!(Protocol::Ipc.same_host_only());
        for p in [Protocol::ThriftRpc, Protocol::Http1, Protocol::Fcgi] {
            assert!(!p.same_host_only());
        }
    }

    #[test]
    fn offload_moves_kernel_cost_off_host() {
        let off = FpgaOffload::with_speedup(50.0);
        let (host, pipeline) = off.apply(10_000.0);
        assert_eq!(host, 0.0);
        assert!((pipeline - 200.0).abs() < 1e-9);
        let (host, pipeline) = FpgaOffload::disabled().apply(10_000.0);
        assert_eq!(host, 10_000.0);
        assert_eq!(pipeline, 0.0);
    }

    #[test]
    #[should_panic]
    fn offload_below_one_rejected() {
        FpgaOffload::with_speedup(0.5);
    }

    #[test]
    fn names_nonempty() {
        for p in [
            Protocol::ThriftRpc,
            Protocol::Http1,
            Protocol::Fcgi,
            Protocol::Ipc,
        ] {
            assert!(!p.name().is_empty());
        }
    }
}
