//! Propagation latency between machine locations.

use dsb_simcore::{Rng, SimDuration};

/// Where a machine (or client) sits in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Zone {
    /// A server in datacenter rack `n`.
    Rack(u16),
    /// An edge device (drone) reachable over the wireless link.
    Edge,
    /// The external client population.
    Client,
}

/// One-way latency parameters of the fabric.
///
/// Defaults model the paper's testbed: a 10 GbE ToR-switched cluster, plus
/// a multi-millisecond wireless hop to the drone swarm and a small WAN hop
/// for clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Loopback / same-machine delivery, ns.
    pub loopback_ns: u64,
    /// One-way latency between two servers in the same rack, ns.
    pub intra_rack_ns: u64,
    /// One-way latency between racks through the ToR/aggregation, ns.
    pub cross_rack_ns: u64,
    /// One-way latency from clients to the datacenter, ns.
    pub client_ns: u64,
    /// One-way latency of the cloud↔edge wireless link, ns.
    pub wireless_ns: u64,
    /// Relative jitter (std-dev as a fraction of the base latency).
    pub jitter_frac: f64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            loopback_ns: 2_000,
            intra_rack_ns: 25_000,
            cross_rack_ns: 45_000,
            client_ns: 120_000,
            wireless_ns: 6_000_000,
            jitter_frac: 0.1,
        }
    }
}

/// Computes message propagation delays between zones.
///
/// # Example
///
/// ```
/// use dsb_net::{Fabric, Zone};
/// use dsb_simcore::Rng;
///
/// let fabric = Fabric::default();
/// let mut rng = Rng::new(1);
/// let dc = fabric.delay(Zone::Rack(0), Zone::Rack(1), &mut rng);
/// let edge = fabric.delay(Zone::Rack(0), Zone::Edge, &mut rng);
/// assert!(edge > dc * 10); // the wireless hop dominates
/// ```
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    config: FabricConfig,
}

impl Fabric {
    /// Creates a fabric with the given latency parameters.
    pub fn new(config: FabricConfig) -> Self {
        Fabric { config }
    }

    /// The configured parameters.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Delivery latency between two processes on the *same machine*
    /// (zones identify racks, not machines, so callers that know both
    /// endpoints share a host should use this instead of
    /// [`Fabric::base_delay`]).
    pub fn loopback(&self) -> SimDuration {
        SimDuration::from_nanos(self.config.loopback_ns)
    }

    /// Base (jitter-free) one-way latency between two zones.
    pub fn base_delay(&self, from: Zone, to: Zone) -> SimDuration {
        let c = &self.config;
        let ns = match (from, to) {
            (Zone::Edge, Zone::Edge) => c.loopback_ns,
            (Zone::Rack(a), Zone::Rack(b)) => {
                if a == b {
                    c.intra_rack_ns
                } else {
                    c.cross_rack_ns
                }
            }
            (Zone::Client, Zone::Rack(_)) | (Zone::Rack(_), Zone::Client) => c.client_ns,
            (Zone::Edge, Zone::Rack(_)) | (Zone::Rack(_), Zone::Edge) => c.wireless_ns,
            (Zone::Client, Zone::Edge) | (Zone::Edge, Zone::Client) => c.wireless_ns + c.client_ns,
            (Zone::Client, Zone::Client) => c.loopback_ns,
        };
        SimDuration::from_nanos(ns)
    }

    /// One-way latency with multiplicative jitter (truncated normal).
    pub fn delay(&self, from: Zone, to: Zone, rng: &mut Rng) -> SimDuration {
        let base = self.base_delay(from, to).as_nanos() as f64;
        let jittered = base * (1.0 + self.config.jitter_frac * rng.normal()).max(0.2);
        SimDuration::from_nanos(jittered as u64)
    }

    /// Guaranteed *minimum* one-way latency between two zones: the
    /// smallest value [`Fabric::delay`] can ever return for this pair.
    ///
    /// The jitter multiplier is truncated at 0.2, so with jitter the
    /// floor is `0.2 × base`; without jitter it is the base itself. This
    /// is the lookahead bound a conservative parallel engine may rely on
    /// — a shard can safely advance its local clock by this amount
    /// before synchronizing with a peer shard in the other zone.
    pub fn min_delay(&self, from: Zone, to: Zone) -> SimDuration {
        let base = self.base_delay(from, to).as_nanos() as f64;
        let floor = if self.config.jitter_frac > 0.0 {
            base * 0.2
        } else {
            base
        };
        SimDuration::from_nanos(floor as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_machine_is_loopback() {
        let f = Fabric::default();
        assert_eq!(f.loopback(), SimDuration::from_nanos(2_000));
        // Same *rack* still pays the switch hop:
        assert_eq!(
            f.base_delay(Zone::Rack(3), Zone::Rack(3)),
            SimDuration::from_nanos(25_000)
        );
        assert_eq!(
            f.base_delay(Zone::Client, Zone::Client),
            SimDuration::from_nanos(2_000)
        );
    }

    #[test]
    fn ordering_of_hops() {
        let f = Fabric::default();
        let intra = f.base_delay(Zone::Rack(0), Zone::Rack(0));
        let cross = f.base_delay(Zone::Rack(0), Zone::Rack(1));
        let client = f.base_delay(Zone::Client, Zone::Rack(0));
        let edge = f.base_delay(Zone::Rack(0), Zone::Edge);
        assert!(intra < cross && cross < client && client < edge);
    }

    #[test]
    fn delay_is_symmetric_on_average() {
        let f = Fabric::default();
        assert_eq!(
            f.base_delay(Zone::Edge, Zone::Rack(1)),
            f.base_delay(Zone::Rack(1), Zone::Edge)
        );
    }

    #[test]
    fn min_delay_is_a_true_floor() {
        let f = Fabric::default();
        let pairs = [
            (Zone::Rack(0), Zone::Rack(0)),
            (Zone::Rack(0), Zone::Rack(1)),
            (Zone::Edge, Zone::Edge),
            (Zone::Rack(0), Zone::Edge),
            (Zone::Client, Zone::Rack(0)),
        ];
        let mut rng = Rng::new(9);
        for (a, bz) in pairs {
            let floor = f.min_delay(a, bz);
            let base = f.base_delay(a, bz);
            assert_eq!(floor.as_nanos() * 5, base.as_nanos(), "0.2 x base");
            for _ in 0..5_000 {
                assert!(f.delay(a, bz, &mut rng) >= floor);
            }
        }
        // Without jitter the floor is the base latency itself.
        let crisp = Fabric::new(FabricConfig {
            jitter_frac: 0.0,
            ..FabricConfig::default()
        });
        assert_eq!(
            crisp.min_delay(Zone::Rack(0), Zone::Rack(1)),
            crisp.base_delay(Zone::Rack(0), Zone::Rack(1))
        );
    }

    #[test]
    fn jitter_stays_positive_and_near_base() {
        let f = Fabric::default();
        let mut rng = Rng::new(5);
        let base = f.base_delay(Zone::Rack(0), Zone::Rack(1)).as_nanos() as f64;
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let d = f.delay(Zone::Rack(0), Zone::Rack(1), &mut rng);
            assert!(d > SimDuration::ZERO);
            sum += d.as_nanos() as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - base).abs() / base < 0.02, "mean {mean} base {base}");
    }
}
