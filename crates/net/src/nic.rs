//! A machine's NIC transmit path, modelled as a fluid FIFO.

use dsb_simcore::{SimDuration, SimTime};

/// A network interface with finite transmit bandwidth.
///
/// Frames are serialized through the link in FIFO order: a message enqueued
/// at `now` finishes transmitting at `max(now, queue_drain) + size/bw`.
/// This is the mechanism behind the paper's observation that at high load
/// "long queues build up in the NICs" and network processing becomes a much
/// larger share of tail latency (Fig. 15).
///
/// # Example
///
/// ```
/// use dsb_net::Nic;
/// use dsb_simcore::SimTime;
///
/// let mut nic = Nic::new(10.0); // 10 Gb/s
/// let t0 = SimTime::ZERO;
/// let d1 = nic.transmit(t0, 125_000); // 1 Mb => 100us on the wire
/// let d2 = nic.transmit(t0, 125_000); // queues behind the first
/// assert_eq!(d1.as_micros_f64(), 100.0);
/// assert_eq!(d2.as_micros_f64(), 200.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Nic {
    bits_per_ns: f64,
    next_free: SimTime,
    bytes_sent: u64,
    messages_sent: u64,
}

impl Nic {
    /// Creates a NIC with the given bandwidth in Gb/s.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    pub fn new(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        Nic {
            bits_per_ns: gbps, // 1 Gb/s == 1 bit/ns
            next_free: SimTime::ZERO,
            bytes_sent: 0,
            messages_sent: 0,
        }
    }

    /// Enqueues a message of `bytes` at time `now`; returns the delay from
    /// `now` until the last bit is on the wire (queueing + transmission).
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimDuration {
        let tx_ns = (bytes as f64 * 8.0 / self.bits_per_ns).ceil() as u64;
        let start = self.next_free.max(now);
        let done = start + SimDuration::from_nanos(tx_ns);
        self.next_free = done;
        self.bytes_sent += bytes;
        self.messages_sent += 1;
        done - now
    }

    /// Current queueing delay a new message would see before transmission
    /// starts.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free - now
    }

    /// Total bytes accepted for transmission.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total messages accepted for transmission.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_scales_with_size() {
        let mut nic = Nic::new(10.0);
        let d = nic.transmit(SimTime::ZERO, 12_500); // 100 kb => 10us
        assert_eq!(d, SimDuration::from_micros(10));
    }

    #[test]
    fn fifo_queueing() {
        let mut nic = Nic::new(1.0); // 1 Gb/s
        let t = SimTime::ZERO;
        let d1 = nic.transmit(t, 1_250); // 10us
        let d2 = nic.transmit(t, 1_250); // waits 10us
        assert_eq!(d1, SimDuration::from_micros(10));
        assert_eq!(d2, SimDuration::from_micros(20));
        assert_eq!(nic.backlog(t), SimDuration::from_micros(20));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut nic = Nic::new(1.0);
        nic.transmit(SimTime::ZERO, 1_250);
        let later = SimTime::from_micros(50);
        assert_eq!(nic.backlog(later), SimDuration::ZERO);
        let d = nic.transmit(later, 1_250);
        assert_eq!(d, SimDuration::from_micros(10));
    }

    #[test]
    fn counters_accumulate() {
        let mut nic = Nic::new(10.0);
        nic.transmit(SimTime::ZERO, 100);
        nic.transmit(SimTime::ZERO, 200);
        assert_eq!(nic.bytes_sent(), 300);
        assert_eq!(nic.messages_sent(), 2);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        Nic::new(0.0);
    }
}
