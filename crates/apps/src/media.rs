//! §3.3 Media Service: browsing movie information, reviewing, rating,
//! renting, and streaming movies — 38 unique microservices (Fig. 5).
//!
//! Clients hit the nginx load balancer, php-fpm orchestrates; movie
//! metadata lives in a sharded MySQL database, reviews in
//! memcached+MongoDB, movie files on NFS served by an nginx-hls streaming
//! tier; payment authentication gates rentals.

use std::sync::Arc;

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_leaf, add_memcached, add_mongodb, add_mysql, BuiltApp};

/// Browse a movie page (plot, cast, photos, reviews).
pub const BROWSE_MOVIE: RequestType = RequestType(0);
/// Full-text movie search.
pub const SEARCH_MOVIE: RequestType = RequestType(1);
/// Write a review (login, compose, store, update rating).
pub const COMPOSE_REVIEW: RequestType = RequestType(2);
/// Rent a movie (payment authentication + stream start).
pub const RENT_MOVIE: RequestType = RequestType(3);
/// Stream a movie chunk over nginx-hls.
pub const STREAM_CHUNK: RequestType = RequestType(4);
/// Log in.
pub const LOGIN: RequestType = RequestType(5);

/// Builds the Media Service application.
pub fn media_service() -> BuiltApp {
    let mut app = AppBuilder::new("media-service");

    // ---- storage tier ------------------------------------------------------
    // The review tier takes the browse fan-out (hot, 3 shards); the
    // remaining stores run the 2-shard floor.
    let (_mc_rev, mc_rev_get, mc_rev_set) = add_memcached(&mut app, "memcached-reviews", 3);
    let (_mg_rev, mg_rev_find, mg_rev_ins) = add_mongodb(&mut app, "mongodb-reviews", 2);
    let (_mc_user, mc_user_get, mc_user_set) = add_memcached(&mut app, "memcached-users", 2);
    let (_mg_user, mg_user_find, mg_user_ins) = add_mongodb(&mut app, "mongodb-users", 2);
    let (_mc_plot, mc_plot_get, mc_plot_set) = add_memcached(&mut app, "memcached-plot", 2);
    let (_mg_plot, mg_plot_find, mg_plot_ins) = add_mongodb(&mut app, "mongodb-plot", 2);
    let (_mc_rent, mc_rent_get, mc_rent_set) = add_memcached(&mut app, "memcached-rentals", 2);
    let (_mg_rent, mg_rent_find, mg_rent_ins) = add_mongodb(&mut app, "mongodb-rentals", 2);
    let (_mysql, mysql_query) = add_mysql(&mut app, "mysql-moviedb", 2);

    // NFS file store for the actual movie files (I/O only).
    let nfs = app
        .service("nfs")
        .profile(UarchProfile::mongodb())
        .workers(64)
        .instances(2)
        .build();
    let nfs_read = app.endpoint(
        nfs,
        "read",
        Dist::log_normal(512.0 * 1024.0, 0.5),
        vec![Step::Io {
            ns: Dist::log_normal(900_000.0, 0.6),
        }],
    );

    let xapian = app
        .service("xapian-index")
        .profile(UarchProfile::search())
        .workers(8)
        .instances(3)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let xapian_q = app.endpoint(
        xapian,
        "query",
        Dist::log_normal(4096.0, 0.6),
        vec![Step::work_us(350.0)],
    );

    // ---- mid tier ------------------------------------------------------------
    let (_unique, unique_run) = add_leaf(
        &mut app,
        "uniqueID",
        UarchProfile::tiny_service(),
        1,
        15.0,
        64.0,
    );
    let (_movie_id, movie_id_run) = add_leaf(
        &mut app,
        "movieID",
        UarchProfile::tiny_service(),
        1,
        25.0,
        64.0,
    );
    let (_text, text_run) = add_leaf(
        &mut app,
        "text",
        UarchProfile::microservice_default(),
        1,
        55.0,
        512.0,
    );
    let (_ads, ads_run) = add_leaf(
        &mut app,
        "ads",
        UarchProfile::managed_runtime(),
        1,
        250.0,
        2048.0,
    );
    let (_reco, reco_run) = add_leaf(
        &mut app,
        "recommender",
        UarchProfile::recommender(),
        2,
        1500.0,
        1024.0,
    );

    let rating = app.service("rating").workers(16).build();
    let rating_run = app.endpoint(
        rating,
        "rate",
        Dist::constant(64.0),
        vec![
            Step::work_us(30.0),
            Step::call(mc_rev_set, 128.0),
            Step::Branch {
                p: 0.25,
                then: Arc::new(vec![Step::call(mg_rev_ins, 128.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let user_info = app.service("userInfo").workers(16).build();
    let user_info_get = app.endpoint(
        user_info,
        "get",
        Dist::log_normal(1024.0, 0.4),
        vec![
            Step::work_us(30.0),
            Step::cache_lookup(
                mc_user_get,
                0.92,
                vec![
                    Step::call(mg_user_find, 128.0),
                    Step::call(mc_user_set, 512.0),
                ],
            ),
        ],
    );

    let login = app.service("login").workers(16).build();
    let login_run = app.endpoint(
        login,
        "auth",
        Dist::constant(256.0),
        vec![
            Step::work_us(80.0),
            Step::cache_lookup(
                mc_user_get,
                0.8,
                vec![
                    Step::call(mg_user_find, 128.0),
                    Step::call(mc_user_set, 512.0),
                    // Persist the last-login timestamp on the profile.
                    Step::call(mg_user_ins, 128.0),
                ],
            ),
        ],
    );

    let plot = app.service("plot").workers(16).build();
    let plot_get = app.endpoint(
        plot,
        "get",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(25.0),
            Step::cache_lookup(
                mc_plot_get,
                0.9,
                vec![
                    Step::call(mg_plot_find, 128.0),
                    Step::call(mc_plot_set, 4096.0),
                    // A few misses find a stale summary and regenerate it.
                    Step::Branch {
                        p: 0.05,
                        then: Arc::new(vec![Step::call(mg_plot_ins, 4096.0)]),
                        els: Arc::new(vec![]),
                    },
                ],
            ),
        ],
    );

    let (_thumbnail, thumbnail_run) = add_leaf(
        &mut app,
        "thumbnail",
        UarchProfile::vision(),
        1,
        180.0,
        32.0 * 1024.0,
    );
    let (_photos, photos_run) = add_leaf(
        &mut app,
        "photos",
        UarchProfile::vision(),
        1,
        220.0,
        128.0 * 1024.0,
    );
    let (_videos, videos_run) = add_leaf(
        &mut app,
        "videos",
        UarchProfile::vision(),
        1,
        320.0,
        64.0 * 1024.0,
    );

    let (_subtitles, subtitles_run) = add_leaf(
        &mut app,
        "subtitles",
        UarchProfile::tiny_service(),
        1,
        60.0,
        16.0 * 1024.0,
    );
    let (_trailer, trailer_run) = add_leaf(
        &mut app,
        "trailer",
        UarchProfile::vision(),
        1,
        150.0,
        64.0 * 1024.0,
    );

    let cast = app.service("castInfo").workers(16).build();
    let cast_get = app.endpoint(
        cast,
        "get",
        Dist::log_normal(2048.0, 0.4),
        vec![Step::work_us(40.0), Step::call(mysql_query, 256.0)],
    );

    let movie_info = app.service("movieInfo").workers(32).instances(2).build();
    let movie_info_get = app.endpoint(
        movie_info,
        "get",
        Dist::log_normal(4096.0, 0.4),
        vec![Step::work_us(45.0), Step::call(mysql_query, 256.0)],
    );

    let movie_review = app.service("movieReview").workers(16).instances(2).build();
    let movie_review_get = app.endpoint(
        movie_review,
        "get",
        Dist::log_normal(8192.0, 0.4),
        vec![
            Step::work_us(40.0),
            Step::cache_lookup(
                mc_rev_get,
                0.85,
                vec![
                    Step::call(mg_rev_find, 256.0),
                    Step::call(mc_rev_set, 4096.0),
                ],
            ),
        ],
    );

    let user_review = app.service("userReview").workers(16).build();
    let user_review_get = app.endpoint(
        user_review,
        "get",
        Dist::log_normal(8192.0, 0.4),
        vec![
            Step::work_us(35.0),
            Step::cache_lookup(
                mc_rev_get,
                0.85,
                vec![
                    Step::call(mg_rev_find, 256.0),
                    Step::call(mc_rev_set, 4096.0),
                ],
            ),
        ],
    );

    let review_storage = app.service("reviewStorage").workers(16).build();
    let review_store = app.endpoint(
        review_storage,
        "store",
        Dist::constant(128.0),
        vec![
            Step::work_us(35.0),
            // Durable write first, then the cache update: the reverse
            // order opens a write-visibility window (DSB016).
            Step::call(mg_rev_ins, 2048.0),
            Step::call(mc_rev_set, 2048.0),
        ],
    );

    let compose_review = app.service("composeReview").workers(32).build();
    let compose_review_run = app.endpoint(
        compose_review,
        "compose",
        Dist::constant(256.0),
        vec![
            Step::work_us(60.0),
            Step::ParCall {
                calls: vec![
                    (unique_run, Dist::constant(64.0)),
                    (movie_id_run, Dist::constant(64.0)),
                    (text_run, Dist::constant(1024.0)),
                ],
            },
            Step::call(review_store, 2048.0),
            Step::call(rating_run, 128.0),
        ],
    );

    let payment = app
        .service("payment")
        .profile(UarchProfile::managed_runtime())
        .workers(16)
        .build();
    let payment_auth = app.endpoint(
        payment,
        "authorize",
        Dist::constant(512.0),
        vec![
            Step::work_us(200.0),
            // External payment-gateway round trip.
            Step::Io {
                ns: Dist::log_normal(4_000_000.0, 0.5),
            },
            Step::call(mg_rent_ins, 256.0),
        ],
    );

    let rent = app.service("rent").workers(16).build();
    let rent_run = app.endpoint(
        rent,
        "rent",
        Dist::constant(512.0),
        vec![
            Step::work_us(60.0),
            Step::call(user_info_get, 128.0),
            Step::call(payment_auth, 512.0),
            Step::call(mc_rent_set, 128.0),
        ],
    );

    let streaming = app
        .service("video-streaming")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(256)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(1024)
        .build();
    let stream_chunk = app.endpoint(
        streaming,
        "chunk",
        Dist::log_normal(1024.0 * 1024.0, 0.3),
        vec![
            Step::work_us(45.0),
            // Entitlement check: rental state is cached, falling through
            // to the rental store for cold sessions.
            Step::cache_lookup(
                mc_rent_get,
                0.95,
                vec![
                    Step::call(mg_rent_find, 128.0),
                    Step::call(mc_rent_set, 128.0),
                ],
            ),
            Step::call(subtitles_run, 64.0),
            Step::call(nfs_read, 128.0),
        ],
    );

    let search = app
        .service("search")
        .profile(UarchProfile::search())
        .workers(16)
        .build();
    let search_q = app.endpoint(
        search,
        "query",
        Dist::log_normal(8192.0, 0.5),
        vec![
            Step::work_us(120.0),
            Step::ParCall {
                calls: vec![
                    (xapian_q, Dist::constant(256.0)),
                    (xapian_q, Dist::constant(256.0)),
                ],
            },
        ],
    );

    let compose_page = app.service("composePage").workers(32).instances(2).build();
    let compose_page_run = app.endpoint(
        compose_page,
        "compose",
        Dist::log_normal(48.0 * 1024.0, 0.3),
        vec![
            Step::work_us(80.0),
            Step::ParCall {
                calls: vec![
                    (movie_info_get, Dist::constant(128.0)),
                    (plot_get, Dist::constant(128.0)),
                    (cast_get, Dist::constant(128.0)),
                    (thumbnail_run, Dist::constant(128.0)),
                    (photos_run, Dist::constant(128.0)),
                    (videos_run, Dist::constant(128.0)),
                    (movie_review_get, Dist::constant(128.0)),
                    (trailer_run, Dist::constant(128.0)),
                ],
            },
            Step::ParCall {
                calls: vec![
                    (ads_run, Dist::constant(128.0)),
                    (reco_run, Dist::constant(128.0)),
                ],
            },
        ],
    );

    // ---- front tier -----------------------------------------------------------
    let php = app
        .service("php-fpm")
        .profile(UarchProfile::managed_runtime())
        .blocking()
        .workers(64)
        .instances(4)
        .protocol(Protocol::Fcgi)
        .conn_limit(256)
        .build();
    let php_browse = app.endpoint(
        php,
        "browseMovie",
        Dist::log_normal(48.0 * 1024.0, 0.3),
        vec![Step::work_us(80.0), Step::call(compose_page_run, 256.0)],
    );
    let php_search = app.endpoint(
        php,
        "search",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![Step::work_us(70.0), Step::call(search_q, 256.0)],
    );
    let php_review = app.endpoint(
        php,
        "composeReview",
        Dist::constant(512.0),
        vec![
            Step::work_us(90.0),
            Step::call(login_run, 256.0),
            Step::call(compose_review_run, 2048.0),
            Step::call(user_review_get, 128.0),
        ],
    );
    let php_rent = app.endpoint(
        php,
        "rentMovie",
        Dist::constant(1024.0),
        vec![
            Step::work_us(80.0),
            Step::call(login_run, 256.0),
            Step::call(rent_run, 512.0),
        ],
    );
    let php_login = app.endpoint(
        php,
        "login",
        Dist::constant(256.0),
        vec![Step::work_us(50.0), Step::call(login_run, 256.0)],
    );

    let nginx = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(512)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(2048)
        .build();
    let ng_browse = app.endpoint(
        nginx,
        "browseMovie",
        Dist::log_normal(48.0 * 1024.0, 0.3),
        vec![Step::work_us(25.0), Step::call(php_browse, 384.0)],
    );
    let ng_search = app.endpoint(
        nginx,
        "search",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![Step::work_us(25.0), Step::call(php_search, 384.0)],
    );
    let ng_review = app.endpoint(
        nginx,
        "composeReview",
        Dist::constant(512.0),
        vec![Step::work_us(25.0), Step::call(php_review, 2048.0)],
    );
    let ng_rent = app.endpoint(
        nginx,
        "rentMovie",
        Dist::constant(1024.0),
        vec![Step::work_us(25.0), Step::call(php_rent, 512.0)],
    );
    let ng_login = app.endpoint(
        nginx,
        "login",
        Dist::constant(256.0),
        vec![Step::work_us(25.0), Step::call(php_login, 384.0)],
    );
    let ng_stream = app.endpoint(
        nginx,
        "streamChunk",
        Dist::log_normal(1024.0 * 1024.0, 0.3),
        vec![Step::work_us(20.0), Step::call(stream_chunk, 256.0)],
    );

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(ng_browse, BROWSE_MOVIE, 45.0, Dist::constant(384.0));
    mix.add(ng_search, SEARCH_MOVIE, 10.0, Dist::constant(256.0));
    mix.add(
        ng_review,
        COMPOSE_REVIEW,
        15.0,
        Dist::log_normal(2048.0, 0.4),
    );
    mix.add(ng_rent, RENT_MOVIE, 8.0, Dist::constant(512.0));
    mix.add(ng_stream, STREAM_CHUNK, 17.0, Dist::constant(256.0));
    mix.add(ng_login, LOGIN, 5.0, Dist::constant(256.0));

    BuiltApp {
        frontend: nginx,
        qos_p99: SimDuration::from_millis(35),
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_38_services() {
        let app = media_service();
        assert_eq!(app.spec.service_count(), 38);
        for name in [
            "nginx",
            "php-fpm",
            "mysql-moviedb",
            "nfs",
            "video-streaming",
            "payment",
        ] {
            assert!(app.spec.service_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn rent_path_includes_payment() {
        let app = media_service();
        let rent = app.service("rent");
        let payment = app.service("payment");
        assert!(app.spec.edges().contains(&(rent, payment)));
    }

    #[test]
    fn streaming_reads_nfs() {
        let app = media_service();
        let streaming = app.service("video-streaming");
        let nfs = app.service("nfs");
        assert!(app.spec.edges().contains(&(streaming, nfs)));
    }
}
