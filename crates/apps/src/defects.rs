//! Deliberately broken deployments for the analyzer's golden report.
//!
//! Each constructor here builds a defect the per-tier checks
//! (DSB002/DSB003/DSB009) cannot see — placement-level shapes for
//! DSB011/DSB012 ([`colocated_encoders`], [`burst_chain`]),
//! parallel-safety shapes for DSB014/DSB015/DSB016 ([`wait_loop`],
//! [`edge_gossip`], [`stale_refill`]), and the fault-tolerance shape for
//! DSB017 ([`bare_cache`]) — pinning those diagnostics to
//! `tests/goldens/analyzer_report.txt` the same way `twotier(64, 2)`
//! pins DSB002.

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Zone;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_memcached, add_mongodb, singles::REQUEST, BuiltApp};

/// DSB011 demo: a gateway with four ~2 ms encode stages pinned to its
/// machine (`CoLocate`, the sidecar/DaemonSet shape). At 5500 qps each
/// stage keeps ~11 of its 16 workers busy — comfortably inside every
/// per-tier check — but the four stages plus the gateway demand ~45
/// cores of the one 40-core machine they share.
pub fn colocated_encoders() -> BuiltApp {
    let mut app = AppBuilder::new("colocated_encoders");
    let gateway = app
        .service("gateway")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let mut script = vec![Step::work_us(200.0)];
    for i in 0..4 {
        let stage = app
            .service(&format!("encoder-{i}"))
            .profile(UarchProfile::microservice_default())
            .blocking()
            .workers(16)
            .colocate_with(gateway)
            .build();
        let ep = app.endpoint(
            stage,
            "encode",
            Dist::constant(1024.0),
            vec![Step::work_us(2000.0)],
        );
        script.push(Step::call(ep, 16.0 * 1024.0));
    }
    let entry = app.endpoint(gateway, "upload", Dist::constant(256.0), script);
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 16.0 * 1024.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![gateway],
        frontend: gateway,
        spec,
    }
}

/// DSB012 demo: a timeline front-end fanning out 16 parallel writes,
/// each of which lands on a 4-worker follower store behind 2 ms of I/O.
/// Statically everything passes — the fan fits `fanout-worker`'s 16
/// workers (DSB003 quiet) and the store runs at 4 % utilization (DSB009
/// quiet) — but the fan-out synchronizes 16 arrivals over 4 workers, so
/// the calibration run measures milliseconds of queueing where Erlang-C
/// admits microseconds.
pub fn burst_chain() -> BuiltApp {
    let mut app = AppBuilder::new("burst_chain");
    let store = app
        .service("follower-db")
        .profile(UarchProfile::mongodb())
        .blocking()
        .workers(4)
        .build();
    let write = app.endpoint(
        store,
        "write",
        Dist::constant(64.0),
        vec![Step::Io {
            ns: Dist::constant(2_000_000.0),
        }],
    );
    let fanout = app
        .service("fanout-worker")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(16)
        .build();
    let push = app.endpoint(
        fanout,
        "push",
        Dist::constant(64.0),
        vec![Step::call(write, 512.0)],
    );
    let front = app
        .service("timeline-frontend")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let entry = app.endpoint(
        front,
        "post",
        Dist::constant(256.0),
        vec![
            Step::work_us(100.0),
            Step::FanCall {
                target: push,
                req_bytes: Dist::constant(512.0),
                n: Dist::constant(16.0),
            },
        ],
    );
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 256.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![store, fanout, front],
        frontend: front,
        spec,
    }
}

/// DSB014 demo: an order tier and a payment tier, both blocking Thrift
/// with fixed pools, calling each other — charging an order calls back
/// into the order tier to mark it paid. Every edge of the loop holds a
/// worker across its downstream call, so once both pools fill with
/// requests awaiting each other nothing can complete: DSB001 names the
/// cycle, DSB014 certifies the deadlock.
pub fn wait_loop() -> BuiltApp {
    let mut app = AppBuilder::new("wait_loop");
    let order = app
        .service("order-svc")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(8)
        .build();
    let payment = app
        .service("payment-svc")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(8)
        .build();
    let mark_paid = app.endpoint(
        order,
        "markPaid",
        Dist::constant(64.0),
        vec![Step::work_us(40.0)],
    );
    let charge = app.endpoint(
        payment,
        "charge",
        Dist::constant(128.0),
        vec![Step::work_us(120.0), Step::call(mark_paid, 256.0)],
    );
    let place = app.endpoint(
        order,
        "place",
        Dist::constant(256.0),
        vec![Step::work_us(80.0), Step::call(charge, 512.0)],
    );
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(place, REQUEST, 512.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![order, payment],
        frontend: order,
        spec,
    }
}

/// DSB015 demo: a two-tier gossip pair pinned to the edge zone, two
/// instances each spread across drones. The Edge↔Edge link floor
/// (0.2 × 2 µs = 400 ns) is below the 2 µs loopback epoch a parallel
/// engine needs per sync, so the relay→peer hop certifies almost no
/// lookahead — every per-tier check stays comfortable.
pub fn edge_gossip() -> BuiltApp {
    let mut app = AppBuilder::new("edge_gossip");
    let peer = app
        .service("swarm-peer")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(2)
        .instances(2)
        .zone(Zone::Edge)
        .build();
    let share = app.endpoint(
        peer,
        "share",
        Dist::constant(256.0),
        vec![Step::work_us(30.0)],
    );
    let relay = app
        .service("telemetry-relay")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(2)
        .instances(2)
        .zone(Zone::Edge)
        .build();
    let entry = app.endpoint(
        relay,
        "gossip",
        Dist::constant(128.0),
        vec![Step::work_us(25.0), Step::call(share, 512.0)],
    );
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 256.0),
        qos_p99: SimDuration::from_millis(100),
        order: vec![peer, relay],
        frontend: relay,
        spec,
    }
}

/// DSB016 demo: a profile front-end whose read path consults the cache
/// shards before the durable store (refilling on a miss), while the
/// write path updates the cache *before* the durable insert. Between
/// those two writes a reader that misses the cache refills it from
/// pre-write state and the update is lost — the window a sharded engine
/// stretches to a full lookahead epoch.
pub fn stale_refill() -> BuiltApp {
    let mut app = AppBuilder::new("stale_refill");
    let (mc, mc_get, mc_set) = add_memcached(&mut app, "memcached-profile", 2);
    let (mg, mg_find, mg_ins) = add_mongodb(&mut app, "mongodb-profile", 2);
    let front = app
        .service("profile-frontend")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let read = app.endpoint(
        front,
        "view",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(60.0),
            Step::cache_lookup(
                mc_get,
                0.9,
                vec![Step::call(mg_find, 256.0), Step::call(mc_set, 2048.0)],
            ),
        ],
    );
    let write = app.endpoint(
        front,
        "update",
        Dist::constant(128.0),
        // The defect: cache set first, durable insert second.
        vec![
            Step::work_us(90.0),
            Step::call(mc_set, 1024.0),
            Step::call(mg_ins, 1024.0),
        ],
    );
    let spec = app.build();
    let mut mix = QueryMix::new();
    mix.add(read, REQUEST, 9.0, Dist::constant(256.0));
    mix.add(write, RequestType(1), 1.0, Dist::constant(512.0));
    BuiltApp {
        mix,
        qos_p99: SimDuration::from_millis(50),
        order: vec![mc, mg, front],
        frontend: front,
        spec,
    }
}

/// DSB017 demo: a catalog front-end whose only cache tier runs a single
/// memcached instance. Capacity-wise it is comfortable — 16 workers at
/// ~6 µs a lookup absorb the load many times over — but one cache-loss
/// or machine-crash fault evicts the entire cached key space, and every
/// lookup in the app refills cold against the backing store at once.
pub fn bare_cache() -> BuiltApp {
    let mut app = AppBuilder::new("bare_cache");
    let mc = app
        .service("memcached-catalog")
        .profile(UarchProfile::memcached())
        .event_driven()
        .workers(16)
        .build();
    let mc_get = app.endpoint(
        mc,
        "get",
        Dist::log_normal(1024.0, 0.8),
        vec![Step::Compute {
            ns: Dist::log_normal(6_000.0, 0.3),
            domain: dsb_uarch::ExecDomain::User,
        }],
    );
    let (mg, mg_find, _mg_ins) = add_mongodb(&mut app, "mongodb-catalog", 2);
    let front = app
        .service("catalog-frontend")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let entry = app.endpoint(
        front,
        "browse",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(50.0),
            Step::cache_lookup(mc_get, 0.85, vec![Step::call(mg_find, 256.0)]),
        ],
    );
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 256.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![mc, mg, front],
        frontend: front,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::PlacementHint;

    #[test]
    fn encoders_ride_the_gateway() {
        let app = colocated_encoders();
        let gateway = app.service("gateway");
        for i in 0..4 {
            let stage = app.spec.service(app.service(&format!("encoder-{i}")));
            assert_eq!(stage.placement, PlacementHint::CoLocate(gateway));
        }
    }

    #[test]
    fn burst_chain_is_statically_comfortable() {
        // The defect must be invisible to the pure spec checks.
        let app = burst_chain();
        let fanout = app.spec.service(app.service("fanout-worker"));
        assert_eq!(fanout.workers, dsb_core::WorkerPolicy::Fixed(16));
    }

    #[test]
    fn wait_loop_holds_pools_on_every_edge() {
        let app = wait_loop();
        for name in ["order-svc", "payment-svc"] {
            let svc = app.spec.service(app.service(name));
            assert_eq!(svc.concurrency, dsb_core::Concurrency::Blocking);
            assert!(matches!(svc.workers, dsb_core::WorkerPolicy::Fixed(_)));
        }
    }

    #[test]
    fn edge_gossip_spans_the_swarm() {
        let app = edge_gossip();
        for name in ["telemetry-relay", "swarm-peer"] {
            let svc = app.spec.service(app.service(name));
            assert_eq!(svc.zone_pref, Some(Zone::Edge));
            assert_eq!(svc.initial_instances, 2);
        }
    }

    #[test]
    fn bare_cache_has_one_replica() {
        let app = bare_cache();
        let mc = app.spec.service(app.service("memcached-catalog"));
        assert_eq!(mc.initial_instances, 1);
    }

    #[test]
    fn stale_refill_writes_the_cache_first() {
        let app = stale_refill();
        let front = app.spec.service(app.service("profile-frontend"));
        let script = &front.endpoints[1].script;
        let calls: Vec<_> = script
            .iter()
            .filter_map(|s| match s {
                Step::Call { target, .. } => Some(app.spec.service(target.service).name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(calls, ["memcached-profile", "mongodb-profile"]);
    }
}
