//! Deliberately broken deployments for the analyzer's golden report.
//!
//! Each constructor here builds a *placement-level* defect the per-tier
//! checks (DSB002/DSB003/DSB009) cannot see, pinning the DSB011/DSB012
//! diagnostics to `tests/goldens/analyzer_report.txt` the same way
//! `twotier(64, 2)` pins DSB002.

use dsb_core::{AppBuilder, Step};
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{singles::REQUEST, BuiltApp};

/// DSB011 demo: a gateway with four ~2 ms encode stages pinned to its
/// machine (`CoLocate`, the sidecar/DaemonSet shape). At 5500 qps each
/// stage keeps ~11 of its 16 workers busy — comfortably inside every
/// per-tier check — but the four stages plus the gateway demand ~45
/// cores of the one 40-core machine they share.
pub fn colocated_encoders() -> BuiltApp {
    let mut app = AppBuilder::new("colocated_encoders");
    let gateway = app
        .service("gateway")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let mut script = vec![Step::work_us(200.0)];
    for i in 0..4 {
        let stage = app
            .service(&format!("encoder-{i}"))
            .profile(UarchProfile::microservice_default())
            .blocking()
            .workers(16)
            .colocate_with(gateway)
            .build();
        let ep = app.endpoint(
            stage,
            "encode",
            Dist::constant(1024.0),
            vec![Step::work_us(2000.0)],
        );
        script.push(Step::call(ep, 16.0 * 1024.0));
    }
    let entry = app.endpoint(gateway, "upload", Dist::constant(256.0), script);
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 16.0 * 1024.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![gateway],
        frontend: gateway,
        spec,
    }
}

/// DSB012 demo: a timeline front-end fanning out 16 parallel writes,
/// each of which lands on a 4-worker follower store behind 2 ms of I/O.
/// Statically everything passes — the fan fits `fanout-worker`'s 16
/// workers (DSB003 quiet) and the store runs at 4 % utilization (DSB009
/// quiet) — but the fan-out synchronizes 16 arrivals over 4 workers, so
/// the calibration run measures milliseconds of queueing where Erlang-C
/// admits microseconds.
pub fn burst_chain() -> BuiltApp {
    let mut app = AppBuilder::new("burst_chain");
    let store = app
        .service("follower-db")
        .profile(UarchProfile::mongodb())
        .blocking()
        .workers(4)
        .build();
    let write = app.endpoint(
        store,
        "write",
        Dist::constant(64.0),
        vec![Step::Io {
            ns: Dist::constant(2_000_000.0),
        }],
    );
    let fanout = app
        .service("fanout-worker")
        .profile(UarchProfile::microservice_default())
        .blocking()
        .workers(16)
        .build();
    let push = app.endpoint(
        fanout,
        "push",
        Dist::constant(64.0),
        vec![Step::call(write, 512.0)],
    );
    let front = app
        .service("timeline-frontend")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(64)
        .build();
    let entry = app.endpoint(
        front,
        "post",
        Dist::constant(256.0),
        vec![
            Step::work_us(100.0),
            Step::FanCall {
                target: push,
                req_bytes: Dist::constant(512.0),
                n: Dist::constant(16.0),
            },
        ],
    );
    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 256.0),
        qos_p99: SimDuration::from_millis(50),
        order: vec![store, fanout, front],
        frontend: front,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::PlacementHint;

    #[test]
    fn encoders_ride_the_gateway() {
        let app = colocated_encoders();
        let gateway = app.service("gateway");
        for i in 0..4 {
            let stage = app.spec.service(app.service(&format!("encoder-{i}")));
            assert_eq!(stage.placement, PlacementHint::CoLocate(gateway));
        }
    }

    #[test]
    fn burst_chain_is_statically_comfortable() {
        // The defect must be invisible to the pure spec checks.
        let app = burst_chain();
        let fanout = app.spec.service(app.service("fanout-worker"));
        assert_eq!(fanout.workers, dsb_core::WorkerPolicy::Fixed(16));
    }
}
