//! §3.6 Swarm coordination: routing a swarm of programmable drones that
//! perform image recognition and obstacle avoidance (Fig. 8).
//!
//! Two variants, as in the paper:
//!
//! * [`SwarmVariant::Edge`] — computation on the drones: motion planning,
//!   image recognition (jimp) and obstacle avoidance (C++) run natively on
//!   the edge devices over IPC; the cloud only constructs initial routes
//!   and keeps persistent sensor databases. Low latency at low load, but
//!   the two on-board cores oversubscribe quickly (Fig. 9).
//! * [`SwarmVariant::Cloud`] — computation in the cloud
//!   (ardrone-autonomy + Cylon/OpenCV): drones stream sensor data over
//!   the wireless link and receive motion commands back. Every action
//!   pays the cloud-edge round trip, but throughput is far higher.
//!
//! Requests originate at the edge ([`Zone::Edge`]); the partition key is
//! the drone id, so per-drone services stay consistent.

use dsb_core::{AppBuilder, EndpointRef, LbPolicy, RequestType, ServiceId, Step};
use dsb_net::{Protocol, Zone};
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::{MixEntry, QueryMix};

use crate::BuiltApp;

/// Recognize the current camera frame (compute-heavy).
pub const IMAGE_RECOG: RequestType = RequestType(0);
/// Obstacle avoidance + motion adjustment (latency-critical).
pub const OBSTACLE_AVOID: RequestType = RequestType(1);
/// (Re)construct a route for a drone (always cloud-side).
pub const CONSTRUCT_ROUTE: RequestType = RequestType(2);

/// Where the swarm's computation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwarmVariant {
    /// Compute on the drones (21 services).
    Edge,
    /// Compute in the cloud (25 services).
    Cloud,
}

const DRONES: u32 = 24;

/// A drone-local sensor. Instance `k` of every drone-local service is
/// the copy running on drone `k`: the paper's deployment pins one full
/// sensor-to-controller stack per device, expressed here by co-locating
/// everything with the `anchor` service (the first sensor declared).
fn sensor(app: &mut AppBuilder, name: &str, anchor: Option<ServiceId>) -> (ServiceId, EndpointRef) {
    let mut b = app
        .service(name)
        .profile(UarchProfile::tiny_service())
        .workers(2)
        .instances(DRONES)
        .lb(LbPolicy::Partition)
        .protocol(Protocol::Ipc)
        .zone(Zone::Edge);
    if let Some(a) = anchor {
        b = b.colocate_with(a);
    }
    let id = b.build();
    let ep = app.endpoint(id, "read", Dist::constant(256.0), vec![Step::work_us(40.0)]);
    (id, ep)
}

fn cloud_db(app: &mut AppBuilder, name: &str) -> (ServiceId, EndpointRef) {
    let id = app
        .service(name)
        .profile(UarchProfile::mongodb())
        .workers(16)
        .instances(1)
        .protocol(Protocol::Http1)
        .conn_limit(512)
        .build();
    let ep = app.endpoint(
        id,
        "store",
        Dist::constant(128.0),
        vec![
            Step::work_us(60.0),
            Step::Io {
                ns: Dist::log_normal(250_000.0, 0.5),
            },
        ],
    );
    (id, ep)
}

/// Builds the requested Swarm variant.
pub fn swarm(variant: SwarmVariant) -> BuiltApp {
    match variant {
        SwarmVariant::Edge => swarm_edge(),
        SwarmVariant::Cloud => swarm_cloud(),
    }
}

fn swarm_edge() -> BuiltApp {
    let mut app = AppBuilder::new("swarm-edge");

    // Cloud persistent databases (9).
    let (_t, target_db) = cloud_db(&mut app, "targetDB");
    let (_o, orientation_db) = cloud_db(&mut app, "orientationDB");
    let (_l, luminosity_db) = cloud_db(&mut app, "luminosityDB");
    let (_s, speed_db) = cloud_db(&mut app, "speedDB");
    let (_lo, location_db) = cloud_db(&mut app, "locationDB");
    let (_v, video_db) = cloud_db(&mut app, "videoDB");
    let (_i, image_db) = cloud_db(&mut app, "imageDB");
    let (_st, stock_image_db) = cloud_db(&mut app, "stockImageDB");

    // Cloud route construction (Java).
    let construct = app
        .service("constructRoute")
        .profile(UarchProfile::managed_runtime())
        .workers(16)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(512)
        .build();
    let construct_run = app.endpoint(
        construct,
        "construct",
        Dist::log_normal(4096.0, 0.4),
        vec![Step::work_us(900.0), Step::call(target_db, 256.0)],
    );

    // Cloud nginx front for the drones' HTTP uploads.
    let nginx = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(256)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(1024)
        .build();
    let ng_route = app.endpoint(
        nginx,
        "constructRoute",
        Dist::log_normal(4096.0, 0.4),
        vec![Step::work_us(25.0), Step::call(construct_run, 512.0)],
    );

    // Drone-local sensors (4) + cameras (2) + log (7 edge services so far).
    // The first sensor anchors placement; instance k of every drone-local
    // service co-locates on drone k's machine.
    let (drone, loc_read) = sensor(&mut app, "sensor-location", None);
    let (_ss, speed_read) = sensor(&mut app, "sensor-speed", Some(drone));
    let (_sor, orient_read) = sensor(&mut app, "sensor-orientation", Some(drone));
    let (_slu, lum_read) = sensor(&mut app, "sensor-luminosity", Some(drone));

    let edge_svc = |app: &mut AppBuilder, name: &str, profile, workers: u32| {
        app.service(name)
            .profile(profile)
            .workers(workers)
            .instances(DRONES)
            .lb(LbPolicy::Partition)
            .protocol(Protocol::Ipc)
            .zone(Zone::Edge)
            .colocate_with(drone)
            .build()
    };

    let cam_img = edge_svc(&mut app, "camera-image", UarchProfile::tiny_service(), 2);
    let cam_img_grab = app.endpoint(
        cam_img,
        "grab",
        Dist::log_normal(128.0 * 1024.0, 0.3),
        vec![Step::work_us(150.0)],
    );
    let cam_vid = edge_svc(&mut app, "camera-video", UarchProfile::tiny_service(), 2);
    let cam_vid_grab = app.endpoint(
        cam_vid,
        "grab",
        Dist::log_normal(256.0 * 1024.0, 0.3),
        vec![Step::work_us(250.0)],
    );

    let log = edge_svc(&mut app, "log", UarchProfile::managed_runtime(), 2);
    let log_write = app.endpoint(
        log,
        "write",
        Dist::constant(64.0),
        vec![Step::work_us(60.0)],
    );

    // On-board image recognition (jimp, node.js): heavy for 2 weak cores.
    let img_rec = edge_svc(&mut app, "imageRecognition", UarchProfile::vision(), 2);
    let img_rec_run = app.endpoint(
        img_rec,
        "recognize",
        Dist::constant(1024.0),
        vec![
            Step::call(cam_img_grab, 64.0),
            // jimp (node.js library) does the heavy lifting; the
            // surrounding node application code (decode, tiling, result
            // handling) stays in user mode — which is why the paper sees
            // Swarm spending *almost half* its time in libraries.
            Step::libs_us(330_000.0),
            Step::work_us(270_000.0),
            Step::call(log_write, 128.0),
            // Persist the frame + result in the cloud (wifi hop).
            Step::call(image_db, 128.0 * 1024.0),
        ],
    );

    // On-board obstacle avoidance (C++): light, latency-critical.
    let motion = edge_svc(
        &mut app,
        "motionController",
        UarchProfile::managed_runtime(),
        2,
    );
    let motion_run = app.endpoint(
        motion,
        "adjust",
        Dist::constant(128.0),
        vec![Step::work_us(400.0), Step::call(log_write, 64.0)],
    );

    let obstacle = edge_svc(&mut app, "obstacleAvoidance", UarchProfile::vision(), 2);
    let obstacle_run = app.endpoint(
        obstacle,
        "avoid",
        Dist::constant(256.0),
        vec![
            Step::ParCall {
                calls: vec![
                    (loc_read, Dist::constant(64.0)),
                    (speed_read, Dist::constant(64.0)),
                    (orient_read, Dist::constant(64.0)),
                ],
            },
            Step::libs_us(2_000.0),
            Step::call(motion_run, 128.0),
        ],
    );

    // Per-drone controller: the entry point for sensor-triggered work.
    let controller = edge_svc(&mut app, "controller", UarchProfile::managed_runtime(), 4);
    let ctl_recognize = app.endpoint(
        controller,
        "recognize",
        Dist::constant(512.0),
        vec![Step::work_us(200.0), Step::call(img_rec_run, 1024.0)],
    );
    let ctl_avoid = app.endpoint(
        controller,
        "avoid",
        Dist::constant(256.0),
        vec![Step::work_us(150.0), Step::call(obstacle_run, 256.0)],
    );
    let ctl_route = app.endpoint(
        controller,
        "route",
        Dist::constant(512.0),
        vec![
            Step::work_us(150.0),
            Step::call(ng_route, 512.0),
            Step::ParCall {
                calls: vec![
                    (lum_read, Dist::constant(64.0)),
                    (cam_vid_grab, Dist::constant(64.0)),
                ],
            },
            // Upload sensor snapshots for persistence.
            Step::call(orientation_db, 1024.0),
            Step::call(luminosity_db, 512.0),
            Step::call(speed_db, 512.0),
            Step::call(location_db, 512.0),
            Step::call(video_db, 256.0 * 1024.0),
            Step::call(stock_image_db, 512.0),
        ],
    );

    finish(app, controller, ctl_recognize, ctl_avoid, ctl_route, true)
}

fn swarm_cloud() -> BuiltApp {
    let mut app = AppBuilder::new("swarm-cloud");

    // Cloud persistent databases (9).
    let (_t, target_db) = cloud_db(&mut app, "targetDB");
    let (_o, orientation_db) = cloud_db(&mut app, "orientationDB");
    let (_l, luminosity_db) = cloud_db(&mut app, "luminosityDB");
    let (_s, speed_db) = cloud_db(&mut app, "speedDB");
    let (_lo, location_db) = cloud_db(&mut app, "locationDB");
    let (_v, video_db) = cloud_db(&mut app, "videoDB");
    let (_i, image_db) = cloud_db(&mut app, "imageDB");
    let (_st, stock_image_db) = cloud_db(&mut app, "stockImageDB");
    let (_rt, route_db) = cloud_db(&mut app, "routeDB");

    let cloud_rpc = |app: &mut AppBuilder, name: &str, profile, workers: u32, instances: u32| {
        app.service(name)
            .profile(profile)
            .workers(workers)
            .instances(instances)
            .protocol(Protocol::ThriftRpc)
            .build()
    };

    // OpenCV-based image recognition in the cloud.
    let img_rec = cloud_rpc(&mut app, "imageRecognition", UarchProfile::vision(), 16, 4);
    let img_rec_run = app.endpoint(
        img_rec,
        "recognize",
        Dist::constant(1024.0),
        vec![
            // OpenCV (library) recognition + application glue.
            Step::libs_us(220_000.0),
            Step::work_us(180_000.0),
            Step::call(stock_image_db, 512.0),
            Step::call(image_db, 128.0 * 1024.0),
        ],
    );

    // Video transcoder for archived footage.
    let transcode = cloud_rpc(&mut app, "videoTranscode", UarchProfile::vision(), 16, 2);
    let transcode_run = app.endpoint(
        transcode,
        "transcode",
        Dist::constant(512.0),
        vec![Step::work_us(8_000.0), Step::call(video_db, 256.0 * 1024.0)],
    );

    // Telemetry ingest fan-in for raw sensor streams.
    let telemetry = cloud_rpc(
        &mut app,
        "telemetry",
        UarchProfile::managed_runtime(),
        32,
        2,
    );
    let telemetry_run = app.endpoint(
        telemetry,
        "ingest",
        Dist::constant(128.0),
        vec![
            Step::work_us(120.0),
            // The DBs speak HTTP/1 (blocking connections), so the ingest
            // writes are sequential.
            Step::call(orientation_db, 512.0),
            Step::call(luminosity_db, 256.0),
            Step::call(speed_db, 256.0),
            Step::call(location_db, 256.0),
        ],
    );

    let motion = cloud_rpc(
        &mut app,
        "motionController",
        UarchProfile::managed_runtime(),
        16,
        2,
    );
    let motion_run = app.endpoint(
        motion,
        "plan",
        Dist::constant(256.0),
        vec![Step::work_us(800.0)],
    );

    let obstacle = cloud_rpc(&mut app, "obstacleAvoidance", UarchProfile::vision(), 16, 2);
    let obstacle_run = app.endpoint(
        obstacle,
        "avoid",
        Dist::constant(256.0),
        vec![Step::libs_us(1_500.0), Step::call(motion_run, 128.0)],
    );

    let construct = cloud_rpc(
        &mut app,
        "constructRoute",
        UarchProfile::managed_runtime(),
        16,
        2,
    );
    let construct_run = app.endpoint(
        construct,
        "construct",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(900.0),
            Step::call(target_db, 256.0),
            Step::call(route_db, 1024.0),
        ],
    );

    // Cloud controller orchestrating everything.
    let cloud_ctl = cloud_rpc(
        &mut app,
        "cloudController",
        UarchProfile::managed_runtime(),
        32,
        2,
    );
    let cc_recognize = app.endpoint(
        cloud_ctl,
        "recognize",
        Dist::constant(1024.0),
        vec![
            Step::work_us(150.0),
            Step::call(img_rec_run, 128.0 * 1024.0),
            Step::Branch {
                p: 0.2,
                then: std::sync::Arc::new(vec![Step::call(transcode_run, 1024.0)]),
                els: std::sync::Arc::new(vec![]),
            },
        ],
    );
    let cc_avoid = app.endpoint(
        cloud_ctl,
        "avoid",
        Dist::constant(256.0),
        vec![
            Step::work_us(120.0),
            Step::call(obstacle_run, 2048.0),
            Step::call(telemetry_run, 2048.0),
        ],
    );
    let cc_route = app.endpoint(
        cloud_ctl,
        "route",
        Dist::constant(512.0),
        vec![Step::work_us(120.0), Step::call(construct_run, 512.0)],
    );

    // Cloud nginx front (drones speak HTTP to avoid Thrift dependencies).
    let nginx = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(512)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(2048)
        .build();
    let ng_recognize = app.endpoint(
        nginx,
        "recognize",
        Dist::constant(1024.0),
        vec![
            Step::work_us(25.0),
            Step::call(cc_recognize, 128.0 * 1024.0),
        ],
    );
    let ng_avoid = app.endpoint(
        nginx,
        "avoid",
        Dist::constant(256.0),
        vec![Step::work_us(25.0), Step::call(cc_avoid, 2048.0)],
    );
    let ng_route = app.endpoint(
        nginx,
        "route",
        Dist::constant(512.0),
        vec![Step::work_us(25.0), Step::call(cc_route, 512.0)],
    );

    // Drone-local services: sensors, cameras, log, local controller (8),
    // all pinned per-drone via the first sensor's placement.
    let (drone, loc_read) = sensor(&mut app, "sensor-location", None);
    let (_ss, speed_read) = sensor(&mut app, "sensor-speed", Some(drone));
    let (_sor, orient_read) = sensor(&mut app, "sensor-orientation", Some(drone));
    let (_slu, lum_read) = sensor(&mut app, "sensor-luminosity", Some(drone));

    let edge_svc = |app: &mut AppBuilder, name: &str, profile, workers: u32| {
        app.service(name)
            .profile(profile)
            .workers(workers)
            .instances(DRONES)
            .lb(LbPolicy::Partition)
            .protocol(Protocol::Ipc)
            .zone(Zone::Edge)
            .colocate_with(drone)
            .build()
    };
    let cam_img = edge_svc(&mut app, "camera-image", UarchProfile::tiny_service(), 2);
    let cam_img_grab = app.endpoint(
        cam_img,
        "grab",
        Dist::log_normal(128.0 * 1024.0, 0.3),
        vec![Step::work_us(150.0)],
    );
    let cam_vid = edge_svc(&mut app, "camera-video", UarchProfile::tiny_service(), 2);
    let cam_vid_grab = app.endpoint(
        cam_vid,
        "grab",
        Dist::log_normal(256.0 * 1024.0, 0.3),
        vec![Step::work_us(250.0)],
    );
    let log = edge_svc(&mut app, "log", UarchProfile::managed_runtime(), 2);
    let log_write = app.endpoint(
        log,
        "write",
        Dist::constant(64.0),
        vec![Step::work_us(60.0)],
    );

    let controller = edge_svc(&mut app, "controller", UarchProfile::managed_runtime(), 4);
    let ctl_recognize = app.endpoint(
        controller,
        "recognize",
        Dist::constant(512.0),
        vec![
            Step::call(cam_img_grab, 64.0),
            Step::work_us(100.0),
            Step::call(ng_recognize, 128.0 * 1024.0),
            Step::call(log_write, 64.0),
        ],
    );
    let ctl_avoid = app.endpoint(
        controller,
        "avoid",
        Dist::constant(256.0),
        vec![
            Step::ParCall {
                calls: vec![
                    (loc_read, Dist::constant(64.0)),
                    (speed_read, Dist::constant(64.0)),
                    (orient_read, Dist::constant(64.0)),
                    (lum_read, Dist::constant(64.0)),
                ],
            },
            Step::work_us(80.0),
            Step::call(ng_avoid, 2048.0),
            Step::call(log_write, 64.0),
        ],
    );
    let ctl_route = app.endpoint(
        controller,
        "route",
        Dist::constant(512.0),
        vec![
            Step::work_us(80.0),
            Step::call(cam_vid_grab, 64.0),
            Step::call(ng_route, 512.0),
        ],
    );

    finish(app, controller, ctl_recognize, ctl_avoid, ctl_route, false)
}

fn finish(
    app: AppBuilder,
    controller: ServiceId,
    recognize: EndpointRef,
    avoid: EndpointRef,
    route: EndpointRef,
    edge_variant: bool,
) -> BuiltApp {
    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| ServiceId(i as u32))
        .collect();
    let mut mix = QueryMix::new();
    mix.push(MixEntry {
        entry: recognize,
        rtype: IMAGE_RECOG,
        weight: 30.0,
        bytes: Dist::constant(512.0),
        origin: Zone::Edge,
    });
    mix.push(MixEntry {
        entry: avoid,
        rtype: OBSTACLE_AVOID,
        weight: 60.0,
        bytes: Dist::constant(256.0),
        origin: Zone::Edge,
    });
    mix.push(MixEntry {
        entry: route,
        rtype: CONSTRUCT_ROUTE,
        weight: 10.0,
        bytes: Dist::constant(512.0),
        origin: Zone::Edge,
    });
    BuiltApp {
        frontend: controller,
        qos_p99: if edge_variant {
            SimDuration::from_millis(12_000)
        } else {
            SimDuration::from_millis(3_000)
        },
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_counts_match_paper() {
        assert_eq!(swarm(SwarmVariant::Edge).spec.service_count(), 21);
        assert_eq!(swarm(SwarmVariant::Cloud).spec.service_count(), 25);
    }

    #[test]
    fn edge_variant_runs_recognition_on_drones() {
        let app = swarm(SwarmVariant::Edge);
        let rec = app.spec.service(app.service("imageRecognition"));
        assert_eq!(rec.zone_pref, Some(Zone::Edge));
    }

    #[test]
    fn cloud_variant_runs_recognition_in_cloud() {
        let app = swarm(SwarmVariant::Cloud);
        let rec = app.spec.service(app.service("imageRecognition"));
        assert_eq!(rec.zone_pref, None);
    }

    #[test]
    fn drone_stacks_are_colocated_per_device() {
        use dsb_core::PlacementHint;
        for v in [SwarmVariant::Edge, SwarmVariant::Cloud] {
            let app = swarm(v);
            let anchor = app.service("sensor-location");
            for name in [
                "sensor-speed",
                "camera-image",
                "log",
                "obstacleAvoidance",
                "controller",
            ] {
                let Some(svc) = app.spec.service_by_name(name) else {
                    continue; // not present in this variant
                };
                if app.spec.service(svc).zone_pref != Some(Zone::Edge) {
                    continue; // cloud-side in this variant
                }
                assert_eq!(
                    app.spec.service(svc).placement,
                    PlacementHint::CoLocate(anchor),
                    "{name} must ride with its drone's sensor stack"
                );
            }
        }
    }

    #[test]
    fn entry_is_the_drone_controller() {
        for v in [SwarmVariant::Edge, SwarmVariant::Cloud] {
            let app = swarm(v);
            assert_eq!(app.name_of(app.frontend), "controller");
        }
    }
}
