//! The Fig. 17 two-tier example: nginx in front of memcached.
//!
//! Case A (nginx saturation) is produced by driving load past the nginx
//! tier's compute capacity; case B (memcached backpressuring nginx) by
//! shrinking the nginx→memcached connection pool — requests within an
//! HTTP/1-style connection are blocking, so nginx workers busy-wait on
//! connections while memcached itself sits idle, and a utilization-driven
//! autoscaler wrongly scales *nginx*.

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::BuiltApp;

/// The read request type.
pub const READ: RequestType = RequestType(0);

/// Builds the two-tier app with the given nginx worker count and
/// nginx→memcached connection limit (per nginx instance).
pub fn twotier(nginx_workers: u32, conn_limit: u32) -> BuiltApp {
    let mut app = AppBuilder::new("nginx-memcached");

    let mc = app
        .service("memcached")
        .profile(UarchProfile::memcached())
        .event_driven()
        .workers(16)
        // Keep-alive HTTP connections from nginx: blocking semantics.
        .protocol(Protocol::Http1)
        .conn_limit(conn_limit)
        .build();
    let get = app.endpoint(
        mc,
        "get",
        Dist::log_normal(1024.0, 0.6),
        vec![Step::work_us(8.0)],
    );

    let nginx = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        // Worker-process model: a worker is held across the upstream call.
        .blocking()
        .workers(nginx_workers)
        .protocol(Protocol::Http1)
        .conn_limit(4096)
        .build();
    let read = app.endpoint(
        nginx,
        "read",
        Dist::log_normal(4096.0, 0.4),
        vec![Step::work_us(60.0), Step::call(get, 128.0)],
    );

    let spec = app.build();
    BuiltApp {
        mix: QueryMix::single(read, READ, 256.0),
        qos_p99: SimDuration::from_millis(2),
        order: vec![mc, nginx],
        frontend: nginx,
        spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{ClusterSpec, Simulation};
    use dsb_simcore::SimTime;
    use dsb_workload::{OpenLoop, UserPopulation};

    fn p99_at(conn_limit: u32, qps: f64) -> (u64, f64, f64) {
        let app = twotier(64, conn_limit);
        let nginx = app.service("nginx");
        let mc = app.service("memcached");
        let mut cluster = ClusterSpec::xeon_cluster(2, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(app.spec.clone(), cluster, 5);
        let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(100), 5);
        load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(3), qps);
        sim.advance_to(SimTime::from_secs(3));
        let nginx_occ = sim.occupancy(nginx);
        let mc_occ = sim.occupancy(mc);
        sim.run_until_idle();
        let p99 = sim.request_stats(READ).unwrap().latency.quantile(0.99);
        (p99, nginx_occ, mc_occ)
    }

    #[test]
    fn small_conn_pool_backpressures_nginx() {
        let (p99_large, _, _) = p99_at(1024, 25_000.0);
        let (p99_small, nginx_occ, mc_occ) = p99_at(2, 25_000.0);
        // Same load, tiny pool: latency explodes...
        assert!(
            p99_small > p99_large * 5,
            "small {p99_small} vs large {p99_large}"
        );
        // ...nginx looks saturated while memcached looks idle.
        assert!(nginx_occ > 0.9, "nginx occupancy {nginx_occ}");
        assert!(mc_occ < 0.3, "memcached occupancy {mc_occ}");
    }
}
