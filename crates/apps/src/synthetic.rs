//! Synthetic "death star" applications: parameterized layered service
//! graphs for studying how graph complexity itself affects behaviour.
//!
//! §8 of the paper closes with: *"In general, the more complex an
//! application's microservices graph, the more impactful slow servers
//! are, as the probability that a service on the critical path will be
//! degraded increases."* These generators make that a controlled
//! variable: same total work, same QoS, different depth / fan-out.

use dsb_core::{AppBuilder, EndpointRef, RequestType, ServiceId, Step};
use dsb_simcore::{Dist, SimDuration};
use dsb_workload::QueryMix;

use crate::BuiltApp;

/// Parameters of a synthetic layered application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredSpec {
    /// Number of tiers between the front-end and the leaves.
    pub depth: u32,
    /// Services per tier.
    pub width: u32,
    /// Parallel calls each service makes into the next tier.
    pub fanout: u32,
    /// Compute per handler, reference-core microseconds.
    pub work_us: f64,
    /// Workers per instance.
    pub workers: u32,
    /// End-to-end p99 QoS target.
    pub qos: SimDuration,
}

impl Default for LayeredSpec {
    fn default() -> Self {
        LayeredSpec {
            depth: 3,
            width: 3,
            fanout: 2,
            work_us: 50.0,
            workers: 16,
            qos: SimDuration::from_millis(10),
        }
    }
}

/// Builds a layered synthetic application: a front-end fanning into
/// `depth` tiers of `width` services each; every service calls `fanout`
/// services of the next tier in parallel (over multiplexed RPC).
///
/// Total services: `1 + depth × width`. The per-request critical path
/// touches `depth + 1` tiers; the number of *distinct* services a request
/// touches grows with `fanout`, so slow-server impact grows with both
/// knobs, as §8 argues.
pub fn layered(spec: LayeredSpec) -> BuiltApp {
    assert!(spec.depth >= 1 && spec.width >= 1, "need at least one tier");
    let mut app = AppBuilder::new("synthetic-layered");
    // Build from the leaves (deepest tier) up.
    let mut below: Vec<EndpointRef> = Vec::new();
    for tier in (0..spec.depth).rev() {
        let mut this_tier = Vec::new();
        for w in 0..spec.width {
            let svc = app
                .service(&format!("t{tier}-s{w}"))
                .workers(spec.workers)
                .build();
            let mut steps = vec![Step::work_us(spec.work_us)];
            if !below.is_empty() {
                let calls: Vec<(EndpointRef, Dist)> = (0..spec.fanout)
                    .map(|k| {
                        // Deterministic rotation spreads edges across the
                        // tier below.
                        let idx = ((w + k) % below.len() as u32) as usize;
                        (below[idx], Dist::constant(256.0))
                    })
                    .collect();
                steps.push(Step::ParCall { calls });
            }
            this_tier.push(app.endpoint(svc, "op", Dist::constant(1024.0), steps));
        }
        below = this_tier;
    }
    // The front-end fans across the whole first tier (an aggregator),
    // like the suite's real front-ends do.
    let front = app.service("front").event_driven().workers(256).build();
    let calls: Vec<(EndpointRef, Dist)> =
        below.iter().map(|&e| (e, Dist::constant(256.0))).collect();
    let entry = app.endpoint(
        front,
        "root",
        Dist::constant(4096.0),
        vec![Step::work_us(spec.work_us), Step::ParCall { calls }],
    );
    let spec_built = app.build();
    let order: Vec<ServiceId> = (0..spec_built.service_count())
        .map(|i| ServiceId(i as u32))
        .collect();
    BuiltApp {
        mix: QueryMix::single(entry, RequestType(0), 256.0),
        qos_p99: spec.qos,
        frontend: front,
        spec: spec_built,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_count_matches_formula() {
        for (depth, width) in [(1, 1), (2, 3), (4, 5)] {
            let app = layered(LayeredSpec {
                depth,
                width,
                fanout: width.min(2),
                ..LayeredSpec::default()
            });
            assert_eq!(
                app.spec.service_count() as u32,
                1 + depth * width,
                "depth {depth} width {width}"
            );
        }
    }

    #[test]
    fn deeper_graphs_have_longer_chains() {
        use dsb_core::{ClusterSpec, Simulation};
        use dsb_simcore::SimTime;
        let latency = |depth| {
            let app = layered(LayeredSpec {
                depth,
                ..LayeredSpec::default()
            });
            let mut cluster = ClusterSpec::xeon_cluster(4, 1);
            cluster.trace_sample_prob = 0.0;
            let mut sim = Simulation::new(app.spec.clone(), cluster, 1);
            for i in 0..50u64 {
                sim.inject(
                    SimTime::from_millis(i),
                    app.mix.entries()[0].entry,
                    RequestType(0),
                    128,
                    i,
                );
            }
            sim.run_until_idle();
            sim.request_stats(RequestType(0)).unwrap().latency.mean()
        };
        let shallow = latency(1);
        let deep = latency(6);
        assert!(
            deep > shallow * 2.0,
            "depth must add latency: {shallow} vs {deep}"
        );
    }

    #[test]
    fn single_tier_single_service_builds_and_drains() {
        use dsb_core::{ClusterSpec, Simulation};
        use dsb_simcore::SimTime;
        // The degenerate corner: one tier, one service, fan-out collapses
        // onto the only leaf.
        let app = layered(LayeredSpec {
            depth: 1,
            width: 1,
            fanout: 3,
            ..LayeredSpec::default()
        });
        assert_eq!(app.spec.service_count(), 2, "front + one leaf");
        let mut cluster = ClusterSpec::xeon_cluster(1, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(app.spec.clone(), cluster, 7);
        for i in 0..20u64 {
            sim.inject(
                SimTime::from_millis(i),
                app.mix.entries()[0].entry,
                RequestType(0),
                128,
                i,
            );
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 20);
    }

    #[test]
    fn fanout_wider_than_the_tier_wraps_around() {
        // fanout > width: the rotation wraps, so call lists repeat leaf
        // endpoints rather than walking off the tier.
        let spec = LayeredSpec {
            depth: 2,
            width: 2,
            fanout: 5,
            ..LayeredSpec::default()
        };
        let app = layered(spec);
        assert_eq!(app.spec.service_count() as u32, 1 + 2 * 2);
        for svc in &app.spec.services {
            for ep in &svc.endpoints {
                for s in ep.script.iter() {
                    if let Step::ParCall { calls } = s {
                        assert!(calls.len() == spec.fanout as usize || calls.len() == 2);
                        for (t, _) in calls {
                            assert!((t.service.0 as usize) < app.spec.services.len());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fanout_exceeding_the_worker_pool_still_drains() {
        use dsb_core::{ClusterSpec, Simulation};
        use dsb_simcore::SimTime;
        // Each parallel call lands on a 2-worker callee tier: the classic
        // DSB003 over-subscription shape. The sim must queue, not wedge.
        let app = layered(LayeredSpec {
            depth: 2,
            width: 2,
            fanout: 8,
            workers: 2,
            ..LayeredSpec::default()
        });
        let mut cluster = ClusterSpec::xeon_cluster(2, 1);
        cluster.trace_sample_prob = 0.0;
        let mut sim = Simulation::new(app.spec.clone(), cluster, 9);
        for i in 0..30u64 {
            sim.inject(
                SimTime::from_millis(2 * i),
                app.mix.entries()[0].entry,
                RequestType(0),
                128,
                i,
            );
        }
        sim.run_until_idle();
        let st = sim.request_stats(RequestType(0)).unwrap();
        assert_eq!(st.completed, 30, "oversubscribed fan-out must drain");
    }

    #[test]
    fn all_tiers_reachable() {
        let app = layered(LayeredSpec {
            depth: 3,
            width: 4,
            fanout: 2,
            ..LayeredSpec::default()
        });
        let edges = app.spec.edges();
        let n = app.spec.service_count();
        let mut seen = vec![false; n];
        seen[app.frontend.0 as usize] = true;
        let mut stack = vec![app.frontend];
        while let Some(s) = stack.pop() {
            for &(a, b) in &edges {
                if a == s && !seen[b.0 as usize] {
                    seen[b.0 as usize] = true;
                    stack.push(b);
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "unreachable tiers exist");
    }
}
