//! §3.5 Banking: a secure banking system for payments, loans and credit
//! cards — 34 unique microservices (Fig. 7).
//!
//! A node.js front-end gates everything behind authentication + ACL;
//! payments post transactions through `transactionPosting`; lending,
//! credit-card, mortgage and wealth-management tiers sit over
//! memcached/MongoDB pairs and relational databases (BankInfoDB, OfferDB,
//! wealthMgmtDB). Payments and authentication dominate end-to-end latency
//! (§7), and the computationally heavier Java/JS tiers shift time from
//! kernel to user space (Fig. 14).

use std::sync::Arc;

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_leaf, add_memcached, add_mongodb, add_mysql, BuiltApp};

/// Process a payment from an account.
pub const PROCESS_PAYMENT: RequestType = RequestType(0);
/// Pay a credit-card balance.
pub const PAY_CREDIT_CARD: RequestType = RequestType(1);
/// Request a loan (personal or business).
pub const REQUEST_LOAN: RequestType = RequestType(2);
/// Browse bank information / offers.
pub const BROWSE_INFO: RequestType = RequestType(3);
/// Wealth-management review.
pub const WEALTH_MGMT: RequestType = RequestType(4);
/// Open a new account or credit card.
pub const OPEN_ACCOUNT: RequestType = RequestType(5);

/// Builds the Banking application.
pub fn banking() -> BuiltApp {
    let mut app = AppBuilder::new("banking");

    // ---- storage tier ------------------------------------------------------
    // The customer cache sits on every authenticated path (hot, 3
    // shards); the remaining stores run the 2-shard floor.
    let (_mc_cust, mc_cust_get, mc_cust_set) = add_memcached(&mut app, "memcached-customers", 3);
    let (_mg_cust, mg_cust_find, mg_cust_ins) = add_mongodb(&mut app, "mongodb-customers", 2);
    let (_mc_acct, mc_acct_get, mc_acct_set) = add_memcached(&mut app, "memcached-accounts", 2);
    let (_mg_acct, mg_acct_find, mg_acct_ins) = add_mongodb(&mut app, "mongodb-accounts", 2);
    let (_mc_txn, mc_txn_get, mc_txn_set) = add_memcached(&mut app, "memcached-transactions", 2);
    let (_mg_txn, mg_txn_find, mg_txn_ins) = add_mongodb(&mut app, "mongodb-transactions", 2);
    let (_mc_offers, mc_offers_get, mc_offers_set) = add_memcached(&mut app, "memcached-offers", 2);
    let (_bankinfo, bankinfo_q) = add_mysql(&mut app, "bankinfo-db", 2);
    let (_offerdb, offerdb_q) = add_mysql(&mut app, "offer-db", 2);
    let (_wealthdb, wealthdb_q) = add_mysql(&mut app, "wealthmgmt-db", 2);

    let xapian = app
        .service("xapian-index")
        .profile(UarchProfile::search())
        .workers(8)
        .instances(2)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let xapian_q = app.endpoint(
        xapian,
        "query",
        Dist::log_normal(4096.0, 0.6),
        vec![Step::work_us(350.0)],
    );

    // ---- security tier -------------------------------------------------------
    let acl = app
        .service("acl")
        .profile(UarchProfile::managed_runtime())
        .workers(16)
        .build();
    let acl_check = app.endpoint(
        acl,
        "check",
        Dist::constant(128.0),
        vec![Step::work_us(90.0), Step::call(mc_cust_get, 64.0)],
    );

    let authentication = app
        .service("authentication")
        .profile(UarchProfile::managed_runtime())
        .workers(32)
        .instances(2)
        .build();
    let auth_run = app.endpoint(
        authentication,
        "verify",
        Dist::constant(256.0),
        vec![
            // Crypto-heavy: token validation + signature check.
            Step::work_us(350.0),
            Step::call(acl_check, 128.0),
            Step::cache_lookup(
                mc_cust_get,
                0.85,
                vec![
                    Step::call(mg_cust_find, 128.0),
                    Step::call(mc_cust_set, 512.0),
                ],
            ),
        ],
    );

    let login = app.service("login").workers(16).build();
    let login_run = app.endpoint(
        login,
        "auth",
        Dist::constant(256.0),
        vec![Step::work_us(100.0), Step::call(auth_run, 256.0)],
    );

    // ---- customer tier -------------------------------------------------------
    let customer_info = app.service("customerInfo").workers(16).build();
    let customer_info_get = app.endpoint(
        customer_info,
        "get",
        Dist::log_normal(2048.0, 0.4),
        vec![
            Step::work_us(45.0),
            Step::cache_lookup(
                mc_cust_get,
                0.9,
                vec![
                    Step::call(mg_cust_find, 128.0),
                    Step::call(mc_cust_set, 1024.0),
                ],
            ),
        ],
    );

    let customer_activity = app.service("customerActivity").workers(16).build();
    let activity_log = app.endpoint(
        customer_activity,
        "log",
        Dist::constant(64.0),
        vec![Step::work_us(30.0), Step::call(mc_txn_set, 256.0)],
    );

    let user_prefs = app
        .service("userPreferences")
        .profile(UarchProfile::tiny_service())
        .workers(8)
        .build();
    let prefs_get = app.endpoint(
        user_prefs,
        "get",
        Dist::constant(512.0),
        vec![Step::work_us(25.0), Step::call(mc_cust_get, 64.0)],
    );

    let contact = app
        .service("contact")
        .profile(UarchProfile::tiny_service())
        .workers(8)
        .build();
    let contact_get = app.endpoint(
        contact,
        "get",
        Dist::constant(1024.0),
        vec![Step::work_us(40.0), Step::call(bankinfo_q, 128.0)],
    );

    // ---- money movement --------------------------------------------------------
    let txn_posting = app
        .service("transactionPosting")
        .profile(UarchProfile::managed_runtime())
        .workers(32)
        .instances(2)
        .build();
    let post_txn = app.endpoint(
        txn_posting,
        "post",
        Dist::constant(256.0),
        vec![
            Step::work_us(180.0),
            Step::call(mg_txn_ins, 512.0),
            Step::call(mc_txn_set, 256.0),
        ],
    );

    let payments = app
        .service("payments")
        .profile(UarchProfile::managed_runtime())
        .workers(32)
        .instances(2)
        .build();
    let payments_run = app.endpoint(
        payments,
        "process",
        Dist::constant(512.0),
        vec![
            Step::work_us(250.0),
            Step::call(mg_acct_find, 128.0),
            // Interbank clearing round trip.
            Step::Io {
                ns: Dist::log_normal(2_500_000.0, 0.5),
            },
            Step::call(post_txn, 512.0),
            Step::call(activity_log, 128.0),
        ],
    );

    let deposit = app.service("depositAccount").workers(16).build();
    let deposit_open = app.endpoint(
        deposit,
        "open",
        Dist::constant(512.0),
        vec![
            Step::work_us(120.0),
            Step::call(mg_acct_ins, 512.0),
            Step::call(mc_acct_set, 256.0),
        ],
    );

    let investment = app.service("investmentAccount").workers(16).build();
    let investment_get = app.endpoint(
        investment,
        "review",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(200.0),
            Step::call(mg_acct_find, 128.0),
            Step::call(wealthdb_q, 256.0),
        ],
    );

    let credit_card = app.service("creditCard").workers(16).instances(2).build();
    let cc_pay = app.endpoint(
        credit_card,
        "pay",
        Dist::constant(512.0),
        vec![
            Step::work_us(150.0),
            Step::cache_lookup(
                mc_acct_get,
                0.85,
                vec![
                    Step::call(mg_acct_find, 128.0),
                    Step::call(mc_acct_set, 256.0),
                ],
            ),
            Step::call(post_txn, 512.0),
        ],
    );

    let open_cc = app.service("openCreditCard").workers(8).build();
    let open_cc_run = app.endpoint(
        open_cc,
        "open",
        Dist::constant(512.0),
        vec![
            Step::work_us(180.0),
            Step::call(customer_info_get, 128.0),
            Step::call(mg_acct_ins, 512.0),
        ],
    );

    // ---- lending ---------------------------------------------------------------
    let mortgages = app.service("mortgages").workers(8).build();
    let mortgages_quote = app.endpoint(
        mortgages,
        "quote",
        Dist::log_normal(2048.0, 0.4),
        vec![Step::work_us(400.0), Step::call(wealthdb_q, 256.0)],
    );

    let personal_lending = app.service("personalLending").workers(16).build();
    let personal_loan = app.endpoint(
        personal_lending,
        "apply",
        Dist::constant(1024.0),
        vec![
            Step::work_us(300.0),
            Step::call(customer_info_get, 128.0),
            // Transaction history for affordability checks, served
            // through the transaction cache.
            Step::cache_lookup(
                mc_txn_get,
                0.75,
                vec![
                    Step::call(mg_txn_find, 256.0),
                    Step::call(mc_txn_set, 1024.0),
                ],
            ),
        ],
    );

    let business_lending = app.service("businessLending").workers(16).build();
    let business_loan = app.endpoint(
        business_lending,
        "apply",
        Dist::constant(1024.0),
        vec![
            Step::work_us(450.0),
            Step::call(customer_info_get, 128.0),
            Step::cache_lookup(
                mc_txn_get,
                0.75,
                vec![
                    Step::call(mg_txn_find, 256.0),
                    Step::call(mc_txn_set, 1024.0),
                ],
            ),
            Step::call(bankinfo_q, 128.0),
        ],
    );

    let wealth = app.service("wealthMgmt").workers(16).build();
    let wealth_run = app.endpoint(
        wealth,
        "review",
        Dist::log_normal(8192.0, 0.4),
        vec![
            Step::work_us(350.0),
            Step::call(investment_get, 256.0),
            Step::call(wealthdb_q, 256.0),
        ],
    );

    let open_account = app.service("openAccount").workers(8).build();
    let open_account_run = app.endpoint(
        open_account,
        "open",
        Dist::constant(512.0),
        vec![
            Step::work_us(150.0),
            Step::call(mg_cust_ins, 512.0),
            Step::call(deposit_open, 512.0),
            Step::Branch {
                p: 0.3,
                then: Arc::new(vec![Step::call(open_cc_run, 512.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    // ---- content tier ------------------------------------------------------------
    let (_media, media_run) = add_leaf(
        &mut app,
        "media",
        UarchProfile::vision(),
        1,
        140.0,
        64.0 * 1024.0,
    );
    let (_ads, ads_run) = add_leaf(
        &mut app,
        "ads",
        UarchProfile::managed_runtime(),
        1,
        250.0,
        2048.0,
    );

    let offer_banners = app.service("offerBanners").workers(8).build();
    let offers_get = app.endpoint(
        offer_banners,
        "get",
        Dist::log_normal(4096.0, 0.4),
        vec![
            Step::work_us(60.0),
            Step::cache_lookup(
                mc_offers_get,
                0.9,
                vec![
                    Step::call(offerdb_q, 128.0),
                    Step::call(mc_offers_set, 2048.0),
                ],
            ),
        ],
    );

    let search = app
        .service("search")
        .profile(UarchProfile::search())
        .workers(8)
        .build();
    let search_q = app.endpoint(
        search,
        "query",
        Dist::log_normal(8192.0, 0.5),
        vec![
            Step::work_us(120.0),
            Step::ParCall {
                calls: vec![
                    (xapian_q, Dist::constant(256.0)),
                    (xapian_q, Dist::constant(256.0)),
                ],
            },
        ],
    );

    // ---- front-end -----------------------------------------------------------------
    let front = app
        .service("front-end")
        .profile(UarchProfile::managed_runtime())
        .event_driven()
        .workers(256)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(2048)
        .build();
    let fe_payment = app.endpoint(
        front,
        "processPayment",
        Dist::constant(1024.0),
        vec![
            Step::work_us(130.0),
            Step::call(login_run, 256.0),
            Step::call(payments_run, 512.0),
        ],
    );
    let fe_cc = app.endpoint(
        front,
        "payCreditCard",
        Dist::constant(1024.0),
        vec![
            Step::work_us(120.0),
            Step::call(login_run, 256.0),
            Step::call(cc_pay, 512.0),
        ],
    );
    let fe_loan = app.endpoint(
        front,
        "requestLoan",
        Dist::constant(2048.0),
        vec![
            Step::work_us(140.0),
            Step::call(login_run, 256.0),
            Step::Branch {
                p: 0.7,
                then: Arc::new(vec![Step::call(personal_loan, 1024.0)]),
                els: Arc::new(vec![
                    Step::call(business_loan, 1024.0),
                    Step::call(mortgages_quote, 256.0),
                ]),
            },
        ],
    );
    let fe_browse = app.endpoint(
        front,
        "browseInfo",
        Dist::log_normal(32.0 * 1024.0, 0.4),
        vec![
            Step::work_us(110.0),
            Step::ParCall {
                calls: vec![
                    (contact_get, Dist::constant(128.0)),
                    (offers_get, Dist::constant(128.0)),
                    (ads_run, Dist::constant(128.0)),
                    (media_run, Dist::constant(128.0)),
                    (prefs_get, Dist::constant(64.0)),
                ],
            },
            Step::Branch {
                p: 0.25,
                then: Arc::new(vec![Step::call(search_q, 256.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );
    let fe_wealth = app.endpoint(
        front,
        "wealthMgmt",
        Dist::log_normal(8192.0, 0.4),
        vec![
            Step::work_us(120.0),
            Step::call(login_run, 256.0),
            Step::call(wealth_run, 512.0),
        ],
    );
    let fe_open = app.endpoint(
        front,
        "openAccount",
        Dist::constant(1024.0),
        vec![
            Step::work_us(130.0),
            Step::call(login_run, 256.0),
            Step::call(open_account_run, 512.0),
        ],
    );

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(fe_payment, PROCESS_PAYMENT, 35.0, Dist::constant(512.0));
    mix.add(fe_cc, PAY_CREDIT_CARD, 15.0, Dist::constant(512.0));
    mix.add(fe_loan, REQUEST_LOAN, 10.0, Dist::constant(1024.0));
    mix.add(fe_browse, BROWSE_INFO, 25.0, Dist::constant(384.0));
    mix.add(fe_wealth, WEALTH_MGMT, 8.0, Dist::constant(512.0));
    mix.add(fe_open, OPEN_ACCOUNT, 7.0, Dist::constant(1024.0));

    BuiltApp {
        frontend: front,
        qos_p99: SimDuration::from_millis(30),
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_34_services() {
        let app = banking();
        assert_eq!(app.spec.service_count(), 34);
        for name in [
            "front-end",
            "authentication",
            "acl",
            "payments",
            "transactionPosting",
            "wealthMgmt",
            "bankinfo-db",
        ] {
            assert!(app.spec.service_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn payment_path_posts_transactions() {
        let app = banking();
        let edges = app.spec.edges();
        assert!(edges.contains(&(app.service("payments"), app.service("transactionPosting"))));
        assert!(edges.contains(&(
            app.service("transactionPosting"),
            app.service("mongodb-transactions")
        )));
    }

    #[test]
    fn everything_authenticated() {
        let app = banking();
        let edges = app.spec.edges();
        assert!(edges.contains(&(app.service("login"), app.service("authentication"))));
        assert!(edges.contains(&(app.service("authentication"), app.service("acl"))));
    }
}
