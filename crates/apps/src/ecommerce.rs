//! §3.4 E-commerce: an online clothing store derived from Sockshop —
//! 41 unique microservices (Fig. 6).
//!
//! A node.js front-end fronts Go/Java services (catalogue, orders, cart,
//! login, payment, shipping, invoicing, queueMaster) over a mix of REST
//! and RPC, with memcached/MongoDB back-ends. Placing an order chains
//! cart → login → payment → shipping → invoicing → queueMaster and is 1–2
//! orders of magnitude slower than browsing the catalogue (§3.8);
//! queueMaster serializes order commits, constraining its scalability at
//! high load (§7).

use std::sync::Arc;

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_leaf, add_memcached, add_mongodb, BuiltApp};

/// Browse the catalogue.
pub const BROWSE: RequestType = RequestType(0);
/// Full-text product search.
pub const SEARCH: RequestType = RequestType(1);
/// Place an order (the slow path).
pub const PLACE_ORDER: RequestType = RequestType(2);
/// Manage the wishlist.
pub const WISHLIST: RequestType = RequestType(3);
/// Add an item to the cart.
pub const CART_ADD: RequestType = RequestType(4);
/// Log in.
pub const LOGIN: RequestType = RequestType(5);

/// Builds the E-commerce application.
pub fn ecommerce() -> BuiltApp {
    let mut app = AppBuilder::new("e-commerce");

    // ---- storage tier -----------------------------------------------------
    // The catalogue cache takes the browse fan-out (hot, 3 shards); the
    // remaining stores run the 2-shard floor.
    let (_mc_cat, mc_cat_get, mc_cat_set) = add_memcached(&mut app, "memcached-catalogue", 3);
    let (_mg_cat, mg_cat_find, mg_cat_ins) = add_mongodb(&mut app, "mongodb-catalogue", 2);
    let (_mc_cart, mc_cart_get, mc_cart_set) = add_memcached(&mut app, "memcached-cart", 2);
    let (_mg_cart, mg_cart_find, mg_cart_ins) = add_mongodb(&mut app, "mongodb-cart", 2);
    let (_mg_orders, mg_orders_find, mg_orders_ins) = add_mongodb(&mut app, "mongodb-orders", 2);
    let (_mc_sess, mc_sess_get, mc_sess_set) = add_memcached(&mut app, "memcached-session", 2);
    let (_mg_acct, mg_acct_find, mg_acct_ins) = add_mongodb(&mut app, "mongodb-account", 2);
    let (_mg_ship, mg_ship_find, mg_ship_ins) = add_mongodb(&mut app, "mongodb-shipping", 2);
    let (_mg_inv, mg_inv_find, mg_inv_ins) = add_mongodb(&mut app, "mongodb-invoice", 2);
    let (_mg_media, mg_media_find, mg_media_ins) = add_mongodb(&mut app, "mongodb-media", 2);
    let (_mc_invty, mc_invty_get, mc_invty_set) = add_memcached(&mut app, "memcached-inventory", 2);
    let (_mg_invty, mg_invty_find, mg_invty_ins) = add_mongodb(&mut app, "mongodb-inventory", 2);

    let xapian = app
        .service("xapian-index")
        .profile(UarchProfile::search())
        .workers(8)
        .instances(3)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let xapian_q = app.endpoint(
        xapian,
        "query",
        Dist::log_normal(4096.0, 0.6),
        vec![Step::work_us(350.0)],
    );

    // RabbitMQ-style order queue: serialized commits.
    let order_queue = app
        .service("orderQueue")
        .profile(UarchProfile::managed_runtime())
        .workers(1)
        .instances(1)
        .build();
    let oq_push = app.endpoint(
        order_queue,
        "push",
        Dist::constant(64.0),
        vec![
            Step::work_us(120.0),
            Step::Io {
                ns: Dist::log_normal(200_000.0, 0.4),
            },
        ],
    );

    // ---- mid tier -----------------------------------------------------------
    let inventory = app.service("inventory").workers(16).build();
    let inventory_check = app.endpoint(
        inventory,
        "check",
        Dist::constant(128.0),
        vec![
            Step::work_us(30.0),
            Step::cache_lookup(
                mc_invty_get,
                0.9,
                vec![
                    Step::call(mg_invty_find, 128.0),
                    Step::call(mc_invty_set, 256.0),
                ],
            ),
        ],
    );

    // Go catalogue service mining memcached + MongoDB.
    let catalogue = app.service("catalogue").workers(32).instances(2).build();
    let catalogue_get = app.endpoint(
        catalogue,
        "get",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![
            Step::work_us(90.0),
            Step::cache_lookup(
                mc_cat_get,
                0.88,
                vec![
                    Step::call(mg_cat_find, 256.0),
                    Step::call(mc_cat_set, 4096.0),
                ],
            ),
            Step::call(inventory_check, 64.0),
        ],
    );

    let (_media, media_run) = add_leaf(
        &mut app,
        "media",
        UarchProfile::vision(),
        1,
        150.0,
        96.0 * 1024.0,
    );
    let (_ads, ads_run) = add_leaf(
        &mut app,
        "ads",
        UarchProfile::managed_runtime(),
        1,
        250.0,
        2048.0,
    );
    let (_reco, reco_run) = add_leaf(
        &mut app,
        "recommender",
        UarchProfile::recommender(),
        2,
        1800.0,
        1024.0,
    );
    let (_discounts, discounts_run) = add_leaf(
        &mut app,
        "discounts",
        UarchProfile::tiny_service(),
        1,
        25.0,
        512.0,
    );
    let (_trending, trending_run) = add_leaf(
        &mut app,
        "trending",
        UarchProfile::managed_runtime(),
        1,
        200.0,
        2048.0,
    );

    let reviews = app.service("reviews").workers(16).build();
    let reviews_get = app.endpoint(
        reviews,
        "get",
        Dist::log_normal(8192.0, 0.4),
        vec![
            Step::work_us(45.0),
            Step::call(mg_media_find, 128.0),
            // A few fetches find a missing thumbnail and persist a
            // regenerated one.
            Step::Branch {
                p: 0.05,
                then: Arc::new(vec![Step::call(mg_media_ins, 64.0 * 1024.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let search = app
        .service("search")
        .profile(UarchProfile::search())
        .workers(16)
        .build();
    let search_q = app.endpoint(
        search,
        "query",
        Dist::log_normal(8192.0, 0.5),
        vec![
            Step::work_us(120.0),
            Step::ParCall {
                calls: vec![
                    (xapian_q, Dist::constant(256.0)),
                    (xapian_q, Dist::constant(256.0)),
                ],
            },
        ],
    );

    // Java wishlist: trivially simple (near-zero i-cache misses, §4).
    let wishlist = app
        .service("wishlist")
        .profile(UarchProfile::tiny_service())
        .workers(8)
        .build();
    let wishlist_run = app.endpoint(
        wishlist,
        "toggle",
        Dist::constant(256.0),
        vec![Step::work_us(20.0), Step::call(mg_cart_ins, 128.0)],
    );

    let login = app.service("login").workers(16).build();
    let login_run = app.endpoint(
        login,
        "auth",
        Dist::constant(256.0),
        vec![
            Step::work_us(80.0),
            Step::cache_lookup(
                mc_sess_get,
                0.75,
                vec![
                    Step::call(mg_acct_find, 128.0),
                    Step::call(mc_sess_set, 256.0),
                    // Persist the fresh session / last-login on the account.
                    Step::call(mg_acct_ins, 128.0),
                ],
            ),
        ],
    );

    let account = app.service("accountInfo").workers(16).build();
    let account_get = app.endpoint(
        account,
        "get",
        Dist::log_normal(1024.0, 0.4),
        vec![Step::work_us(35.0), Step::call(mg_acct_find, 128.0)],
    );

    let cart = app
        .service("cart")
        .profile(UarchProfile::managed_runtime())
        .workers(32)
        .instances(2)
        .build();
    let cart_add = app.endpoint(
        cart,
        "add",
        Dist::constant(512.0),
        vec![
            Step::work_us(70.0),
            Step::call(mc_cart_set, 512.0),
            Step::Branch {
                p: 0.3,
                then: Arc::new(vec![Step::call(mg_cart_ins, 512.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );
    let cart_get = app.endpoint(
        cart,
        "get",
        Dist::log_normal(2048.0, 0.4),
        vec![
            Step::work_us(50.0),
            Step::cache_lookup(
                mc_cart_get,
                0.9,
                vec![
                    Step::call(mg_cart_find, 128.0),
                    Step::call(mc_cart_set, 512.0),
                ],
            ),
        ],
    );

    let (_tax, tax_run) = add_leaf(
        &mut app,
        "taxCalculator",
        UarchProfile::tiny_service(),
        1,
        40.0,
        128.0,
    );
    let (_currency, currency_run) = add_leaf(
        &mut app,
        "currencyConverter",
        UarchProfile::tiny_service(),
        1,
        15.0,
        64.0,
    );
    let (_fraud, fraud_run) = add_leaf(
        &mut app,
        "fraudDetection",
        UarchProfile::recommender(),
        1,
        900.0,
        128.0,
    );
    let (_addr, addr_run) = add_leaf(
        &mut app,
        "addressVerify",
        UarchProfile::tiny_service(),
        1,
        60.0,
        128.0,
    );
    let (_txid, txid_run) = add_leaf(
        &mut app,
        "transactionID",
        UarchProfile::tiny_service(),
        1,
        15.0,
        64.0,
    );

    // Go payment service with an external authorization round trip.
    let payment = app
        .service("payment")
        .profile(UarchProfile::managed_runtime())
        .workers(32)
        .instances(2)
        .build();
    let payment_run = app.endpoint(
        payment,
        "authorize",
        Dist::constant(512.0),
        vec![
            Step::work_us(150.0),
            Step::ParCall {
                calls: vec![
                    (fraud_run, Dist::constant(256.0)),
                    (currency_run, Dist::constant(64.0)),
                    (tax_run, Dist::constant(64.0)),
                ],
            },
            Step::call(txid_run, 64.0),
            // External payment-gateway round trip.
            Step::Io {
                ns: Dist::log_normal(3_000_000.0, 0.5),
            },
        ],
    );

    let (_loyalty, loyalty_run) = add_leaf(
        &mut app,
        "loyaltyPoints",
        UarchProfile::tiny_service(),
        1,
        30.0,
        64.0,
    );
    let (_notify, notify_run) = add_leaf(
        &mut app,
        "notifications",
        UarchProfile::managed_runtime(),
        1,
        120.0,
        64.0,
    );

    let shipping = app
        .service("shipping")
        .profile(UarchProfile::managed_runtime())
        .workers(16)
        .build();
    let shipping_run = app.endpoint(
        shipping,
        "arrange",
        Dist::constant(512.0),
        vec![
            Step::work_us(100.0),
            Step::call(addr_run, 128.0),
            // Look up carrier rates for the destination, then book.
            Step::call(mg_ship_find, 128.0),
            Step::call(mg_ship_ins, 512.0),
        ],
    );

    let invoicing = app
        .service("invoicing")
        .profile(UarchProfile::managed_runtime())
        .workers(16)
        .build();
    let invoicing_run = app.endpoint(
        invoicing,
        "issue",
        Dist::log_normal(4096.0, 0.3),
        vec![
            Step::work_us(140.0),
            // Fetch the next invoice sequence number, then issue.
            Step::call(mg_inv_find, 128.0),
            Step::call(mg_inv_ins, 1024.0),
        ],
    );

    let queue_master = app
        .service("queueMaster")
        .profile(UarchProfile::managed_runtime())
        // Synchronization: orders are serialized, processed and committed
        // in order — a single logical worker.
        .workers(1)
        .build();
    let qm_commit = app.endpoint(
        queue_master,
        "commit",
        Dist::constant(128.0),
        vec![
            Step::work_us(80.0),
            Step::call(oq_push, 1024.0),
            Step::call(mg_orders_ins, 1024.0),
        ],
    );

    let orders = app.service("orders").workers(32).instances(2).build();
    let orders_place = app.endpoint(
        orders,
        "place",
        Dist::constant(1024.0),
        vec![
            Step::work_us(120.0),
            Step::call(cart_get, 128.0),
            Step::call(payment_run, 512.0),
            Step::call(shipping_run, 512.0),
            Step::call(invoicing_run, 512.0),
            Step::call(qm_commit, 1024.0),
            // Commit side effects: decrement stock (write-through to the
            // inventory cache), bump the item's sales rank, and read the
            // order back for the confirmation page.
            Step::call(mg_invty_ins, 128.0),
            Step::call(mc_invty_set, 256.0),
            Step::call(mg_cat_ins, 256.0),
            Step::call(mg_orders_find, 128.0),
            Step::ParCall {
                calls: vec![
                    (notify_run, Dist::constant(128.0)),
                    (loyalty_run, Dist::constant(64.0)),
                ],
            },
        ],
    );

    let (_social, social_run) = add_leaf(
        &mut app,
        "socialNet",
        UarchProfile::managed_runtime(),
        1,
        180.0,
        1024.0,
    );

    // ---- front tier -----------------------------------------------------------
    let front = app
        .service("front-end")
        .profile(UarchProfile::managed_runtime())
        .event_driven()
        .workers(256)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(2048)
        .build();
    let fe_browse = app.endpoint(
        front,
        "browse",
        Dist::log_normal(32.0 * 1024.0, 0.4),
        vec![
            Step::work_us(140.0),
            Step::call(catalogue_get, 256.0),
            Step::ParCall {
                calls: vec![
                    (media_run, Dist::constant(128.0)),
                    (discounts_run, Dist::constant(64.0)),
                    (trending_run, Dist::constant(64.0)),
                    (reco_run, Dist::constant(128.0)),
                    (ads_run, Dist::constant(128.0)),
                    (reviews_get, Dist::constant(128.0)),
                ],
            },
        ],
    );
    let fe_search = app.endpoint(
        front,
        "search",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![
            Step::work_us(110.0),
            Step::call(search_q, 256.0),
            Step::call(ads_run, 128.0),
        ],
    );
    let fe_order = app.endpoint(
        front,
        "placeOrder",
        Dist::constant(2048.0),
        vec![
            Step::work_us(160.0),
            Step::call(login_run, 256.0),
            Step::call(account_get, 128.0),
            Step::call(orders_place, 1024.0),
        ],
    );
    let fe_wishlist = app.endpoint(
        front,
        "wishlist",
        Dist::constant(512.0),
        vec![Step::work_us(60.0), Step::call(wishlist_run, 256.0)],
    );
    let fe_cart = app.endpoint(
        front,
        "cartAdd",
        Dist::constant(512.0),
        vec![
            Step::work_us(70.0),
            Step::call(cart_add, 512.0),
            Step::call(social_run, 128.0),
        ],
    );
    let fe_login = app.endpoint(
        front,
        "login",
        Dist::constant(256.0),
        vec![Step::work_us(60.0), Step::call(login_run, 256.0)],
    );

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(fe_browse, BROWSE, 55.0, Dist::constant(384.0));
    mix.add(fe_search, SEARCH, 8.0, Dist::constant(256.0));
    mix.add(fe_order, PLACE_ORDER, 12.0, Dist::constant(1024.0));
    mix.add(fe_wishlist, WISHLIST, 10.0, Dist::constant(256.0));
    mix.add(fe_cart, CART_ADD, 10.0, Dist::constant(512.0));
    mix.add(fe_login, LOGIN, 5.0, Dist::constant(256.0));

    BuiltApp {
        frontend: front,
        qos_p99: SimDuration::from_millis(40),
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_41_services() {
        let app = ecommerce();
        assert_eq!(app.spec.service_count(), 41);
        for name in [
            "front-end",
            "catalogue",
            "queueMaster",
            "orderQueue",
            "payment",
            "wishlist",
            "recommender",
        ] {
            assert!(app.spec.service_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn order_path_is_a_chain_through_payment_and_queue() {
        let app = ecommerce();
        let edges = app.spec.edges();
        let orders = app.service("orders");
        for downstream in ["cart", "payment", "shipping", "invoicing", "queueMaster"] {
            assert!(
                edges.contains(&(orders, app.service(downstream))),
                "orders must call {downstream}"
            );
        }
        let qm = app.service("queueMaster");
        assert!(edges.contains(&(qm, app.service("orderQueue"))));
    }

    #[test]
    fn queue_master_is_serialized() {
        let app = ecommerce();
        let qm = app.spec.service(app.service("queueMaster"));
        assert!(matches!(qm.workers, dsb_core::WorkerPolicy::Fixed(1)));
    }
}
