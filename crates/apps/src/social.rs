//! §3.2 Social Network: a broadcast-style social network with
//! uni-directional follow relationships — 36 unique microservices.
//!
//! Matches the Fig. 4 architecture: clients hit an nginx front-end over
//! HTTP, which talks FastCGI to a php-fpm tier; everything downstream of
//! php-fpm is Thrift RPC. Posts are composed from unique-id / text /
//! url-shorten / user-tag / media services, stored in memcached+MongoDB
//! pairs, and broadcast to followers' home timelines; read paths serve
//! timelines and posts through the caching tier, with ads, recommender,
//! search (Xapian), and user/social-graph services alongside.

use std::sync::Arc;

use dsb_core::{AppBuilder, LbPolicy, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_leaf, add_memcached, add_mongodb, BuiltApp};

/// Compose a text-only post.
pub const COMPOSE_TEXT: RequestType = RequestType(0);
/// Compose a post with an embedded image.
pub const COMPOSE_IMAGE: RequestType = RequestType(1);
/// Compose a post with an embedded video (few MB, like production limits).
pub const COMPOSE_VIDEO: RequestType = RequestType(2);
/// Read the caller's home timeline.
pub const READ_TIMELINE: RequestType = RequestType(3);
/// Read a single post.
pub const READ_POST: RequestType = RequestType(4);
/// Repost: read an existing post, prepend, re-broadcast (the paper's
/// longest query type).
pub const REPOST: RequestType = RequestType(5);
/// Log in.
pub const LOGIN: RequestType = RequestType(6);
/// Follow another user.
pub const FOLLOW: RequestType = RequestType(7);
/// Full-text search.
pub const SEARCH: RequestType = RequestType(8);

/// Builds the Social Network application.
pub fn social_network() -> BuiltApp {
    let mut app = AppBuilder::new("social-network");

    // ---- storage tier (back-end) ----------------------------------------
    // Shard counts follow the paper's deployment: the post and timeline
    // tiers take the read fan-out (hot), the rest run the 2-shard floor.
    let (_mc_posts, mc_posts_get, mc_posts_set) = add_memcached(&mut app, "memcached-posts", 3);
    let (_mg_posts, mg_posts_find, mg_posts_ins) = add_mongodb(&mut app, "mongodb-posts", 2);
    let (_mc_users, mc_users_get, mc_users_set) = add_memcached(&mut app, "memcached-users", 2);
    let (_mg_users, mg_users_find, mg_users_ins) = add_mongodb(&mut app, "mongodb-users", 2);
    let (_mc_tl, mc_tl_get, mc_tl_set) = add_memcached(&mut app, "memcached-timeline", 3);
    let (_mg_tl, mg_tl_find, mg_tl_ins) = add_mongodb(&mut app, "mongodb-timeline", 2);
    let (_mc_sg, mc_sg_get, mc_sg_set) = add_memcached(&mut app, "memcached-social-graph", 2);
    let (_mg_sg, mg_sg_find, mg_sg_ins) = add_mongodb(&mut app, "mongodb-social-graph", 2);
    let (_mc_media, mc_media_get, mc_media_set) = add_memcached(&mut app, "memcached-media", 2);
    let (_mg_media, mg_media_find, mg_media_ins) = add_mongodb(&mut app, "mongodb-media", 2);

    // Xapian search indices (the paper shards them as index0..indexN).
    let xapian = app
        .service("xapian-index")
        .profile(UarchProfile::search())
        .workers(8)
        .instances(4)
        .lb(LbPolicy::Partition)
        .build();
    let xapian_q = app.endpoint(
        xapian,
        "query",
        Dist::log_normal(4096.0, 0.6),
        vec![Step::work_us(350.0)],
    );

    // ---- mid tier --------------------------------------------------------
    let posts_storage = app.service("postsStorage").workers(32).instances(2).build();
    let ps_store = app.endpoint(
        posts_storage,
        "store",
        Dist::constant(128.0),
        vec![
            Step::work_us(40.0),
            // Durable insert first, then the cache: the reverse order
            // is the DSB016 write-visibility window.
            Step::call(mg_posts_ins, 1024.0),
            Step::call(mc_posts_set, 1024.0),
        ],
    );
    let ps_fetch = app.endpoint(
        posts_storage,
        "fetch",
        Dist::log_normal(2048.0, 0.6),
        vec![
            Step::work_us(25.0),
            Step::cache_lookup(
                mc_posts_get,
                0.90,
                vec![
                    Step::call(mg_posts_find, 256.0),
                    Step::call(mc_posts_set, 1024.0),
                ],
            ),
        ],
    );

    let (_unique_id, unique_id_run) = add_leaf(
        &mut app,
        "uniqueID",
        UarchProfile::tiny_service(),
        1,
        15.0,
        64.0,
    );
    let (_text, text_run) = add_leaf(
        &mut app,
        "text",
        UarchProfile::microservice_default(),
        2,
        60.0,
        512.0,
    );
    let (_url, url_run) = add_leaf(
        &mut app,
        "urlShorten",
        UarchProfile::tiny_service(),
        1,
        30.0,
        128.0,
    );

    let user_tag = app.service("userTag").workers(16).build();
    let user_tag_run = app.endpoint(
        user_tag,
        "tag",
        Dist::constant(128.0),
        vec![
            Step::work_us(25.0),
            // 30% of posts tag someone -> verify against the user DB.
            Step::Branch {
                p: 0.3,
                then: Arc::new(vec![Step::call(mg_users_find, 128.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let image = app
        .service("image")
        .profile(UarchProfile::vision())
        .workers(8)
        .instances(2)
        .build();
    let image_run = app.endpoint(
        image,
        "process",
        Dist::constant(256.0),
        vec![
            Step::work_us(300.0),
            Step::call(mg_media_ins, 256.0 * 1024.0),
            Step::call(mc_media_set, 64.0 * 1024.0),
        ],
    );
    let video = app
        .service("video")
        .profile(UarchProfile::vision())
        .workers(8)
        .instances(2)
        .build();
    let video_run = app.endpoint(
        video,
        "process",
        Dist::constant(256.0),
        vec![
            Step::work_us(1200.0),
            Step::call(mg_media_ins, 2.0 * 1024.0 * 1024.0),
            Step::call(mc_media_set, 128.0 * 1024.0),
        ],
    );

    let (_ads, ads_run) = add_leaf(
        &mut app,
        "ads",
        UarchProfile::managed_runtime(),
        2,
        250.0,
        2048.0,
    );
    let (_recommender, recommender_run) = add_leaf(
        &mut app,
        "recommender",
        UarchProfile::recommender(),
        2,
        1500.0,
        1024.0,
    );

    let search = app
        .service("search")
        .profile(UarchProfile::search())
        .workers(16)
        .build();
    let search_q = app.endpoint(
        search,
        "query",
        Dist::log_normal(8192.0, 0.5),
        vec![
            Step::work_us(120.0),
            Step::ParCall {
                calls: vec![
                    (xapian_q, Dist::constant(256.0)),
                    (xapian_q, Dist::constant(256.0)),
                ],
            },
            Step::work_us(80.0),
        ],
    );

    let login = app.service("login").workers(16).build();
    let login_run = app.endpoint(
        login,
        "auth",
        Dist::constant(256.0),
        vec![
            Step::work_us(80.0),
            Step::cache_lookup(
                mc_users_get,
                0.8,
                vec![
                    Step::call(mg_users_find, 128.0),
                    Step::call(mc_users_set, 512.0),
                ],
            ),
        ],
    );

    let user_info = app.service("userInfo").workers(16).instances(2).build();
    let user_info_get = app.endpoint(
        user_info,
        "get",
        Dist::log_normal(1024.0, 0.4),
        vec![
            Step::work_us(30.0),
            Step::cache_lookup(
                mc_users_get,
                0.92,
                vec![
                    Step::call(mg_users_find, 128.0),
                    Step::call(mc_users_set, 512.0),
                ],
            ),
        ],
    );

    let blocked = app.service("blockedUsers").workers(16).build();
    let blocked_check = app.endpoint(
        blocked,
        "check",
        Dist::constant(64.0),
        vec![
            Step::work_us(20.0),
            Step::cache_lookup(
                mc_sg_get,
                0.95,
                vec![Step::call(mg_sg_find, 128.0), Step::call(mc_sg_set, 256.0)],
            ),
        ],
    );

    let user_stats = app.service("userStats").workers(8).build();
    let user_stats_bump = app.endpoint(
        user_stats,
        "bump",
        Dist::constant(64.0),
        vec![
            Step::work_us(20.0),
            Step::call(mc_users_set, 128.0),
            // Counters accumulate in cache; ~10% of bumps flush the
            // batch through to the user store.
            Step::Branch {
                p: 0.1,
                then: Arc::new(vec![Step::call(mg_users_ins, 128.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let favorite = app.service("favorite").workers(8).build();
    let favorite_run = app.endpoint(
        favorite,
        "favorite",
        Dist::constant(64.0),
        vec![
            Step::work_us(20.0),
            Step::call(mc_posts_set, 128.0),
            Step::Branch {
                p: 0.3,
                then: Arc::new(vec![Step::call(mg_posts_ins, 128.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let read_post = app.service("readPost").workers(32).instances(2).build();
    let read_post_run = app.endpoint(
        read_post,
        "read",
        Dist::log_normal(4096.0, 0.5),
        vec![
            Step::work_us(30.0),
            Step::call(ps_fetch, 128.0),
            // ~40% of posts embed media, served through the media cache.
            Step::Branch {
                p: 0.4,
                then: Arc::new(vec![Step::cache_lookup(
                    mc_media_get,
                    0.92,
                    vec![
                        Step::call(mg_media_find, 256.0),
                        Step::call(mc_media_set, 64.0 * 1024.0),
                    ],
                )]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let write_tl = app.service("writeTimeline").workers(16).build();
    let write_tl_run = app.endpoint(
        write_tl,
        "write",
        Dist::constant(64.0),
        vec![
            Step::work_us(25.0),
            Step::call(mc_tl_set, 512.0),
            Step::Branch {
                p: 0.2,
                then: Arc::new(vec![Step::call(mg_tl_ins, 512.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );

    let write_home_tl = app
        .service("writeHomeTimeline")
        .workers(32)
        .instances(4)
        .build();
    let write_home_tl_run = app.endpoint(
        write_home_tl,
        "fanout",
        Dist::constant(64.0),
        vec![Step::work_us(20.0), Step::call(mc_tl_set, 512.0)],
    );

    let read_tl = app.service("readTimeline").workers(32).instances(2).build();
    let read_tl_run = app.endpoint(
        read_tl,
        "read",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![
            Step::work_us(50.0),
            Step::cache_lookup(
                mc_tl_get,
                0.85,
                vec![Step::call(mg_tl_find, 256.0), Step::call(mc_tl_set, 512.0)],
            ),
            // Hydrate ~8 posts in parallel.
            Step::FanCall {
                target: read_post_run,
                req_bytes: Dist::constant(128.0),
                n: Dist::log_normal(8.0, 0.4),
            },
        ],
    );

    let write_graph = app.service("writeGraph").workers(16).build();
    let write_graph_run = app.endpoint(
        write_graph,
        "update",
        Dist::constant(64.0),
        vec![
            Step::work_us(30.0),
            Step::call(mg_sg_ins, 256.0),
            Step::call(mc_sg_set, 256.0),
        ],
    );

    let follow = app.service("followUser").workers(8).build();
    let follow_run = app.endpoint(
        follow,
        "follow",
        Dist::constant(64.0),
        vec![Step::work_us(30.0), Step::call(write_graph_run, 128.0)],
    );

    let user_mention = app.service("userMention").workers(8).build();
    let user_mention_run = app.endpoint(
        user_mention,
        "mention",
        Dist::constant(64.0),
        vec![Step::work_us(20.0), Step::call(user_info_get, 128.0)],
    );

    let compose = app.service("composePost").workers(32).instances(2).build();
    let compose_run = app.endpoint(
        compose,
        "compose",
        Dist::constant(512.0),
        vec![
            Step::work_us(70.0),
            Step::ParCall {
                calls: vec![
                    (unique_id_run, Dist::constant(64.0)),
                    (text_run, Dist::constant(512.0)),
                    (user_tag_run, Dist::constant(128.0)),
                    (url_run, Dist::constant(128.0)),
                    (user_mention_run, Dist::constant(128.0)),
                ],
            },
            Step::call(ps_store, 1024.0),
            // Write the author's own timeline, then broadcast to followers.
            Step::call(write_tl_run, 256.0),
            Step::FanCall {
                target: write_home_tl_run,
                req_bytes: Dist::constant(256.0),
                // Follower count: median 10, heavy tail into the hundreds.
                n: Dist::log_normal(10.0, 1.0),
            },
        ],
    );

    // ---- front tier -------------------------------------------------------
    let php = app
        .service("php-fpm")
        .profile(UarchProfile::managed_runtime())
        .blocking()
        .workers(64)
        .instances(4)
        .protocol(Protocol::Fcgi)
        .conn_limit(256)
        .build();
    let php_resp = |bytes: f64| Dist::log_normal(bytes, 0.4);
    let php_compose_text = app.endpoint(
        php,
        "composeText",
        php_resp(512.0),
        vec![
            Step::work_us(90.0),
            Step::call(user_info_get, 128.0),
            Step::call(compose_run, 1024.0),
        ],
    );
    let php_compose_image = app.endpoint(
        php,
        "composeImage",
        php_resp(512.0),
        vec![
            Step::work_us(110.0),
            Step::call(user_info_get, 128.0),
            Step::call(image_run, 256.0 * 1024.0),
            Step::call(compose_run, 1024.0),
        ],
    );
    let php_compose_video = app.endpoint(
        php,
        "composeVideo",
        php_resp(512.0),
        vec![
            Step::work_us(130.0),
            Step::call(user_info_get, 128.0),
            Step::call(video_run, 2.0 * 1024.0 * 1024.0),
            Step::call(compose_run, 1024.0),
        ],
    );
    let php_read_tl = app.endpoint(
        php,
        "readTimeline",
        php_resp(32.0 * 1024.0),
        vec![
            Step::work_us(80.0),
            Step::ParCall {
                calls: vec![
                    (read_tl_run, Dist::constant(256.0)),
                    (ads_run, Dist::constant(128.0)),
                    (recommender_run, Dist::constant(128.0)),
                ],
            },
            Step::call(user_stats_bump, 64.0),
        ],
    );
    let php_read_post = app.endpoint(
        php,
        "readPost",
        php_resp(8.0 * 1024.0),
        vec![
            Step::work_us(60.0),
            Step::call(blocked_check, 64.0),
            Step::call(read_post_run, 128.0),
            Step::Branch {
                p: 0.2,
                then: Arc::new(vec![Step::call(favorite_run, 64.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );
    let php_repost = app.endpoint(
        php,
        "repost",
        php_resp(1024.0),
        vec![
            Step::work_us(100.0),
            Step::call(read_post_run, 128.0),
            Step::call(compose_run, 1024.0),
        ],
    );
    let php_login = app.endpoint(
        php,
        "login",
        php_resp(256.0),
        vec![Step::work_us(50.0), Step::call(login_run, 256.0)],
    );
    let php_follow = app.endpoint(
        php,
        "follow",
        php_resp(128.0),
        vec![Step::work_us(50.0), Step::call(follow_run, 128.0)],
    );
    let php_search = app.endpoint(
        php,
        "search",
        php_resp(16.0 * 1024.0),
        vec![
            Step::work_us(70.0),
            Step::call(search_q, 256.0),
            Step::call(ads_run, 128.0),
        ],
    );

    let nginx = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(512)
        .instances(2)
        .protocol(Protocol::Http1)
        .conn_limit(2048)
        .build();
    let mut front = |name: &str, resp: f64, php_ep| {
        app.endpoint(
            nginx,
            name,
            Dist::log_normal(resp, 0.4),
            vec![Step::work_us(25.0), Step::call(php_ep, 512.0)],
        )
    };
    let ng_compose_text = front("composeText", 512.0, php_compose_text);
    let ng_compose_image = front("composeImage", 512.0, php_compose_image);
    let ng_compose_video = front("composeVideo", 512.0, php_compose_video);
    let ng_read_tl = front("readTimeline", 32.0 * 1024.0, php_read_tl);
    let ng_read_post = front("readPost", 8.0 * 1024.0, php_read_post);
    let ng_repost = front("repost", 1024.0, php_repost);
    let ng_login = front("login", 256.0, php_login);
    let ng_follow = front("follow", 128.0, php_follow);
    let ng_search = front("search", 16.0 * 1024.0, php_search);

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(ng_read_tl, READ_TIMELINE, 40.0, Dist::constant(384.0));
    mix.add(ng_read_post, READ_POST, 15.0, Dist::constant(256.0));
    mix.add(ng_compose_text, COMPOSE_TEXT, 18.0, Dist::constant(512.0));
    mix.add(
        ng_compose_image,
        COMPOSE_IMAGE,
        6.0,
        Dist::log_normal(256.0 * 1024.0, 0.5),
    );
    mix.add(
        ng_compose_video,
        COMPOSE_VIDEO,
        2.0,
        Dist::log_normal(2.0 * 1024.0 * 1024.0, 0.4),
    );
    mix.add(ng_repost, REPOST, 5.0, Dist::constant(256.0));
    mix.add(ng_login, LOGIN, 6.0, Dist::constant(256.0));
    mix.add(ng_follow, FOLLOW, 3.0, Dist::constant(128.0));
    mix.add(ng_search, SEARCH, 5.0, Dist::constant(256.0));

    BuiltApp {
        frontend: nginx,
        qos_p99: SimDuration::from_millis(50),
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_36_services_and_expected_names() {
        let app = social_network();
        assert_eq!(app.spec.service_count(), 36);
        for name in [
            "nginx",
            "php-fpm",
            "composePost",
            "uniqueID",
            "urlShorten",
            "writeHomeTimeline",
            "memcached-posts",
            "mongodb-social-graph",
            "xapian-index",
            "recommender",
        ] {
            assert!(app.spec.service_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn frontend_is_nginx_and_last_in_order() {
        let app = social_network();
        assert_eq!(app.name_of(app.frontend), "nginx");
        assert_eq!(*app.order.last().unwrap(), app.frontend);
    }

    #[test]
    fn mix_covers_nine_query_types() {
        let app = social_network();
        assert_eq!(app.mix.entries().len(), 9);
        let total: f64 = app.mix.entries().iter().map(|e| e.weight).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn compose_reaches_fanout_tier() {
        let app = social_network();
        let compose = app.service("composePost");
        let fanout = app.service("writeHomeTimeline");
        assert!(app.spec.edges().contains(&(compose, fanout)));
    }
}
