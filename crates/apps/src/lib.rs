//! # dsb-apps — the DeathStarBench application suite
//!
//! The six end-to-end services of §3, expressed as `dsb-core` application
//! graphs with calibrated per-tier demands, plus the auxiliary applications
//! the paper's experiments compare against:
//!
//! | Module | Paper section | Services |
//! |---|---|---|
//! | [`social`] | §3.2 Social Network | 36 |
//! | [`media`] | §3.3 Media Service | 38 |
//! | [`ecommerce`] | §3.4 E-commerce | 41 |
//! | [`banking`] | §3.5 Banking | 34 |
//! | [`swarm`] | §3.6 Swarm (edge & cloud variants) | 21 / 25 |
//! | [`monolith`] | §4/§6 monolithic counterparts | 1 + back-ends |
//! | [`singles`] | §4 single-tier baselines (nginx, memcached, MongoDB, Xapian, recommender) | 1 each |
//! | [`twotier`] | §6 Fig. 17 backpressure example | 2 |
//! | [`synthetic`] | §8 parameterized "death star" graphs | configurable |
//!
//! Every constructor returns a [`BuiltApp`]: the [`AppSpec`] plus the
//! app's client [`QueryMix`], its end-to-end QoS target, and the service
//! ordering used by the paper's heatmap figures (back-end at the top,
//! front-end at the bottom).

#![warn(missing_docs)]

use dsb_core::{AppBuilder, AppSpec, EndpointRef, ServiceId, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

pub mod banking;
pub mod defects;
pub mod ecommerce;
pub mod media;
pub mod monolith;
pub mod singles;
pub mod social;
pub mod swarm;
pub mod synthetic;
pub mod twotier;

/// A fully-assembled benchmark application.
#[derive(Debug, Clone)]
pub struct BuiltApp {
    /// The service graph.
    pub spec: AppSpec,
    /// The client-side query mix (weights model the §3.8 query diversity).
    pub mix: QueryMix,
    /// End-to-end p99 QoS target.
    pub qos_p99: SimDuration,
    /// The front-end (entry) service.
    pub frontend: ServiceId,
    /// Services ordered back-end first, front-end last (heatmap rows).
    pub order: Vec<ServiceId>,
}

impl BuiltApp {
    /// Looks up a service id by name.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown (a typo in an experiment).
    pub fn service(&self, name: &str) -> ServiceId {
        self.spec
            .service_by_name(name)
            .unwrap_or_else(|| panic!("unknown service {name} in {}", self.spec.name))
    }

    /// Name of a service id.
    pub fn name_of(&self, id: ServiceId) -> &str {
        &self.spec.service(id).name
    }

    /// Default SLOs: one p99 objective per request type in the query mix,
    /// each set to the app's end-to-end [`qos_p99`](Self::qos_p99) target.
    /// Feed them to a [`dsb_telemetry::Scraper`] to get burn-rate alerts
    /// out of the box.
    pub fn slos(&self) -> Vec<dsb_telemetry::Slo> {
        let mut seen = std::collections::BTreeSet::new();
        self.mix
            .entries()
            .iter()
            .filter(|e| seen.insert(e.rtype.0))
            .map(|e| dsb_telemetry::Slo::p99(e.rtype, self.qos_p99))
            .collect()
    }
}

/// The eight application variants pinned by the repo's golden fixtures,
/// in fixture order: `(fixture_name, golden_qps, app)`. The qps values
/// match `tests/goldens.rs`, so static capacity checks see the same
/// offered load the golden traces were produced under.
pub fn all_builtin() -> Vec<(&'static str, f64, BuiltApp)> {
    vec![
        ("social_network", 40.0, social::social_network()),
        ("media_service", 40.0, media::media_service()),
        ("ecommerce", 40.0, ecommerce::ecommerce()),
        ("banking", 40.0, banking::banking()),
        ("swarm_edge", 15.0, swarm::swarm(swarm::SwarmVariant::Edge)),
        (
            "swarm_cloud",
            15.0,
            swarm::swarm(swarm::SwarmVariant::Cloud),
        ),
        ("social_monolith", 40.0, monolith::social_monolith()),
        ("twotier", 200.0, twotier::twotier(64, 1024)),
    ]
}

/// Adds a memcached-style in-memory cache; returns `(id, get, set)`.
///
/// Event-driven, kernel-heavy profile, reached over Thrift RPC — the
/// standard caching tier in every application of the suite.
pub fn add_memcached(
    app: &mut AppBuilder,
    name: &str,
    instances: u32,
) -> (ServiceId, EndpointRef, EndpointRef) {
    debug_assert!(
        instances >= 2,
        "cache tier `{name}` is partitioned: give it at least 2 shards"
    );
    let id = app
        .service(name)
        .profile(UarchProfile::memcached())
        .event_driven()
        .workers(16)
        .instances(instances)
        .protocol(Protocol::ThriftRpc)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let get = app.endpoint(
        id,
        "get",
        Dist::log_normal(1024.0, 0.8),
        vec![Step::Compute {
            ns: Dist::log_normal(6_000.0, 0.3),
            domain: dsb_uarch::ExecDomain::User,
        }],
    );
    let set = app.endpoint(
        id,
        "set",
        Dist::constant(64.0),
        vec![Step::Compute {
            ns: Dist::log_normal(9_000.0, 0.3),
            domain: dsb_uarch::ExecDomain::User,
        }],
    );
    (id, get, set)
}

/// Adds a MongoDB-style persistent store; returns `(id, find, insert)`.
///
/// Blocking thread pool, I/O-bound (frequency-insensitive per Fig. 12),
/// sharded by partition key.
pub fn add_mongodb(
    app: &mut AppBuilder,
    name: &str,
    instances: u32,
) -> (ServiceId, EndpointRef, EndpointRef) {
    debug_assert!(
        instances >= 2,
        "store tier `{name}` is partitioned: give it at least 2 shards"
    );
    let id = app
        .service(name)
        .profile(UarchProfile::mongodb())
        .blocking()
        .workers(16)
        .instances(instances)
        .protocol(Protocol::ThriftRpc)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let find = app.endpoint(
        id,
        "find",
        Dist::log_normal(2048.0, 0.8),
        vec![
            Step::Compute {
                ns: Dist::log_normal(120_000.0, 0.4),
                domain: dsb_uarch::ExecDomain::User,
            },
            Step::Io {
                ns: Dist::log_normal(1_200_000.0, 0.5),
            },
        ],
    );
    let insert = app.endpoint(
        id,
        "insert",
        Dist::constant(128.0),
        vec![
            Step::Compute {
                ns: Dist::log_normal(150_000.0, 0.4),
                domain: dsb_uarch::ExecDomain::User,
            },
            Step::Io {
                ns: Dist::log_normal(1_800_000.0, 0.5),
            },
        ],
    );
    (id, find, insert)
}

/// Adds a simple single-endpoint RPC microservice whose handler is pure
/// compute; returns `(id, endpoint)`. The workhorse for the suite's many
/// small single-concern tiers.
pub fn add_leaf(
    app: &mut AppBuilder,
    name: &str,
    profile: UarchProfile,
    instances: u32,
    work_us: f64,
    resp_bytes: f64,
) -> (ServiceId, EndpointRef) {
    let id = app
        .service(name)
        .profile(profile)
        .blocking()
        .workers(16)
        .instances(instances)
        .protocol(Protocol::ThriftRpc)
        .build();
    let ep = app.endpoint(
        id,
        "run",
        Dist::log_normal(resp_bytes, 0.5),
        vec![Step::work_us(work_us)],
    );
    (id, ep)
}

/// Adds a MySQL-style relational database; returns `(id, query)`.
pub fn add_mysql(app: &mut AppBuilder, name: &str, instances: u32) -> (ServiceId, EndpointRef) {
    debug_assert!(
        instances >= 2,
        "database tier `{name}` is partitioned: give it at least 2 shards"
    );
    let id = app
        .service(name)
        .profile(UarchProfile::mongodb())
        .blocking()
        .workers(32)
        .instances(instances)
        .protocol(Protocol::ThriftRpc)
        .lb(dsb_core::LbPolicy::Partition)
        .build();
    let query = app.endpoint(
        id,
        "query",
        Dist::log_normal(4096.0, 0.8),
        vec![
            Step::Compute {
                ns: Dist::log_normal(200_000.0, 0.4),
                domain: dsb_uarch::ExecDomain::User,
            },
            Step::Io {
                ns: Dist::log_normal(300_000.0, 0.6),
            },
        ],
    );
    (id, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsb_core::{ClusterSpec, RequestType, Simulation};
    use dsb_simcore::SimTime;
    use dsb_workload::{OpenLoop, UserPopulation};

    fn smoke(app: BuiltApp, qps: f64, secs: u64, seed: u64) {
        let mut cluster = ClusterSpec::xeon_cluster(8, 2);
        cluster.trace_sample_prob = 0.0;
        // Swarm needs edge devices.
        for _ in 0..24 {
            cluster.machines.push(dsb_core::MachineSpec::edge_device());
        }
        let mut sim = Simulation::new(app.spec.clone(), cluster, seed);
        let mut load = OpenLoop::new(app.mix.clone(), UserPopulation::uniform(500), seed);
        load.drive(&mut sim, SimTime::ZERO, SimTime::from_secs(secs), qps);
        sim.run_until_idle();
        let mut total_issued = 0;
        let mut total_completed = 0;
        for t in 0..16u32 {
            if let Some(st) = sim.request_stats(RequestType(t)) {
                total_issued += st.issued;
                total_completed += st.completed;
            }
        }
        assert!(total_issued > 0, "{}: no requests issued", app.spec.name);
        assert_eq!(
            total_issued, total_completed,
            "{}: requests lost",
            app.spec.name
        );
    }

    #[test]
    fn social_network_smoke() {
        let app = social::social_network();
        assert_eq!(app.spec.service_count(), 36);
        smoke(app, 60.0, 5, 1);
    }

    #[test]
    fn media_service_smoke() {
        let app = media::media_service();
        assert_eq!(app.spec.service_count(), 38);
        smoke(app, 60.0, 5, 2);
    }

    #[test]
    fn ecommerce_smoke() {
        let app = ecommerce::ecommerce();
        assert_eq!(app.spec.service_count(), 41);
        smoke(app, 60.0, 5, 3);
    }

    #[test]
    fn banking_smoke() {
        let app = banking::banking();
        assert_eq!(app.spec.service_count(), 34);
        smoke(app, 60.0, 5, 4);
    }

    #[test]
    fn swarm_edge_smoke() {
        let app = swarm::swarm(swarm::SwarmVariant::Edge);
        assert_eq!(app.spec.service_count(), 21);
        smoke(app, 20.0, 5, 5);
    }

    #[test]
    fn swarm_cloud_smoke() {
        let app = swarm::swarm(swarm::SwarmVariant::Cloud);
        assert_eq!(app.spec.service_count(), 25);
        smoke(app, 20.0, 5, 6);
    }

    #[test]
    fn monolith_smoke() {
        let app = monolith::social_monolith();
        assert!(app.spec.service_count() <= 6);
        smoke(app, 60.0, 5, 7);
    }

    #[test]
    fn singles_smoke() {
        for app in [
            singles::nginx(),
            singles::memcached(),
            singles::mongodb(),
            singles::xapian(),
            singles::recommender(),
        ] {
            assert_eq!(app.spec.service_count(), 1);
            smoke(app, 200.0, 3, 8);
        }
    }

    #[test]
    fn twotier_smoke() {
        smoke(twotier::twotier(64, 1024), 200.0, 3, 9);
    }

    #[test]
    fn all_graphs_are_connected_from_frontend() {
        for app in [
            social::social_network(),
            media::media_service(),
            ecommerce::ecommerce(),
            banking::banking(),
            swarm::swarm(swarm::SwarmVariant::Edge),
            swarm::swarm(swarm::SwarmVariant::Cloud),
        ] {
            // BFS from the front-end over call edges.
            let edges = app.spec.edges();
            let n = app.spec.service_count();
            let mut seen = vec![false; n];
            let mut stack = vec![app.frontend];
            seen[app.frontend.0 as usize] = true;
            while let Some(s) = stack.pop() {
                for &(a, b) in &edges {
                    if a == s && !seen[b.0 as usize] {
                        seen[b.0 as usize] = true;
                        stack.push(b);
                    }
                }
            }
            let unreachable: Vec<&str> = (0..n)
                .filter(|&i| !seen[i])
                .map(|i| app.spec.service(ServiceId(i as u32)).name.as_str())
                .collect();
            assert!(
                unreachable.is_empty(),
                "{}: unreachable services {unreachable:?}",
                app.spec.name
            );
        }
    }

    #[test]
    fn order_covers_all_services_once() {
        for app in [
            social::social_network(),
            media::media_service(),
            ecommerce::ecommerce(),
            banking::banking(),
        ] {
            assert_eq!(
                app.order.len(),
                app.spec.service_count(),
                "{}",
                app.spec.name
            );
            let unique: std::collections::HashSet<_> = app.order.iter().collect();
            assert_eq!(unique.len(), app.order.len(), "{}", app.spec.name);
            assert_eq!(*app.order.last().unwrap(), app.frontend);
        }
    }
}
