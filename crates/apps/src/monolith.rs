//! Monolithic counterparts of Social Network and E-commerce.
//!
//! Per §4, the monoliths are Java applications that include all
//! functionality except the back-end databases in a single binary: same
//! end-to-end behaviour from the user's perspective, no internal RPCs.
//! Their µarch profile reflects the huge instruction footprint
//! ([`UarchProfile::monolith`]), and their handlers inline the summed
//! compute of the microservices they replace.

use std::sync::Arc;

use dsb_core::{AppBuilder, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::{add_memcached, add_mongodb, BuiltApp};

/// The monolithic Social Network. Request-type ids match
/// [`crate::social`], so experiments can compare like for like.
pub fn social_monolith() -> BuiltApp {
    let mut app = AppBuilder::new("social-network-monolith");

    let (_mc, mc_get, mc_set) = add_memcached(&mut app, "memcached", 4);
    let (_mg, mg_find, mg_ins) = add_mongodb(&mut app, "mongodb", 4);

    let mono = app
        .service("monolith")
        .profile(UarchProfile::monolith())
        .blocking()
        .workers(256)
        .instances(4)
        .protocol(Protocol::Http1)
        .conn_limit(4096)
        // The front load balancer adapts per instance, so a slow monolith
        // replica only degrades the requests routed to it (§8).
        .lb(dsb_core::LbPolicy::LeastOutstanding)
        .build();

    // Compose: inlined unique-id + text + tag + url + storage orchestration
    // (~300us of user work), then the same cache/DB traffic as the
    // microservice version, including the follower fan-out writes.
    let compose_body = |extra_us: f64| {
        vec![
            Step::work_us(300.0 + extra_us),
            // Durable insert before the cache set: the reverse order is
            // the DSB016 write-visibility window.
            Step::call(mg_ins, 1024.0),
            Step::call(mc_set, 1024.0),
            Step::FanCall {
                target: mc_set,
                req_bytes: Dist::constant(512.0),
                n: Dist::log_normal(10.0, 1.0),
            },
        ]
    };
    let ep_compose_text = app.endpoint(
        mono,
        "composeText",
        Dist::constant(512.0),
        compose_body(0.0),
    );
    let ep_compose_image = app.endpoint(
        mono,
        "composeImage",
        Dist::constant(512.0),
        compose_body(300.0),
    );
    let ep_compose_video = app.endpoint(
        mono,
        "composeVideo",
        Dist::constant(512.0),
        compose_body(1200.0),
    );

    // Read timeline: inlined timeline + 8 post reads + ads + recommender.
    let ep_read_tl = app.endpoint(
        mono,
        "readTimeline",
        Dist::log_normal(32.0 * 1024.0, 0.4),
        vec![
            Step::work_us(2100.0), // includes the inlined recommender + ads
            Step::cache_lookup(mc_get, 0.85, vec![Step::call(mg_find, 256.0)]),
            Step::FanCall {
                target: mc_get,
                req_bytes: Dist::constant(128.0),
                n: Dist::log_normal(8.0, 0.4),
            },
        ],
    );
    let ep_read_post = app.endpoint(
        mono,
        "readPost",
        Dist::log_normal(8.0 * 1024.0, 0.4),
        vec![
            Step::work_us(160.0),
            Step::cache_lookup(mc_get, 0.9, vec![Step::call(mg_find, 256.0)]),
        ],
    );
    let ep_repost = app.endpoint(
        mono,
        "repost",
        Dist::constant(1024.0),
        vec![
            Step::work_us(180.0),
            Step::cache_lookup(mc_get, 0.9, vec![Step::call(mg_find, 256.0)]),
            Step::work_us(300.0),
            Step::call(mg_ins, 1024.0),
            Step::call(mc_set, 1024.0),
            Step::FanCall {
                target: mc_set,
                req_bytes: Dist::constant(512.0),
                n: Dist::log_normal(10.0, 1.0),
            },
        ],
    );
    let ep_login = app.endpoint(
        mono,
        "login",
        Dist::constant(256.0),
        vec![
            Step::work_us(210.0),
            Step::cache_lookup(mc_get, 0.8, vec![Step::call(mg_find, 128.0)]),
        ],
    );
    let ep_follow = app.endpoint(
        mono,
        "follow",
        Dist::constant(128.0),
        vec![
            Step::work_us(140.0),
            Step::call(mg_ins, 256.0),
            Step::call(mc_set, 256.0),
        ],
    );
    let ep_search = app.endpoint(
        mono,
        "search",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![Step::work_us(1100.0), Step::call(mc_get, 128.0)],
    );

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(
        ep_read_tl,
        crate::social::READ_TIMELINE,
        40.0,
        Dist::constant(384.0),
    );
    mix.add(
        ep_read_post,
        crate::social::READ_POST,
        15.0,
        Dist::constant(256.0),
    );
    mix.add(
        ep_compose_text,
        crate::social::COMPOSE_TEXT,
        18.0,
        Dist::constant(512.0),
    );
    mix.add(
        ep_compose_image,
        crate::social::COMPOSE_IMAGE,
        6.0,
        Dist::log_normal(256.0 * 1024.0, 0.5),
    );
    mix.add(
        ep_compose_video,
        crate::social::COMPOSE_VIDEO,
        2.0,
        Dist::log_normal(2.0 * 1024.0 * 1024.0, 0.4),
    );
    mix.add(ep_repost, crate::social::REPOST, 5.0, Dist::constant(256.0));
    mix.add(ep_login, crate::social::LOGIN, 6.0, Dist::constant(256.0));
    mix.add(ep_follow, crate::social::FOLLOW, 3.0, Dist::constant(128.0));
    mix.add(ep_search, crate::social::SEARCH, 5.0, Dist::constant(256.0));

    BuiltApp {
        frontend: mono,
        qos_p99: SimDuration::from_millis(50),
        spec,
        mix,
        order,
    }
}

/// The monolithic E-commerce application; request-type ids match
/// [`crate::ecommerce`].
pub fn ecommerce_monolith() -> BuiltApp {
    let mut app = AppBuilder::new("e-commerce-monolith");
    let (_mc, mc_get, mc_set) = add_memcached(&mut app, "memcached", 4);
    let (_mg, mg_find, mg_ins) = add_mongodb(&mut app, "mongodb", 4);

    let mono = app
        .service("monolith")
        .profile(UarchProfile::monolith())
        .blocking()
        .workers(256)
        .instances(4)
        .protocol(Protocol::Http1)
        .conn_limit(4096)
        .build();

    let ep_browse = app.endpoint(
        mono,
        "browse",
        Dist::log_normal(32.0 * 1024.0, 0.4),
        vec![
            Step::work_us(2700.0), // catalogue + media + recommender + ads inline
            Step::cache_lookup(mc_get, 0.88, vec![Step::call(mg_find, 256.0)]),
        ],
    );
    let ep_search = app.endpoint(
        mono,
        "search",
        Dist::log_normal(16.0 * 1024.0, 0.4),
        vec![Step::work_us(1000.0), Step::call(mc_get, 128.0)],
    );
    let ep_order = app.endpoint(
        mono,
        "placeOrder",
        Dist::constant(2048.0),
        vec![
            Step::work_us(1200.0),
            Step::cache_lookup(mc_get, 0.75, vec![Step::call(mg_find, 128.0)]),
            // External payment gateway.
            Step::Io {
                ns: Dist::log_normal(3_000_000.0, 0.5),
            },
            Step::work_us(400.0),
            Step::call(mg_ins, 1024.0),
            // Order queue commit (serialized region inlined as extra work).
            Step::Io {
                ns: Dist::log_normal(200_000.0, 0.4),
            },
        ],
    );
    let ep_wishlist = app.endpoint(
        mono,
        "wishlist",
        Dist::constant(512.0),
        vec![Step::work_us(110.0), Step::call(mg_ins, 128.0)],
    );
    let ep_cart = app.endpoint(
        mono,
        "cartAdd",
        Dist::constant(512.0),
        vec![
            Step::work_us(320.0),
            Step::call(mc_set, 512.0),
            Step::Branch {
                p: 0.3,
                then: Arc::new(vec![Step::call(mg_ins, 512.0)]),
                els: Arc::new(vec![]),
            },
        ],
    );
    let ep_login = app.endpoint(
        mono,
        "login",
        Dist::constant(256.0),
        vec![
            Step::work_us(200.0),
            Step::cache_lookup(mc_get, 0.75, vec![Step::call(mg_find, 128.0)]),
        ],
    );

    let spec = app.build();
    let order: Vec<_> = (0..spec.service_count())
        .map(|i| dsb_core::ServiceId(i as u32))
        .collect();

    let mut mix = QueryMix::new();
    mix.add(
        ep_browse,
        crate::ecommerce::BROWSE,
        55.0,
        Dist::constant(384.0),
    );
    mix.add(
        ep_search,
        crate::ecommerce::SEARCH,
        8.0,
        Dist::constant(256.0),
    );
    mix.add(
        ep_order,
        crate::ecommerce::PLACE_ORDER,
        12.0,
        Dist::constant(1024.0),
    );
    mix.add(
        ep_wishlist,
        crate::ecommerce::WISHLIST,
        10.0,
        Dist::constant(256.0),
    );
    mix.add(
        ep_cart,
        crate::ecommerce::CART_ADD,
        10.0,
        Dist::constant(512.0),
    );
    mix.add(
        ep_login,
        crate::ecommerce::LOGIN,
        5.0,
        Dist::constant(256.0),
    );

    BuiltApp {
        frontend: mono,
        qos_p99: SimDuration::from_millis(40),
        spec,
        mix,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monoliths_have_one_app_tier_plus_backends() {
        for app in [social_monolith(), ecommerce_monolith()] {
            assert_eq!(app.spec.service_count(), 3);
            assert!(app.spec.service_by_name("monolith").is_some());
            assert_eq!(app.name_of(app.frontend), "monolith");
        }
    }

    #[test]
    fn monolith_profile_has_big_footprint() {
        let app = social_monolith();
        let mono = app.spec.service(app.frontend);
        assert!(mono.profile.l1i_mpki > 50.0);
    }

    #[test]
    fn request_types_align_with_microservice_version() {
        let mono = social_monolith();
        let micro = crate::social::social_network();
        assert_eq!(mono.mix.entries().len(), micro.mix.entries().len());
        for (a, b) in mono.mix.entries().iter().zip(micro.mix.entries()) {
            assert_eq!(a.rtype, b.rtype);
            assert_eq!(a.weight, b.weight);
        }
    }
}
