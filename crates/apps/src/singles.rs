//! Single-tier interactive services (§4): nginx, memcached, MongoDB,
//! Xapian, and the ML recommender — the "traditional cloud applications"
//! every DeathStarBench study compares against (Figs. 3, 11, 12).

use dsb_core::{AppBuilder, RequestType, Step};
use dsb_net::Protocol;
use dsb_simcore::{Dist, SimDuration};
use dsb_uarch::UarchProfile;
use dsb_workload::QueryMix;

use crate::BuiltApp;

/// The single request type each single-tier service serves.
pub const REQUEST: RequestType = RequestType(0);

fn single(app: AppBuilder, qos: SimDuration, entry: dsb_core::EndpointRef) -> BuiltApp {
    let spec = app.build();
    let frontend = entry.service;
    BuiltApp {
        mix: QueryMix::single(entry, REQUEST, 256.0),
        qos_p99: qos,
        order: vec![frontend],
        frontend,
        spec,
    }
}

/// nginx serving static content over HTTP.
pub fn nginx() -> BuiltApp {
    let mut app = AppBuilder::new("nginx");
    let id = app
        .service("nginx")
        .profile(UarchProfile::nginx())
        .event_driven()
        .workers(256)
        .protocol(Protocol::Http1)
        .conn_limit(4096)
        .build();
    let ep = app.endpoint(
        id,
        "get",
        Dist::log_normal(16.0 * 1024.0, 0.5),
        vec![Step::work_us(300.0)],
    );
    single(app, SimDuration::from_millis(5), ep)
}

/// memcached serving reads with a 10 % write mix.
pub fn memcached() -> BuiltApp {
    let mut app = AppBuilder::new("memcached");
    let id = app
        .service("memcached")
        .profile(UarchProfile::memcached())
        .event_driven()
        .workers(16)
        .build();
    let ep = app.endpoint(
        id,
        "get",
        Dist::log_normal(1024.0, 0.8),
        vec![Step::Branch {
            p: 0.9,
            then: std::sync::Arc::new(vec![Step::work_us(60.0)]),
            els: std::sync::Arc::new(vec![Step::work_us(80.0)]),
        }],
    );
    single(app, SimDuration::from_millis(2), ep)
}

/// MongoDB serving queries: modest compute, dominated by I/O (hence its
/// tolerance of frequency scaling in Fig. 12).
pub fn mongodb() -> BuiltApp {
    let mut app = AppBuilder::new("mongodb");
    let id = app
        .service("mongodb")
        .profile(UarchProfile::mongodb())
        .blocking()
        .workers(64)
        .build();
    let ep = app.endpoint(
        id,
        "find",
        Dist::log_normal(2048.0, 0.8),
        vec![Step::work_us(120.0), Step::io_us(350.0)],
    );
    single(app, SimDuration::from_millis(10), ep)
}

/// Xapian web search (from TailBench): compute-bound, the most
/// frequency-sensitive single-tier service.
pub fn xapian() -> BuiltApp {
    let mut app = AppBuilder::new("xapian");
    let id = app
        .service("xapian")
        .profile(UarchProfile::search())
        .blocking()
        .workers(16)
        .build();
    let ep = app.endpoint(
        id,
        "search",
        Dist::log_normal(8.0 * 1024.0, 0.5),
        vec![Step::work_us(600.0)],
    );
    single(app, SimDuration::from_millis(10), ep)
}

/// An ML recommender: long, memory-bound inference with very low IPC.
pub fn recommender() -> BuiltApp {
    let mut app = AppBuilder::new("recommender");
    let id = app
        .service("recommender")
        .profile(UarchProfile::recommender())
        .blocking()
        .workers(16)
        .build();
    let ep = app.endpoint(
        id,
        "suggest",
        Dist::log_normal(4.0 * 1024.0, 0.4),
        vec![Step::work_us(2000.0)],
    );
    single(app, SimDuration::from_millis(30), ep)
}

/// All five single-tier services, labelled.
pub fn all() -> Vec<(&'static str, BuiltApp)> {
    vec![
        ("nginx", nginx()),
        ("memcached", memcached()),
        ("mongodb", mongodb()),
        ("xapian", xapian()),
        ("recommender", recommender()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_singles_each_one_service() {
        let singles = all();
        assert_eq!(singles.len(), 5);
        for (name, app) in singles {
            assert_eq!(app.spec.service_count(), 1, "{name}");
            assert_eq!(app.mix.entries().len(), 1, "{name}");
        }
    }

    #[test]
    fn mongodb_is_io_dominated() {
        let app = mongodb();
        let svc = app.spec.service(app.frontend);
        let script = &svc.endpoints[0].script;
        let io = script.iter().any(|s| matches!(s, Step::Io { .. }));
        assert!(io, "mongodb must contain an I/O phase");
    }
}
