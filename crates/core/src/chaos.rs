//! Deterministic fault injection: the [`ChaosPlan`].
//!
//! A chaos plan is a seeded, sim-time-scheduled list of [`ChaosEvent`]s
//! — machine crash + restart, cache-shard loss with cold refill,
//! network partition, NIC degradation, and edge-node churn. The plan is
//! *pure data*: [`ChaosPlan::schedule`] expands it into a sorted list of
//! concrete boundary actions, and [`Simulation::install_chaos`]
//! (`crates/core/src/sim.rs`) applies each action between event runs —
//! exactly the way the existing control surface (instance scaling)
//! already synchronizes with both the serial and the sharded epoch
//! driver. That placement is what makes injection byte-identical across
//! worker counts: a fault takes effect at a quiesced instant, never
//! mid-epoch.
//!
//! [`Simulation::install_chaos`]: crate::Simulation::install_chaos
//!
//! The same expansion doubles as the detection scorer's ground truth:
//! [`ChaosPlan::faults`] yields one labeled active window per injected
//! fault, which `dsb-telemetry`'s scorer joins against fired alerts.

use dsb_simcore::{mix64, Rng, SimDuration, SimTime};

use crate::{MachineId, ServiceId};

/// One scheduled fault in a [`ChaosPlan`].
#[derive(Debug, Clone)]
pub enum ChaosEvent {
    /// Crash a machine at `at`: every in-flight invocation on it fails
    /// fast (callers get an error response after the minimum network
    /// delay), its instances go down, queued work is failed back to its
    /// callers, and placement re-routes around it. It restarts
    /// `restart_after` later with every hosted cache shard refilling
    /// cold for `cold_for`.
    MachineCrash {
        /// The machine to crash.
        machine: MachineId,
        /// Crash time.
        at: SimTime,
        /// Downtime before the restart boundary.
        restart_after: SimDuration,
        /// Cold-cache window after restart (forced cache misses).
        cold_for: SimDuration,
    },
    /// Crash one shard (instance index) of a cache service; the machine
    /// keeps running. Requests routed to the shard fail fast until it
    /// restarts, then refill cold for `cold_for`.
    CacheLoss {
        /// The cache service.
        service: ServiceId,
        /// Instance index within the service (shard number).
        shard: u32,
        /// Loss time.
        at: SimTime,
        /// Downtime before the shard comes back.
        restart_after: SimDuration,
        /// Cold-refill window after restart.
        cold_for: SimDuration,
    },
    /// Cut the network between machine groups `a` and `b` for
    /// `[from, until)`. Requests crossing the cut fail back to the
    /// caller after `timeout` (clamped up to the cluster lookahead so
    /// the sharded engine stays conservative); responses crossing it
    /// are delivered as failures after the same timeout.
    Partition {
        /// One side of the cut.
        a: Vec<MachineId>,
        /// The other side.
        b: Vec<MachineId>,
        /// Partition start.
        from: SimTime,
        /// Partition end (healed at this boundary).
        until: SimTime,
        /// Sender-side failure-detection timeout.
        timeout: SimDuration,
    },
    /// Multiply the propagation delay of every message to or from the
    /// given machines by `factor` (≥ 1.0 — delays may only grow, which
    /// keeps the DSB015 lookahead floor valid) for `[from, until)`.
    NicDegrade {
        /// Machines with the degraded NIC.
        machines: Vec<MachineId>,
        /// Delay multiplier, clamped to ≥ 1.0.
        factor: f64,
        /// Degradation start.
        from: SimTime,
        /// Degradation end.
        until: SimTime,
    },
    /// Seeded churn over a pool of (edge) machines: every `period`
    /// within `[from, until)` one machine drawn from `machines` crashes
    /// and restarts `down_for` later, caches cold for `cold_for`. The
    /// draw sequence depends only on the plan seed.
    EdgeChurn {
        /// Candidate machines (typically the Swarm edge nodes).
        machines: Vec<MachineId>,
        /// Churn window start.
        from: SimTime,
        /// Churn window end.
        until: SimTime,
        /// Interval between crashes.
        period: SimDuration,
        /// Downtime of each crashed node.
        down_for: SimDuration,
        /// Cold-cache window after each restart.
        cold_for: SimDuration,
    },
}

/// A seeded, deterministic fault schedule for one run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Seed for the churn draws (and any future randomized event).
    pub seed: u64,
    /// The scheduled faults.
    pub events: Vec<ChaosEvent>,
}

/// One concrete boundary action produced by [`ChaosPlan::schedule`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Take a machine down.
    CrashMachine {
        /// The machine.
        machine: MachineId,
    },
    /// Bring a crashed machine back up.
    RestartMachine {
        /// The machine.
        machine: MachineId,
        /// Cold-cache window applied to its restored instances.
        cold_for: SimDuration,
    },
    /// Take one instance of a service down.
    CrashShard {
        /// The service.
        service: ServiceId,
        /// Instance index within the service.
        shard: u32,
    },
    /// Restore a crashed instance.
    RestoreShard {
        /// The service.
        service: ServiceId,
        /// Instance index within the service.
        shard: u32,
        /// Cold-refill window after restoration.
        cold_for: SimDuration,
    },
    /// Start failing traffic between two machine groups.
    StartPartition {
        /// One side of the cut.
        a: Vec<MachineId>,
        /// The other side.
        b: Vec<MachineId>,
        /// Sender-side failure timeout.
        timeout: SimDuration,
    },
    /// Heal a partition.
    EndPartition {
        /// One side of the cut.
        a: Vec<MachineId>,
        /// The other side.
        b: Vec<MachineId>,
    },
    /// Start multiplying delays at the given machines' NICs.
    StartDegrade {
        /// Degraded machines.
        machines: Vec<MachineId>,
        /// Delay multiplier (≥ 1.0).
        factor: f64,
    },
    /// End a NIC degradation.
    EndDegrade {
        /// Previously degraded machines.
        machines: Vec<MachineId>,
    },
}

/// The ground-truth record of one injected fault: what a perfect
/// detector should flag, and when. The detection scorer joins alerts
/// against these windows.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindow {
    /// Human-readable fault label (stable; used in reports and goldens).
    pub label: String,
    /// Fault start.
    pub from: SimTime,
    /// End of the *injection* (restart/heal boundary). Symptoms may
    /// trail this (cold refill, queue drain); scorers add a grace
    /// window on top.
    pub until: SimTime,
    /// The service a root-cause verdict should name, when the fault
    /// targets one (cache loss); `None` for machine/network faults.
    pub culprit: Option<ServiceId>,
}

impl ChaosPlan {
    /// A plan with no faults.
    pub fn empty(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Expands the plan into concrete `(time, action)` boundary pairs,
    /// sorted by time (stable: ties keep event order). Pure function of
    /// the plan — the simulator and the scorer both rely on that.
    pub fn schedule(&self) -> Vec<(SimTime, ChaosAction)> {
        let mut out: Vec<(SimTime, ChaosAction)> = Vec::new();
        for (i, ev) in self.events.iter().enumerate() {
            match ev {
                ChaosEvent::MachineCrash {
                    machine,
                    at,
                    restart_after,
                    cold_for,
                } => {
                    out.push((*at, ChaosAction::CrashMachine { machine: *machine }));
                    out.push((
                        *at + *restart_after,
                        ChaosAction::RestartMachine {
                            machine: *machine,
                            cold_for: *cold_for,
                        },
                    ));
                }
                ChaosEvent::CacheLoss {
                    service,
                    shard,
                    at,
                    restart_after,
                    cold_for,
                } => {
                    out.push((
                        *at,
                        ChaosAction::CrashShard {
                            service: *service,
                            shard: *shard,
                        },
                    ));
                    out.push((
                        *at + *restart_after,
                        ChaosAction::RestoreShard {
                            service: *service,
                            shard: *shard,
                            cold_for: *cold_for,
                        },
                    ));
                }
                ChaosEvent::Partition {
                    a,
                    b,
                    from,
                    until,
                    timeout,
                } => {
                    out.push((
                        *from,
                        ChaosAction::StartPartition {
                            a: a.clone(),
                            b: b.clone(),
                            timeout: *timeout,
                        },
                    ));
                    out.push((
                        *until,
                        ChaosAction::EndPartition {
                            a: a.clone(),
                            b: b.clone(),
                        },
                    ));
                }
                ChaosEvent::NicDegrade {
                    machines,
                    factor,
                    from,
                    until,
                } => {
                    out.push((
                        *from,
                        ChaosAction::StartDegrade {
                            machines: machines.clone(),
                            factor: factor.max(1.0),
                        },
                    ));
                    out.push((
                        *until,
                        ChaosAction::EndDegrade {
                            machines: machines.clone(),
                        },
                    ));
                }
                ChaosEvent::EdgeChurn {
                    machines,
                    from,
                    until,
                    period,
                    down_for,
                    cold_for,
                } => {
                    if machines.is_empty() {
                        continue;
                    }
                    let mut rng = Rng::new(mix64(self.seed ^ mix64(0xC4A05 ^ i as u64)));
                    let mut t = *from;
                    while t < *until {
                        let m = machines[rng.index(machines.len())];
                        out.push((t, ChaosAction::CrashMachine { machine: m }));
                        out.push((
                            t + *down_for,
                            ChaosAction::RestartMachine {
                                machine: m,
                                cold_for: *cold_for,
                            },
                        ));
                        t = t + *period;
                    }
                }
            }
        }
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// The ground-truth fault windows, one per injected fault (a churn
    /// event is one fault: a detector is scored on flagging the churn,
    /// not each constituent crash).
    pub fn faults(&self) -> Vec<FaultWindow> {
        self.events
            .iter()
            .map(|ev| match ev {
                ChaosEvent::MachineCrash {
                    machine,
                    at,
                    restart_after,
                    cold_for,
                } => FaultWindow {
                    label: format!("machine-crash m{}", machine.0),
                    from: *at,
                    until: *at + *restart_after + *cold_for,
                    culprit: None,
                },
                ChaosEvent::CacheLoss {
                    service,
                    shard,
                    at,
                    restart_after,
                    cold_for,
                } => FaultWindow {
                    label: format!("cache-loss svc{} shard{}", service.0, shard),
                    from: *at,
                    until: *at + *restart_after + *cold_for,
                    culprit: Some(*service),
                },
                ChaosEvent::Partition { from, until, .. } => FaultWindow {
                    label: "partition".to_string(),
                    from: *from,
                    until: *until,
                    culprit: None,
                },
                ChaosEvent::NicDegrade { from, until, .. } => FaultWindow {
                    label: "nic-degrade".to_string(),
                    from: *from,
                    until: *until,
                    culprit: None,
                },
                ChaosEvent::EdgeChurn {
                    from,
                    until,
                    down_for,
                    cold_for,
                    ..
                } => FaultWindow {
                    label: "edge-churn".to_string(),
                    from: *from,
                    until: *until + *down_for + *cold_for,
                    culprit: None,
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let plan = ChaosPlan {
            seed: 7,
            events: vec![
                ChaosEvent::MachineCrash {
                    machine: MachineId(2),
                    at: SimTime::from_secs(3),
                    restart_after: SimDuration::from_secs(1),
                    cold_for: SimDuration::from_secs(1),
                },
                ChaosEvent::EdgeChurn {
                    machines: vec![MachineId(8), MachineId(9)],
                    from: SimTime::from_secs(1),
                    until: SimTime::from_secs(4),
                    period: SimDuration::from_secs(1),
                    down_for: SimDuration::from_millis(500),
                    cold_for: SimDuration::ZERO,
                },
            ],
        };
        let s1 = plan.schedule();
        let s2 = plan.schedule();
        assert_eq!(s1, s2, "expansion must be pure");
        assert!(s1.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by time");
        // 1 crash/restart pair + 3 churn pairs (t = 1, 2, 3 s).
        assert_eq!(s1.len(), 8);
        assert_eq!(plan.faults().len(), 2);
    }

    #[test]
    fn degrade_factor_clamped_up() {
        let plan = ChaosPlan {
            seed: 0,
            events: vec![ChaosEvent::NicDegrade {
                machines: vec![MachineId(0)],
                factor: 0.25,
                from: SimTime::ZERO,
                until: SimTime::from_secs(1),
            }],
        };
        match &plan.schedule()[0].1 {
            ChaosAction::StartDegrade { factor, .. } => assert_eq!(*factor, 1.0),
            other => panic!("expected degrade, got {other:?}"),
        }
    }
}
