//! A generational slab allocator for in-flight simulation entities.
//!
//! Invocations are created and destroyed millions of times per run; a slab
//! with generational keys gives O(1) allocation and guards against stale
//! references (a reused slot gets a new generation, so old keys miss).

/// A key into a [`Slab`]: slot index plus generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlabKey {
    index: u32,
    generation: u32,
}

impl SlabKey {
    /// A packed 64-bit form (for embedding in ids).
    pub fn as_u64(self) -> u64 {
        (self.generation as u64) << 32 | self.index as u64
    }
}

/// A generational slab.
///
/// # Example
///
/// ```
/// use dsb_core::Slab;
///
/// let mut slab = Slab::new();
/// let k = slab.insert("hello");
/// assert_eq!(slab.get(k), Some(&"hello"));
/// assert_eq!(slab.remove(k), Some("hello"));
/// assert_eq!(slab.get(k), None); // stale key
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `cap` entries before any
    /// reallocation (hot simulation state preallocates its steady-state
    /// population once instead of growing mid-run).
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.value = Some(value);
            SlabKey {
                index,
                generation: slot.generation,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            SlabKey {
                index,
                generation: 0,
            }
        }
    }

    /// Returns the entry for `key`, if it is still live.
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        self.slots
            .get(key.index as usize)
            .filter(|s| s.generation == key.generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Returns the entry for `key` mutably, if it is still live.
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        self.slots
            .get_mut(key.index as usize)
            .filter(|s| s.generation == key.generation)
            .and_then(|s| s.value.as_mut())
    }

    /// Removes and returns the entry for `key`, if live. The slot's
    /// generation advances so stale keys cannot observe a new tenant.
    ///
    /// A slot whose generation counter reaches `u32::MAX` is *retired*
    /// instead of returned to the free list: reusing it would wrap the
    /// counter back to a previously-issued generation, and a key from
    /// 2³² removals ago would silently alias the new tenant.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let slot = self.slots.get_mut(key.index as usize)?;
        if slot.generation != key.generation || slot.value.is_none() {
            return None;
        }
        let value = slot.value.take();
        debug_assert!(
            slot.generation < u32::MAX,
            "a retired slot can never hold a live value"
        );
        slot.generation += 1;
        if slot.generation < u32::MAX {
            self.free.push(key.index);
        }
        self.len -= 1;
        value
    }

    /// Iterates over live `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    SlabKey {
                        index: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let b = s.insert(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&1));
        assert_eq!(
            s.get_mut(b).map(|v| {
                *v = 20;
                *v
            }),
            Some(20)
        );
        assert_eq!(s.remove(a), Some(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.remove(a), None);
    }

    #[test]
    fn slots_are_reused_with_new_generation() {
        let mut s = Slab::new();
        let a = s.insert("x");
        s.remove(a);
        let b = s.insert("y");
        assert_eq!(a.index, b.index);
        assert_ne!(a.generation, b.generation);
        assert_eq!(s.get(a), None);
        assert_eq!(s.get(b), Some(&"y"));
    }

    #[test]
    fn iter_sees_only_live() {
        let mut s = Slab::new();
        let a = s.insert(10);
        let _b = s.insert(20);
        s.remove(a);
        let vals: Vec<i32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![20]);
    }

    #[test]
    fn keys_pack_to_u64() {
        let mut s = Slab::new();
        let a = s.insert(());
        s.remove(a);
        let b = s.insert(());
        assert_ne!(a.as_u64(), b.as_u64());
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut s: Slab<u64> = Slab::with_capacity(64);
        let base = s.slots.capacity();
        assert!(base >= 64);
        let keys: Vec<SlabKey> = (0..64).map(|i| s.insert(i)).collect();
        assert_eq!(s.slots.capacity(), base, "no growth within capacity");
        for k in keys {
            s.remove(k);
        }
        assert!(s.free.capacity() >= 64);
    }

    /// Stale keys must miss across forced generation wraparound: a slot
    /// whose generation counter is exhausted is retired, never reused, so
    /// no insert can ever mint a key equal to an already-issued one.
    #[test]
    fn stale_keys_miss_across_generation_wraparound() {
        use dsb_testkit::{gen, prop, prop_assert, prop_assert_eq};
        prop!(
            cases = 64,
            |rng| (gen::u32_in(rng, 0, 4), gen::u32_in(rng, 2, 12)),
            |&(offset, cycles): &(u32, u32)| {
                let mut s: Slab<u32> = Slab::new();
                let k0 = s.insert(0);
                s.remove(k0);
                // Jump the recycled slot to the edge of its generation
                // space so a handful of reuse cycles crosses u32::MAX.
                s.slots[0].generation = u32::MAX - offset.min(4) - 1;
                let mut minted: Vec<SlabKey> = vec![k0];
                for i in 1..=cycles {
                    let k = s.insert(i);
                    // Every key ever issued is unique, even after the
                    // counter would have wrapped under the old scheme.
                    for old in &minted {
                        prop_assert!(*old != k, "key reissued: {old:?} after {i} cycles");
                        prop_assert_eq!(s.get(*old), None, "stale key resurrected");
                    }
                    prop_assert_eq!(s.get(k), Some(&i));
                    prop_assert_eq!(s.remove(k), Some(i));
                    prop_assert_eq!(s.get(k), None);
                    minted.push(k);
                }
                // The exhausted slot must be retired, not recycled: once
                // its generation hits u32::MAX it leaves the free list,
                // and later inserts draw fresh slots.
                for slot in &s.slots {
                    prop_assert!(slot.value.is_none());
                    for idx in &s.free {
                        prop_assert!(
                            s.slots[*idx as usize].generation < u32::MAX,
                            "retired slot back on the free list"
                        );
                    }
                }
                prop_assert_eq!(s.len(), 0);
                Ok(())
            }
        );
    }
}
