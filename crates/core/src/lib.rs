//! # dsb-core — the microservice benchmark framework
//!
//! The primary contribution of the reproduced paper is a suite of
//! *end-to-end* microservice applications plus the instrumentation to study
//! them. This crate is the framework those applications are written
//! against in the simulator:
//!
//! * **Application model** ([`AppBuilder`], [`ServiceSpec`], [`Step`]):
//!   an application is a graph of services; each service exposes endpoints
//!   whose handlers are *behaviour scripts* — sequences of compute phases,
//!   I/O phases, synchronous/parallel RPC calls, and probabilistic
//!   branches (cache hits vs misses).
//! * **Execution substrate** ([`Simulation`], [`ClusterSpec`]): machines
//!   with FCFS cores and NIC queues, worker pools with blocking or
//!   event-driven (async) concurrency, bounded connection pools for
//!   HTTP/1-style protocols, load-balancing policies, and on-demand
//!   (serverless) worker spawning with cold starts.
//! * **Instrumentation**: per-RPC spans feeding a `dsb-trace` collector,
//!   per-service execution-domain accounting (kernel/user/libs), machine
//!   and worker utilization, and per-request-type latency with QoS
//!   windows.
//! * **Control surface**: instance scaling with startup delays, machine
//!   frequency changes (RAPL / slow servers), FPGA offload toggling,
//!   misrouting injection, and admission control — everything the paper's
//!   cluster-management experiments (Figs. 17–22) manipulate.
//!
//! See `dsb-apps` for the six end-to-end applications built on this API
//! and the `examples/` directory for walkthroughs.

#![warn(missing_docs)]

mod chaos;
mod placement;
mod sim;
mod slab;
mod spec;
mod stats;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan, FaultWindow};
pub use placement::{PlacementHint, PlacementPlan, PlacementPolicy, Placer};
pub use sim::{ConnPoolSnapshot, InstanceState, Simulation};
pub use slab::{Slab, SlabKey};
pub use spec::{
    AppBuilder, AppSpec, ClusterSpec, Concurrency, EndpointRef, EndpointSpec, InstanceId, LbPolicy,
    MachineId, MachineSpec, RequestType, ServiceBuilder, ServiceId, ServiceSpec, Step,
    WorkerPolicy,
};
pub use stats::{RequestStats, ServiceStats};
