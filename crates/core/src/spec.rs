//! Static application and cluster descriptions: services, endpoints,
//! behaviour scripts, machines, and the builder API.

use std::sync::Arc;

use dsb_net::{Protocol, Zone};
use dsb_simcore::Dist;
use dsb_uarch::{CoreModel, ExecDomain, UarchProfile};

/// Index of a service within an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u32);

/// Index of a running service instance within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Index of a machine within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

/// A request-type tag, used to report per-query-type latency (the paper's
/// §3.8 query-diversity analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestType(pub u32);

/// A reference to one endpoint of one service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointRef {
    /// The service exposing the endpoint.
    pub service: ServiceId,
    /// The endpoint's index within the service.
    pub endpoint: u32,
}

/// How a service schedules handlers onto its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Concurrency {
    /// Thread-per-request: a worker is held for the whole invocation,
    /// *including* while blocked on downstream synchronous calls. This is
    /// the semantics that produces backpressure (Fig. 17) and misleading
    /// "busy but idle" utilization (Figs. 19–20).
    Blocking,
    /// Event-driven: the worker is released at the first downstream call;
    /// continuations run on the event loop (nginx/node.js style).
    Async,
}

/// How many workers an instance has.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerPolicy {
    /// A fixed pool of `n` workers per instance.
    Fixed(u32),
    /// Serverless-style: a new worker is spawned per request when no warm
    /// one is free, after a sampled cold-start delay (ns).
    OnDemand {
        /// Cold-start delay distribution, ns.
        cold_start_ns: Dist,
    },
}

/// Load-balancing policy used by callers of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbPolicy {
    /// Cycle through instances.
    RoundRobin,
    /// Pick the instance with the fewest queued + running invocations.
    LeastOutstanding,
    /// Hash the request's partition key (sharded back-ends; makes request
    /// skew concentrate load, Fig. 22b).
    Partition,
}

/// One step of a behaviour script.
///
/// Scripts are interpreted per invocation by the simulator. Compute demand
/// is expressed in *reference-core nanoseconds* (Xeon at nominal
/// frequency); the executing machine's `CoreModel` rescales it.
#[derive(Debug, Clone)]
pub enum Step {
    /// Burn CPU on the instance's machine.
    Compute {
        /// Demand in reference-core nanoseconds.
        ns: Dist,
        /// Accounting domain (user code, kernel, libraries).
        domain: ExecDomain,
    },
    /// Hold the worker without using a core (disk/NFS I/O, lock waits).
    /// Insensitive to core speed — this is what makes MongoDB tolerate
    /// frequency scaling in Fig. 12.
    Io {
        /// Wait time in nanoseconds (not rescaled by core speed).
        ns: Dist,
    },
    /// A synchronous call to another service's endpoint.
    Call {
        /// Callee.
        target: EndpointRef,
        /// Request payload size in bytes.
        req_bytes: Dist,
    },
    /// Parallel fan-out to several endpoints; joins when all respond.
    /// Only allowed toward non-blocking protocols (multiplexed RPC).
    ParCall {
        /// The parallel calls (callee, request size).
        calls: Vec<(EndpointRef, Dist)>,
    },
    /// Parallel fan-out of `n` identical calls (e.g. broadcast to
    /// followers' timelines); joins when all respond.
    FanCall {
        /// Callee.
        target: EndpointRef,
        /// Request payload size in bytes.
        req_bytes: Dist,
        /// Fan-out degree (sampled, rounded, min 0).
        n: Dist,
    },
    /// With probability `p`, run `then`, otherwise `els` (cache hit/miss,
    /// request-mix variation within a handler).
    Branch {
        /// Probability of taking `then`.
        p: f64,
        /// Steps executed on success.
        then: Arc<Vec<Step>>,
        /// Steps executed otherwise.
        els: Arc<Vec<Step>>,
    },
    /// A cache-aside lookup against a designated cache tier. Behaves
    /// exactly like [`Step::Branch`] with `p = hit`, except the
    /// simulator knows which service is the cache: when the request's
    /// home cache shard is down or refilling cold (a `ChaosPlan`
    /// cache-instance loss or machine restart), the hit draw is
    /// overridden to a miss and the `els` arm — the refill path — runs
    /// instead. The static analyzer uses the same marker to identify
    /// cache tiers structurally (DSB017).
    CacheLookup {
        /// The cache tier's get endpoint (also the first call in both
        /// arms, as built by [`Step::cache_lookup`]).
        cache: EndpointRef,
        /// Warm hit probability.
        hit: f64,
        /// Steps on a hit (the cache get).
        then: Arc<Vec<Step>>,
        /// Steps on a miss (the cache get plus the refill path).
        els: Arc<Vec<Step>>,
    },
}

impl Step {
    /// User-domain compute of `us` microseconds (log-normal, σ=0.4).
    pub fn work_us(us: f64) -> Step {
        Step::Compute {
            ns: Dist::log_normal(us * 1000.0, 0.4),
            domain: ExecDomain::User,
        }
    }

    /// Library-domain compute of `us` microseconds (log-normal, σ=0.4).
    pub fn libs_us(us: f64) -> Step {
        Step::Compute {
            ns: Dist::log_normal(us * 1000.0, 0.4),
            domain: ExecDomain::Libs,
        }
    }

    /// An I/O wait of `us` microseconds (log-normal, σ=0.6).
    pub fn io_us(us: f64) -> Step {
        Step::Io {
            ns: Dist::log_normal(us * 1000.0, 0.6),
        }
    }

    /// A synchronous call with the given request size in bytes.
    pub fn call(target: EndpointRef, req_bytes: f64) -> Step {
        Step::Call {
            target,
            req_bytes: Dist::constant(req_bytes),
        }
    }

    /// A cache-aside lookup: call the cache; on a miss (probability
    /// `1 - hit_ratio`) run `on_miss` (typically a DB call plus a cache
    /// fill).
    pub fn cache_lookup(cache_get: EndpointRef, hit_ratio: f64, on_miss: Vec<Step>) -> Step {
        Step::CacheLookup {
            cache: cache_get,
            hit: hit_ratio,
            then: Arc::new(vec![Step::call(cache_get, 128.0)]),
            els: Arc::new({
                let mut steps = vec![Step::call(cache_get, 128.0)];
                steps.extend(on_miss);
                steps
            }),
        }
    }
}

/// An endpoint: a named handler plus its response size.
#[derive(Debug, Clone)]
pub struct EndpointSpec {
    /// Handler name (e.g. `composePost`).
    pub name: String,
    /// Response payload size in bytes.
    pub resp_bytes: Dist,
    /// The behaviour script.
    pub script: Arc<Vec<Step>>,
}

/// The static description of one microservice.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Service name (unique within the app).
    pub name: String,
    /// Microarchitectural profile of its instruction stream.
    pub profile: UarchProfile,
    /// Worker scheduling model.
    pub concurrency: Concurrency,
    /// Worker pool sizing.
    pub workers: WorkerPolicy,
    /// Protocol callers use to reach this service.
    pub protocol: Protocol,
    /// Load-balancing policy across its instances.
    pub lb: LbPolicy,
    /// Instances to start with.
    pub initial_instances: u32,
    /// Per-caller-instance connection limit toward this service (only
    /// enforced for blocking protocols).
    pub conn_limit: u32,
    /// Preferred placement zone (`None`: datacenter default).
    pub zone_pref: Option<Zone>,
    /// Placement affinity within the zone (deployment-table pinning).
    pub placement: crate::placement::PlacementHint,
    /// Exposed endpoints.
    pub endpoints: Vec<EndpointSpec>,
}

/// A complete application: a named set of services.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Application name.
    pub name: String,
    /// All services, indexed by [`ServiceId`].
    pub services: Vec<ServiceSpec>,
}

impl AppSpec {
    /// Looks a service up by name.
    pub fn service_by_name(&self, name: &str) -> Option<ServiceId> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServiceId(i as u32))
    }

    /// The service spec for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn service(&self, id: ServiceId) -> &ServiceSpec {
        &self.services[id.0 as usize]
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// All dependency edges `(caller, callee)` implied by scripts.
    pub fn edges(&self) -> Vec<(ServiceId, ServiceId)> {
        let mut edges = Vec::new();
        for (i, svc) in self.services.iter().enumerate() {
            let from = ServiceId(i as u32);
            for ep in &svc.endpoints {
                collect_targets(&ep.script, &mut |t| {
                    if !edges.contains(&(from, t.service)) {
                        edges.push((from, t.service));
                    }
                });
            }
        }
        edges
    }

    /// Renders the dependency graph in Graphviz DOT format (Fig. 18).
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name);
        for s in &self.services {
            out.push_str(&format!("  \"{}\";\n", s.name));
        }
        for (a, b) in self.edges() {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                self.service(a).name,
                self.service(b).name
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn collect_targets(steps: &[Step], f: &mut impl FnMut(EndpointRef)) {
    for s in steps {
        match s {
            Step::Call { target, .. } | Step::FanCall { target, .. } => f(*target),
            Step::ParCall { calls } => {
                for (t, _) in calls {
                    f(*t);
                }
            }
            Step::Branch { then, els, .. } => {
                collect_targets(then, f);
                collect_targets(els, f);
            }
            Step::CacheLookup {
                cache, then, els, ..
            } => {
                f(*cache);
                collect_targets(then, f);
                collect_targets(els, f);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Fluent construction of an [`AppSpec`].
///
/// # Example
///
/// ```
/// use dsb_core::{AppBuilder, Step};
/// use dsb_net::Protocol;
/// use dsb_simcore::Dist;
/// use dsb_uarch::UarchProfile;
///
/// let mut app = AppBuilder::new("two-tier");
/// let cache = app
///     .service("memcached")
///     .profile(UarchProfile::memcached())
///     .protocol(Protocol::ThriftRpc)
///     .workers(8)
///     .build();
/// let get = app.endpoint(cache, "get", Dist::constant(1024.0), vec![Step::work_us(8.0)]);
/// let front = app.service("front").build();
/// app.endpoint(
///     front,
///     "page",
///     Dist::constant(4096.0),
///     vec![Step::work_us(50.0), Step::call(get, 128.0)],
/// );
/// let spec = app.build();
/// assert_eq!(spec.service_count(), 2);
/// assert_eq!(spec.edges(), vec![(front, cache)]);
/// ```
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    services: Vec<ServiceSpec>,
}

impl AppBuilder {
    /// Starts building an application.
    pub fn new(name: &str) -> Self {
        AppBuilder {
            name: name.to_string(),
            services: Vec::new(),
        }
    }

    /// Declares a service; finish with [`ServiceBuilder::build`].
    pub fn service(&mut self, name: &str) -> ServiceBuilder<'_> {
        ServiceBuilder {
            app: self,
            spec: ServiceSpec {
                name: name.to_string(),
                profile: UarchProfile::microservice_default(),
                concurrency: Concurrency::Blocking,
                workers: WorkerPolicy::Fixed(8),
                protocol: Protocol::ThriftRpc,
                lb: LbPolicy::RoundRobin,
                initial_instances: 1,
                conn_limit: 128,
                zone_pref: None,
                placement: crate::placement::PlacementHint::Spread,
                endpoints: Vec::new(),
            },
        }
    }

    /// Adds an endpoint to an already-declared service; the returned
    /// [`EndpointRef`] is what callers' scripts name.
    ///
    /// # Panics
    ///
    /// Panics if `service` is unknown.
    pub fn endpoint(
        &mut self,
        service: ServiceId,
        name: &str,
        resp_bytes: Dist,
        script: Vec<Step>,
    ) -> EndpointRef {
        let svc = self
            .services
            .get_mut(service.0 as usize)
            .expect("endpoint() on unknown service");
        svc.endpoints.push(EndpointSpec {
            name: name.to_string(),
            resp_bytes,
            script: Arc::new(script),
        });
        EndpointRef {
            service,
            endpoint: (svc.endpoints.len() - 1) as u32,
        }
    }

    /// Finalizes the application.
    ///
    /// # Panics
    ///
    /// Panics if a `ParCall`/`FanCall` targets a blocking-connection
    /// protocol (head-of-line-blocked protocols cannot multiplex parallel
    /// calls in this model), or if any call references an out-of-range
    /// endpoint.
    pub fn build(self) -> AppSpec {
        let spec = AppSpec {
            name: self.name,
            services: self.services,
        };
        for svc in &spec.services {
            for ep in &svc.endpoints {
                validate_steps(&spec, &ep.script, &svc.name);
            }
        }
        spec
    }
}

fn validate_steps(spec: &AppSpec, steps: &[Step], in_service: &str) {
    let check = |t: &EndpointRef, parallel: bool| {
        let callee = spec
            .services
            .get(t.service.0 as usize)
            .unwrap_or_else(|| panic!("{in_service}: call to unknown service {:?}", t.service));
        assert!(
            (t.endpoint as usize) < callee.endpoints.len(),
            "{in_service}: call to unknown endpoint {} of {}",
            t.endpoint,
            callee.name
        );
        if parallel {
            assert!(
                !callee.protocol.blocking_connections(),
                "{in_service}: parallel calls to blocking protocol of {}",
                callee.name
            );
        }
    };
    for s in steps {
        match s {
            Step::Call { target, .. } => check(target, false),
            Step::FanCall { target, .. } => check(target, true),
            Step::ParCall { calls } => {
                for (t, _) in calls {
                    check(t, true);
                }
            }
            Step::Branch { then, els, .. } => {
                validate_steps(spec, then, in_service);
                validate_steps(spec, els, in_service);
            }
            Step::CacheLookup {
                cache, then, els, ..
            } => {
                check(cache, false);
                validate_steps(spec, then, in_service);
                validate_steps(spec, els, in_service);
            }
            Step::Compute { .. } | Step::Io { .. } => {}
        }
    }
}

/// Configures one service within an [`AppBuilder`].
#[derive(Debug)]
pub struct ServiceBuilder<'a> {
    app: &'a mut AppBuilder,
    spec: ServiceSpec,
}

impl ServiceBuilder<'_> {
    /// Sets the µarch profile.
    pub fn profile(mut self, p: UarchProfile) -> Self {
        self.spec.profile = p;
        self
    }

    /// Uses the event-driven concurrency model.
    pub fn event_driven(mut self) -> Self {
        self.spec.concurrency = Concurrency::Async;
        self
    }

    /// Uses the thread-per-request (blocking) concurrency model.
    pub fn blocking(mut self) -> Self {
        self.spec.concurrency = Concurrency::Blocking;
        self
    }

    /// Sets a fixed worker pool of `n` per instance.
    pub fn workers(mut self, n: u32) -> Self {
        self.spec.workers = WorkerPolicy::Fixed(n);
        self
    }

    /// Uses serverless-style on-demand workers.
    pub fn on_demand_workers(mut self, cold_start_ns: Dist) -> Self {
        self.spec.workers = WorkerPolicy::OnDemand { cold_start_ns };
        self
    }

    /// Sets the protocol callers use to reach this service.
    pub fn protocol(mut self, p: Protocol) -> Self {
        self.spec.protocol = p;
        self
    }

    /// Sets the load-balancing policy.
    pub fn lb(mut self, lb: LbPolicy) -> Self {
        self.spec.lb = lb;
        self
    }

    /// Sets the number of instances to start with.
    pub fn instances(mut self, n: u32) -> Self {
        self.spec.initial_instances = n.max(1);
        self
    }

    /// Sets the per-caller-instance connection limit (blocking protocols).
    pub fn conn_limit(mut self, n: u32) -> Self {
        self.spec.conn_limit = n.max(1);
        self
    }

    /// Prefers placement in the given zone (e.g. [`Zone::Edge`]).
    pub fn zone(mut self, z: Zone) -> Self {
        self.spec.zone_pref = Some(z);
        self
    }

    /// Pins instance `k` of this service to the machine hosting instance
    /// `k mod n` of `anchor` (which must be declared before this service).
    /// Models the paper's deployment tables, e.g. one full sensor stack
    /// per drone.
    pub fn colocate_with(mut self, anchor: ServiceId) -> Self {
        self.spec.placement = crate::placement::PlacementHint::CoLocate(anchor);
        self
    }

    /// Registers the service and returns its id.
    pub fn build(self) -> ServiceId {
        debug_assert!(
            self.spec.lb != LbPolicy::Partition || self.spec.initial_instances >= 2,
            "service `{}` uses LbPolicy::Partition over {} instance: give \
             sharded stores at least 2 shards, or use RoundRobin (DSB008)",
            self.spec.name,
            self.spec.initial_instances,
        );
        let id = ServiceId(self.app.services.len() as u32);
        self.app.services.push(self.spec);
        id
    }
}

/// One machine of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineSpec {
    /// Number of cores.
    pub cores: u32,
    /// Core microarchitecture and frequency.
    pub core: CoreModel,
    /// NIC bandwidth, Gb/s.
    pub nic_gbps: f64,
    /// Topology location.
    pub zone: Zone,
}

impl MachineSpec {
    /// The paper's server: a two-socket, 40-core Xeon node with a 10 GbE
    /// NIC.
    pub fn xeon_server(rack: u16) -> Self {
        MachineSpec {
            cores: 40,
            core: CoreModel::xeon(),
            nic_gbps: 10.0,
            zone: Zone::Rack(rack),
        }
    }

    /// A Cavium ThunderX node: 96 wimpy in-order cores, same network.
    pub fn thunderx_server(rack: u16) -> Self {
        MachineSpec {
            cores: 96,
            core: CoreModel::thunderx(),
            nic_gbps: 10.0,
            zone: Zone::Rack(rack),
        }
    }

    /// An edge device (drone on-board computer): 2 very weak cores, wifi.
    pub fn edge_device() -> Self {
        MachineSpec {
            cores: 2,
            core: CoreModel::xeon().at_frequency(0.5),
            nic_gbps: 0.05,
            zone: Zone::Edge,
        }
    }
}

/// The whole cluster: machines plus global knobs.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Machines, indexed by [`MachineId`].
    pub machines: Vec<MachineSpec>,
    /// Network fabric latencies.
    pub fabric: dsb_net::FabricConfig,
    /// Delay from requesting a new instance to it serving traffic.
    pub instance_startup: dsb_simcore::SimDuration,
    /// Trace sampling probability (see `dsb-trace`).
    pub trace_sample_prob: f64,
    /// Width of metric windows (heatmaps, utilization).
    pub window: dsb_simcore::SimDuration,
    /// CPU scheduling quantum: compute steps longer than this run as
    /// round-robin timeslices (OS preemption). `SimDuration::MAX`
    /// disables preemption (an ablation knob).
    pub cpu_quantum: dsb_simcore::SimDuration,
    /// Instance-to-machine placement policy.
    pub placement: crate::placement::PlacementPolicy,
}

impl ClusterSpec {
    /// `n` Xeon servers spread across `racks` racks, paper-like defaults.
    pub fn xeon_cluster(n: u32, racks: u16) -> Self {
        ClusterSpec {
            machines: (0..n)
                .map(|i| MachineSpec::xeon_server((i % racks.max(1) as u32) as u16))
                .collect(),
            fabric: dsb_net::FabricConfig::default(),
            instance_startup: dsb_simcore::SimDuration::from_secs(8),
            trace_sample_prob: 0.01,
            window: dsb_simcore::SimDuration::from_secs(1),
            cpu_quantum: dsb_simcore::SimDuration::from_millis(5),
            placement: crate::placement::PlacementPolicy::CoreBudget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_app() -> AppSpec {
        let mut app = AppBuilder::new("t");
        let b = app.service("b").build();
        let get = app.endpoint(b, "get", Dist::constant(100.0), vec![Step::work_us(5.0)]);
        let a = app.service("a").event_driven().build();
        app.endpoint(
            a,
            "root",
            Dist::constant(100.0),
            vec![Step::work_us(1.0), Step::call(get, 64.0)],
        );
        app.build()
    }

    #[test]
    fn builder_assigns_ids_in_order() {
        let spec = tiny_app();
        assert_eq!(spec.service_by_name("b"), Some(ServiceId(0)));
        assert_eq!(spec.service_by_name("a"), Some(ServiceId(1)));
        assert_eq!(spec.service_by_name("zzz"), None);
        assert_eq!(spec.service(ServiceId(1)).concurrency, Concurrency::Async);
    }

    #[test]
    fn edges_derived_from_scripts() {
        let spec = tiny_app();
        assert_eq!(spec.edges(), vec![(ServiceId(1), ServiceId(0))]);
    }

    #[test]
    fn dot_output_contains_services_and_edges() {
        let dot = tiny_app().to_dot();
        assert!(dot.contains("\"a\" -> \"b\""));
        assert!(dot.contains("digraph"));
    }

    #[test]
    #[should_panic(expected = "parallel calls to blocking protocol")]
    fn parallel_to_http_rejected() {
        let mut app = AppBuilder::new("bad");
        let b = app.service("b").protocol(Protocol::Http1).build();
        let get = app.endpoint(b, "get", Dist::constant(1.0), vec![]);
        let a = app.service("a").build();
        app.endpoint(
            a,
            "root",
            Dist::constant(1.0),
            vec![Step::FanCall {
                target: get,
                req_bytes: Dist::constant(10.0),
                n: Dist::constant(3.0),
            }],
        );
        app.build();
    }

    #[test]
    #[should_panic(expected = "unknown endpoint")]
    fn dangling_endpoint_rejected() {
        let mut app = AppBuilder::new("bad");
        let b = app.service("b").build();
        let a = app.service("a").build();
        app.endpoint(
            a,
            "root",
            Dist::constant(1.0),
            vec![Step::call(
                EndpointRef {
                    service: b,
                    endpoint: 7,
                },
                1.0,
            )],
        );
        app.build();
    }

    #[test]
    fn cache_lookup_marks_the_cache_tier() {
        let mut app = AppBuilder::new("c");
        let mc = app.service("mc").build();
        let get = app.endpoint(mc, "get", Dist::constant(1.0), vec![]);
        let db = app.service("db").build();
        let find = app.endpoint(db, "find", Dist::constant(1.0), vec![]);
        let s = Step::cache_lookup(get, 0.9, vec![Step::call(find, 64.0)]);
        match s {
            Step::CacheLookup {
                cache,
                hit,
                then,
                els,
            } => {
                assert_eq!(cache, get);
                assert_eq!(hit, 0.9);
                // Both arms start with the cache get, so call-graph
                // edges still come from the arms alone.
                assert_eq!(then.len(), 1);
                assert_eq!(els.len(), 2);
            }
            other => panic!("expected cache lookup, got {other:?}"),
        }
    }

    #[test]
    fn cluster_presets() {
        let c = ClusterSpec::xeon_cluster(20, 2);
        assert_eq!(c.machines.len(), 20);
        assert_eq!(c.machines[0].zone, Zone::Rack(0));
        assert_eq!(c.machines[1].zone, Zone::Rack(1));
        assert_eq!(MachineSpec::edge_device().cores, 2);
        assert!(MachineSpec::thunderx_server(0).cores > 40);
    }
}
