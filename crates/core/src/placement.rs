//! Deterministic instance-to-machine placement.
//!
//! The paper's cluster experiments (Figs. 17–22) depend on *where*
//! instances land: several hot tiers sharing one machine can overcommit
//! its cores even when every pool looks healthy in isolation. Placement
//! here is a pure function of the cluster and the order instances are
//! provisioned in — no randomness, no wall clock — so a simulation run
//! and a static analysis pass ([`PlacementPlan::compute`]) agree exactly
//! on the assignment.
//!
//! The default [`PlacementPolicy::CoreBudget`] policy walks candidate
//! machines (filtered by the service's `zone_pref`) round-robin and
//! picks the first whose remaining core budget fits the instance's
//! worker demand; when nothing fits it falls back to the least-loaded
//! candidate (most remaining budget, lowest machine id on ties), which
//! keeps spreading deterministic once a cluster is saturated. Placement
//! decisions are never revisited: adding an instance cannot relocate an
//! existing one (scale-out stability, mirrored after the shard-stable
//! partition routing of `LbPolicy::Partition`).

use dsb_net::Zone;

use crate::spec::{
    AppSpec, ClusterSpec, InstanceId, MachineId, ServiceId, ServiceSpec, WorkerPolicy,
};

/// How instances are assigned to machines at provision/scale-out time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Round-robin over zone candidates, respecting per-machine core
    /// budgets: an instance demands as many cores as it has fixed
    /// workers (capped at the machine size) and lands on the first
    /// candidate with budget left, falling back to the least-loaded
    /// candidate when the cluster is full.
    #[default]
    CoreBudget,
    /// Legacy blind round-robin over zone candidates, ignoring budgets.
    Spread,
}

/// Per-service placement hint (the paper's deployment tables pin some
/// tiers together, e.g. one full sensor-to-controller stack per drone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementHint {
    /// No affinity: spread over the zone candidates.
    #[default]
    Spread,
    /// Co-locate instance `k` with instance `k mod n` of the named
    /// service (which must be declared — and therefore placed — first).
    CoLocate(ServiceId),
}

/// Cores an on-demand (serverless) instance reserves: it has no fixed
/// pool, so budget a small slice rather than zero or a whole machine.
const ON_DEMAND_DEMAND: u32 = 2;

fn core_demand(spec: &ServiceSpec) -> u32 {
    match &spec.workers {
        WorkerPolicy::Fixed(n) => (*n).max(1),
        WorkerPolicy::OnDemand { .. } => ON_DEMAND_DEMAND,
    }
}

/// The incremental placement engine. [`crate::Simulation`] owns one and
/// consults it on every `spawn_instance`; [`PlacementPlan::compute`]
/// drives a fresh one over a whole app to predict the same assignment
/// statically.
#[derive(Debug)]
pub struct Placer {
    policy: PlacementPolicy,
    zones: Vec<Zone>,
    cores: Vec<u32>,
    /// Remaining core budget per machine; goes negative once the
    /// fallback path overcommits a saturated cluster.
    remaining: Vec<i64>,
    rr: usize,
    /// Machines assigned so far, per service, in instance order.
    placed: Vec<Vec<MachineId>>,
}

impl Placer {
    /// A placer for `cluster` hosting an app of `services` services.
    pub fn new(cluster: &ClusterSpec, services: usize) -> Self {
        Placer {
            policy: cluster.placement,
            zones: cluster.machines.iter().map(|m| m.zone).collect(),
            cores: cluster.machines.iter().map(|m| m.cores).collect(),
            remaining: cluster.machines.iter().map(|m| m.cores as i64).collect(),
            rr: 0,
            placed: vec![Vec::new(); services],
        }
    }

    /// Picks a machine for the next instance of `service` and records
    /// the decision. Deterministic; never relocates earlier decisions.
    ///
    /// # Panics
    ///
    /// Panics if no machine satisfies the service's `zone_pref`.
    pub fn place(&mut self, service: ServiceId, spec: &ServiceSpec) -> MachineId {
        let demand = core_demand(spec);
        // Paper-style affinity: ride along with the anchor service.
        if let PlacementHint::CoLocate(anchor) = spec.placement {
            let anchored = self
                .placed
                .get(anchor.0 as usize)
                .filter(|v| !v.is_empty())
                .map(|v| v[self.placed[service.0 as usize].len() % v.len()]);
            if let Some(m) = anchored {
                self.charge(service, m, demand);
                return m;
            }
        }
        let candidates: Vec<usize> = (0..self.zones.len())
            .filter(|&i| match spec.zone_pref {
                Some(z) => self.zones[i] == z,
                None => !matches!(self.zones[i], Zone::Edge),
            })
            .collect();
        assert!(
            !candidates.is_empty(),
            "no machine available for service {} (zone pref {:?})",
            spec.name,
            spec.zone_pref
        );
        let chosen = match self.policy {
            PlacementPolicy::Spread => {
                let m = candidates[self.rr % candidates.len()];
                self.rr += 1;
                m
            }
            PlacementPolicy::CoreBudget => {
                let start = self.rr % candidates.len();
                let fit = (0..candidates.len())
                    .map(|k| candidates[(start + k) % candidates.len()])
                    .find(|&m| {
                        // A demand larger than the machine can never
                        // fit; budget what the machine can give.
                        self.remaining[m] >= demand.min(self.cores[m]) as i64
                    });
                match fit {
                    Some(m) => {
                        self.rr += 1;
                        m
                    }
                    // Cluster saturated: least-loaded candidate (most
                    // remaining budget; lowest id breaks ties because
                    // max_by_key returns the *last* maximum).
                    None => *candidates
                        .iter()
                        .rev()
                        .max_by_key(|&&m| self.remaining[m])
                        .expect("candidates is non-empty"),
                }
            }
        };
        let m = MachineId(chosen as u32);
        self.charge(service, m, demand);
        m
    }

    fn charge(&mut self, service: ServiceId, m: MachineId, demand: u32) {
        let i = m.0 as usize;
        self.remaining[i] -= demand.min(self.cores[i]) as i64;
        self.placed[service.0 as usize].push(m);
    }

    /// Machines assigned to `service` so far, in instance order.
    pub fn machines_of(&self, service: ServiceId) -> &[MachineId] {
        &self.placed[service.0 as usize]
    }
}

/// The static placement of an app's initial instances: replays exactly
/// what [`crate::Simulation::new`] does (services in id order, each
/// spawning `initial_instances` instances), so the analyzer reasons
/// about the same machines the simulator uses.
#[derive(Debug, Clone)]
pub struct PlacementPlan {
    /// `(service, machine)` per [`InstanceId`], in provisioning order.
    assignments: Vec<(ServiceId, MachineId)>,
    per_service: Vec<Vec<MachineId>>,
}

impl PlacementPlan {
    /// Computes the initial placement of `app` on `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if some service has no machine satisfying its `zone_pref`.
    pub fn compute(app: &AppSpec, cluster: &ClusterSpec) -> Self {
        let mut placer = Placer::new(cluster, app.services.len());
        let mut assignments = Vec::new();
        for (i, svc) in app.services.iter().enumerate() {
            let sid = ServiceId(i as u32);
            for _ in 0..svc.initial_instances {
                assignments.push((sid, placer.place(sid, svc)));
            }
        }
        PlacementPlan {
            assignments,
            per_service: placer.placed,
        }
    }

    /// All `(service, machine)` assignments, indexed by [`InstanceId`].
    pub fn instances(&self) -> &[(ServiceId, MachineId)] {
        &self.assignments
    }

    /// The machine hosting instance `inst`.
    pub fn machine_of(&self, inst: InstanceId) -> MachineId {
        self.assignments[inst.0 as usize].1
    }

    /// Machines hosting `service`, in instance order.
    pub fn machines_of(&self, service: ServiceId) -> &[MachineId] {
        &self.per_service[service.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AppBuilder;
    use dsb_simcore::Dist;

    fn app_of(workers: &[u32]) -> AppSpec {
        let mut app = AppBuilder::new("p");
        for (i, &w) in workers.iter().enumerate() {
            let id = app.service(&format!("s{i}")).workers(w).build();
            app.endpoint(id, "run", Dist::constant(64.0), vec![]);
        }
        app.build()
    }

    fn cluster_of(cores: &[u32]) -> ClusterSpec {
        let mut c = ClusterSpec::xeon_cluster(cores.len() as u32, 1);
        for (m, &k) in c.machines.iter_mut().zip(cores) {
            m.cores = k;
        }
        c
    }

    #[test]
    fn first_fit_respects_budgets_then_falls_back_least_loaded() {
        // Three 8-worker services on two 8-core machines: the first two
        // fill both machines; the third falls back to the least loaded
        // (a tie, so the lowest machine id).
        let app = app_of(&[8, 8, 8]);
        let plan = PlacementPlan::compute(&app, &cluster_of(&[8, 8]));
        let machines: Vec<u32> = plan.instances().iter().map(|&(_, m)| m.0).collect();
        assert_eq!(machines, vec![0, 1, 0]);
    }

    #[test]
    fn round_robin_cursor_skips_full_machines() {
        // 4-core demands on [8, 4, 8]: round-robin lands 0, 1, 2, then
        // machine 1 is full so the fourth placement skips to machine 0.
        let app = app_of(&[4, 4, 4, 4]);
        let plan = PlacementPlan::compute(&app, &cluster_of(&[8, 4, 8]));
        let machines: Vec<u32> = plan.instances().iter().map(|&(_, m)| m.0).collect();
        assert_eq!(machines, vec![0, 1, 2, 0]);
    }

    #[test]
    fn oversized_demand_is_capped_at_machine_size() {
        // A 64-worker service still fits a 40-core machine (its demand
        // is capped), it just consumes the whole budget.
        let app = app_of(&[64, 4]);
        let plan = PlacementPlan::compute(&app, &cluster_of(&[40, 40]));
        let machines: Vec<u32> = plan.instances().iter().map(|&(_, m)| m.0).collect();
        assert_eq!(machines, vec![0, 1]);
    }

    #[test]
    fn colocate_follows_anchor_modulo_instances() {
        let mut app = AppBuilder::new("p");
        let anchor = app.service("anchor").workers(2).instances(3).build();
        app.endpoint(anchor, "run", Dist::constant(1.0), vec![]);
        let rider = app
            .service("rider")
            .workers(2)
            .instances(6)
            .colocate_with(anchor)
            .build();
        app.endpoint(rider, "run", Dist::constant(1.0), vec![]);
        let spec = app.build();
        let plan = PlacementPlan::compute(&spec, &cluster_of(&[8, 8, 8, 8]));
        let a = plan.machines_of(anchor);
        let r = plan.machines_of(rider);
        assert_eq!(r.len(), 6);
        for (k, &m) in r.iter().enumerate() {
            assert_eq!(m, a[k % a.len()], "rider {k} not with its anchor");
        }
    }

    #[test]
    fn spread_policy_ignores_budgets() {
        let app = app_of(&[8, 8, 8]);
        let mut cluster = cluster_of(&[8, 8]);
        cluster.placement = PlacementPolicy::Spread;
        let plan = PlacementPlan::compute(&app, &cluster);
        let machines: Vec<u32> = plan.instances().iter().map(|&(_, m)| m.0).collect();
        assert_eq!(machines, vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "no machine available")]
    fn edge_pref_without_edge_machines_panics() {
        let mut app = AppBuilder::new("p");
        let id = app.service("sensor").zone(Zone::Edge).build();
        app.endpoint(id, "run", Dist::constant(1.0), vec![]);
        PlacementPlan::compute(&app.build(), &cluster_of(&[8]));
    }
}
